"""The gupcheck analysis framework: modules, rules, suppressions, reports.

Deliberately dependency-free (stdlib ``ast`` only) so the analysis can
run anywhere the library runs, including CI bootstrap steps that have
not installed the dev toolchain yet.
"""

from __future__ import annotations

import ast
import json
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Analyzer",
    "ModuleInfo",
    "Report",
    "Rule",
    "SUPPRESSION_RULE",
    "Violation",
    "check_source",
]

#: Name of the meta-rule that flags malformed suppression comments.
SUPPRESSION_RULE = "suppression"

#: ``# gupcheck: ignore[determinism,layering] -- justification``
_SUPPRESS_RE = re.compile(
    r"#\s*gupcheck:\s*ignore\[(?P<rules>[^\]]*)\]"
    r"(?:\s*(?:--|:)\s*(?P<why>.*\S))?"
)


class Violation:
    """One finding: a rule broken at a source location."""

    __slots__ = ("rule", "path", "line", "col", "message", "justification")

    def __init__(
        self,
        rule: str,
        path: str,
        line: int,
        col: int,
        message: str,
        justification: Optional[str] = None,
    ) -> None:
        self.rule = rule
        self.path = path
        self.line = line
        self.col = col
        self.message = message
        #: Set when the violation was suppressed (carries the reason).
        self.justification = justification

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.justification is not None:
            data["justification"] = self.justification
        return data

    def __repr__(self) -> str:
        return "%s:%d:%d: [%s] %s" % (
            self.path, self.line, self.col, self.rule, self.message
        )


class _Suppression:
    __slots__ = ("line", "rules", "justification")

    def __init__(self, line: int, rules: Tuple[str, ...],
                 justification: Optional[str]) -> None:
        self.line = line
        self.rules = rules
        self.justification = justification


class ModuleInfo:
    """A parsed source module handed to every rule."""

    __slots__ = ("path", "relpath", "source", "tree", "lines",
                 "suppressions")

    def __init__(self, path: str, relpath: str, source: str,
                 tree: ast.Module) -> None:
        self.path = path
        #: Package-relative posix path (``repro/core/server.py``) —
        #: what rule path filters match against.
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        #: line number -> suppression found *on* that line; a
        #: suppression on a standalone comment line also covers the
        #: next line (see :meth:`suppression_for`).
        self.suppressions: Dict[int, _Suppression] = {}
        self._scan_suppressions()

    @classmethod
    def from_source(cls, source: str, relpath: str,
                    path: Optional[str] = None) -> "ModuleInfo":
        tree = ast.parse(source, filename=path or relpath)
        return cls(path or relpath, relpath, source, tree)

    # -- suppressions -------------------------------------------------------

    def _scan_suppressions(self) -> None:
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = tuple(
                part.strip()
                for part in match.group("rules").split(",")
                if part.strip()
            )
            self.suppressions[lineno] = _Suppression(
                lineno, rules, match.group("why")
            )

    def suppression_for(self, rule: str, line: int) -> Optional[_Suppression]:
        """The suppression covering *rule* at *line*, if any.

        A suppression covers its own line; when it sits on a
        standalone comment line it also covers the line below (the
        usual place to put it when the code line is already long)."""
        for candidate_line in (line, line - 1):
            supp = self.suppressions.get(candidate_line)
            if supp is None or rule not in supp.rules:
                continue
            if candidate_line == line - 1:
                stripped = self.lines[candidate_line - 1].lstrip()
                if not stripped.startswith("#"):
                    continue  # trailing comment only covers its own line
            return supp
        return None


class Rule:
    """Base class for gupcheck rules.

    Subclasses set :attr:`name`, :attr:`description` and the
    :attr:`prefixes` path filter, and implement :meth:`check`.
    """

    #: Short kebab-case identifier used in reports and suppressions.
    name = ""
    #: One-line statement of the invariant the rule protects.
    description = ""
    #: Relpath prefixes the rule applies to; empty = every module.
    prefixes: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        return not self.prefixes or any(
            relpath.startswith(prefix) for prefix in self.prefixes
        )

    def check(self, module: ModuleInfo) -> List[Violation]:
        raise NotImplementedError

    # -- helpers ------------------------------------------------------------

    def violation(self, module: ModuleInfo, node: ast.AST,
                  message: str) -> Violation:
        return Violation(
            self.name,
            module.relpath,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            message,
        )


class Report:
    """Aggregated result of an analysis run."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rule_names = [rule.name for rule in rules]
        self.files_scanned = 0
        #: Active violations (analysis fails when non-empty).
        self.violations: List[Violation] = []
        #: Violations silenced by a justified suppression comment.
        self.suppressed: List[Violation] = []
        #: (path, message) pairs for files that could not be parsed.
        self.errors: List[Tuple[str, str]] = []

    @property
    def ok(self) -> bool:
        return not self.violations and not self.errors

    def to_dict(self) -> Dict[str, object]:
        return {
            "gupcheck": 1,
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules": list(self.rule_names),
            "violations": [v.to_dict() for v in self.violations],
            "suppressed": [v.to_dict() for v in self.suppressed],
            "errors": [
                {"path": path, "message": message}
                for path, message in self.errors
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


class Analyzer:
    """Runs a rule set over modules / source trees."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        if rules is None:
            from repro.analysis.rules import default_rules
            rules = default_rules()
        self.rules = list(rules)
        known = {rule.name for rule in self.rules}
        known.add(SUPPRESSION_RULE)
        self._known_rules = known

    # -- single module ------------------------------------------------------

    def analyze_module(
        self, module: ModuleInfo
    ) -> Tuple[List[Violation], List[Violation]]:
        """(active, suppressed) violations for one module."""
        active: List[Violation] = []
        suppressed: List[Violation] = []
        for rule in self.rules:
            if not rule.applies_to(module.relpath):
                continue
            for violation in rule.check(module):
                supp = module.suppression_for(rule.name, violation.line)
                if supp is not None and supp.justification:
                    violation.justification = supp.justification
                    suppressed.append(violation)
                else:
                    active.append(violation)
        active.extend(self._audit_suppressions(module))
        active.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        suppressed.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        return active, suppressed

    def _audit_suppressions(self, module: ModuleInfo) -> List[Violation]:
        """Malformed suppressions are violations in their own right —
        a silencer with no justification (or a typo'd rule name) is
        exactly the kind of quiet hole this tool exists to close."""
        found: List[Violation] = []
        for supp in module.suppressions.values():
            if not supp.rules:
                found.append(Violation(
                    SUPPRESSION_RULE, module.relpath, supp.line, 0,
                    "suppression names no rules",
                ))
                continue
            for rule_name in supp.rules:
                if rule_name not in self._known_rules:
                    found.append(Violation(
                        SUPPRESSION_RULE, module.relpath, supp.line, 0,
                        "suppression names unknown rule %r" % rule_name,
                    ))
            if not supp.justification:
                found.append(Violation(
                    SUPPRESSION_RULE, module.relpath, supp.line, 0,
                    "suppression requires a justification after `--`",
                ))
        return found

    # -- trees --------------------------------------------------------------

    def analyze_paths(self, paths: Iterable[str]) -> Report:
        import os

        report = Report(self.rules)
        for path in paths:
            if os.path.isdir(path):
                files = sorted(
                    os.path.join(dirpath, filename)
                    for dirpath, dirnames, filenames in os.walk(path)
                    for filename in filenames
                    if filename.endswith(".py")
                    and "__pycache__" not in dirpath
                )
            else:
                files = [path]
            for filename in files:
                self._analyze_file(filename, report)
        return report

    def _analyze_file(self, filename: str, report: Report) -> None:
        report.files_scanned += 1
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
            module = ModuleInfo.from_source(
                source, _relpath(filename), filename
            )
        except (OSError, SyntaxError, ValueError) as err:
            report.errors.append((filename, str(err)))
            return
        active, suppressed = self.analyze_module(module)
        report.violations.extend(active)
        report.suppressed.extend(suppressed)


def _relpath(filename: str) -> str:
    """Package-relative posix path: everything from the last ``repro``
    path component on (``src/repro/core/x.py`` -> ``repro/core/x.py``).
    Falls back to the posix-normalized input."""
    parts = filename.replace("\\", "/").split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return "/".join(parts)


def check_source(
    rule: Rule, source: str, relpath: str = "repro/fixture.py"
) -> List[Violation]:
    """Run one *rule* over inline *source* — the fixture-test helper.

    Suppressions are honoured (suppressed findings are dropped), so a
    fixture can exercise the suppression path too; malformed
    suppressions are **not** audited here (that is
    :meth:`Analyzer.analyze_module`'s job)."""
    module = ModuleInfo.from_source(source, relpath)
    findings = []
    if rule.applies_to(relpath):
        for violation in rule.check(module):
            supp = module.suppression_for(rule.name, violation.line)
            if supp is not None and supp.justification:
                continue
            findings.append(violation)
    return findings
