"""Sans-io query engine: the Section 5.2 wire patterns as programs.

This module holds the *protocol logic* of the server-mediated query
patterns — ``chaining``, ``cached`` and the enter-once ``provision``
fan-out — refactored out of :class:`~repro.core.query.QueryExecutor`
into generator *programs* that yield typed
:mod:`~repro.sansio.intents` and never perform I/O themselves.

The same program is consumed by two drivers:

* :class:`repro.simnet.driver.SimnetDriver` charges every intent to a
  virtual-time :class:`~repro.simnet.Trace`. The intent stream mirrors
  the pre-refactor inline code *operation for operation*, so the
  simulated cost model (and the golden latency fixtures pinning it) is
  bit-identical — simnet became one harness for the system instead of
  the system itself.
* :class:`repro.serve.transport.WallTransport` performs the intents
  under asyncio against the wall clock, giving the serving layer
  (:mod:`repro.serve`) real concurrency for fork/join fan-outs and
  real (capped) backoff sleeps — with the *same* shield decisions,
  values and degradation behaviour, which
  ``tests/test_sansio_equivalence.py`` pins property-style under fault
  injection.

Everything stateful the programs consult — coverage resolution, the
privacy shield, signing, endpoint health, provenance — lives behind
the :class:`QueryHost`, whose members are all pure/virtual-time (the
``sans-io-purity`` gupcheck rule enforces this package stays off the
wire). :class:`~repro.core.query.QueryExecutor` passes *itself* as the
host so ablation benchmarks that tune its per-step cost class
attributes keep working; the serving layer uses a
:class:`StandaloneQueryHost`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import (
    AccessDeniedError,
    NoCoverageError,
    PartialResultError,
)
from repro.pxml import Path, PNode, extract
from repro.pxml.merge import GUP_KEYSPEC, merge_all
from repro.access import RequestContext
from repro.core.referral import Referral, ReferralPart
from repro.core.resilience import (
    TRANSIENT_ERRORS,
    EndpointHealth,
    PartStatus,
    RetryPolicy,
)
from repro.sansio.intents import (
    Compute,
    Fork,
    LegOutcome,
    Mark,
    PartReport,
    Program,
    Send,
    Sleep,
    SpanClose,
    SpanOpen,
    SpanSet,
    StoreGet,
    StorePut,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.provenance import ProvenanceTracker, SourceAnnotator
    from repro.core.server import GupsterServer
    from repro.core.signing import QueryVerifier

__all__ = [
    "QueryOutcome",
    "SansIoQueryEngine",
    "StandaloneQueryHost",
    "decision_of",
]

#: The Fork capture set of degradable fan-outs: a dead store, a lost
#: message, or an uncovered part degrades that *part*; anything else
#: aborts the query.
_DEGRADABLE_CAPTURE = TRANSIENT_ERRORS + (NoCoverageError,)


class QueryOutcome:
    """What a server-mediated query program returns: the merged
    fragment, cache disposition flags, and per-part statuses."""

    __slots__ = ("fragment", "hit", "stale", "statuses")

    def __init__(
        self,
        fragment: Optional[PNode],
        hit: bool = False,
        stale: bool = False,
        statuses: Optional[List[PartStatus]] = None,
    ) -> None:
        self.fragment = fragment
        self.hit = hit
        self.stale = stale
        self.statuses: List[PartStatus] = (
            statuses if statuses is not None else []
        )

    def __repr__(self) -> str:
        flags = "".join(
            flag for flag, on in (("H", self.hit), ("S", self.stale))
            if on
        )
        return "<QueryOutcome %s%s>" % (
            "ok" if self.fragment is not None else "empty",
            " " + flags if flags else "",
        )


class StandaloneQueryHost:
    """A :class:`QueryHost` for drivers that run without a
    :class:`~repro.core.query.QueryExecutor` (the serving layer).

    Carries the canonical cost constants; construct with the same
    server/policy/health collaborators an executor would hold."""

    REQUEST_OVERHEAD_BYTES = 80
    RESOLVE_COMPUTE_MS = 0.3
    VERIFY_COMPUTE_MS = 0.1
    STORE_QUERY_COMPUTE_MS = 0.2
    MERGE_COMPUTE_MS_PER_PART = 0.2
    CACHE_COMPUTE_MS = 0.05

    def __init__(
        self,
        server: "GupsterServer",
        server_node: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        health: Optional[EndpointHealth] = None,
        provenance: Optional["ProvenanceTracker"] = None,
        annotator: Optional["SourceAnnotator"] = None,
    ) -> None:
        self.server = server
        self.server_node = server_node or server.name
        self.verifier: "QueryVerifier" = server.signer.verifier()
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.health = health if health is not None else EndpointHealth()
        self.provenance = provenance
        self.annotator = annotator


class SansIoQueryEngine:
    """Generator programs for the server-mediated query patterns.

    *host* provides collaborators and cost constants (see module
    docstring); it is read at call time, so mutating
    ``host.retry_policy`` or the cost attributes between calls — as
    the ablation benchmarks do — affects the next program built."""

    def __init__(self, host: Any) -> None:
        self.host = host

    # -- shared pieces ------------------------------------------------------

    def _request_bytes(
        self, path: Path, context: RequestContext
    ) -> int:
        return (
            len(str(path))
            + context.byte_size()
            + self.host.REQUEST_OVERHEAD_BYTES
        )

    def _resolve_tracked(
        self, path: Path, context: RequestContext, now: float
    ) -> Referral:
        """Resolve at the server, recording grants and denials in the
        provenance ledger when one is attached."""
        host = self.host
        try:
            referral = host.server.resolve(path, context, now)
        except AccessDeniedError:
            if host.provenance is not None:
                host.provenance.record(
                    now, context, path, [], "resolve", granted=False
                )
            raise
        if host.provenance is not None:
            stores = sorted(
                {s for part in referral.parts for s in part.store_ids}
            )
            host.provenance.record(
                now, context, path, stores, "resolve", granted=True
            )
        return referral

    def fetch_part(
        self,
        origin: str,
        part: ReferralPart,
        now: float,
    ) -> Program[Tuple[Optional[PNode], str]]:
        """Fetch one referral part, surviving dead stores and lost
        messages when alternatives (or retry budget) remain.

        Returns (fragment, store used) — the sans-io twin of the old
        ``QueryExecutor._fetch_part_from``, intent for intent: within
        one sweep the ``||`` choices are tried in health-then-referral
        order, a failed store charges the detection timeout (the
        driver throws the transport error in) and the next choice is
        tried; an exhausted sweep backs off and sweeps again."""
        host = self.host
        last_error: Optional[Exception] = None
        policy = host.retry_policy
        for sweep in range(policy.max_attempts):
            if sweep:
                yield Sleep(
                    policy.backoff_ms(sweep),
                    "backoff before retry sweep %d" % (sweep + 1),
                )
                yield Mark("retry")
            candidates = [
                store_id
                for store_id in host.health.order(part.store_ids)
                if store_id in host.server.adapters
            ]
            if not candidates:
                break
            for index, store_id in enumerate(candidates):
                query_bytes = (
                    part.signed_query.byte_size()
                    + host.REQUEST_OVERHEAD_BYTES
                    if part.signed_query is not None
                    else len(str(part.path)) + host.REQUEST_OVERHEAD_BYTES
                )
                try:
                    yield SpanOpen("fetch.store", {
                        "store": store_id, "path": str(part.path),
                        "sweep": sweep,
                    })
                    yield Send(origin, store_id, query_bytes,
                               "query %s" % part.path)
                    if part.signed_query is not None:
                        host.verifier.verify(part.signed_query, now)
                        yield Compute(
                            host.VERIFY_COMPUTE_MS, "verify signature"
                        )
                    yield Compute(
                        host.STORE_QUERY_COMPUTE_MS, "evaluate path"
                    )
                    fragment = yield StoreGet(store_id, part.path)
                    if (
                        fragment is not None
                        and host.annotator is not None
                    ):
                        host.annotator.annotate(fragment, store_id)
                    response_bytes = (
                        fragment.byte_size()
                        if fragment is not None else 32
                    ) + host.REQUEST_OVERHEAD_BYTES
                    yield Send(store_id, origin, response_bytes,
                               "fragment")
                    yield SpanSet("status", "ok")
                    yield SpanClose()
                except TRANSIENT_ERRORS as err:
                    yield SpanClose()
                    last_error = err
                    host.health.failure(store_id)
                    if index + 1 < len(candidates):
                        yield Mark("failover")
                    continue
                host.health.success(store_id)
                return fragment, store_id
        if last_error is not None:
            raise last_error
        raise NoCoverageError(
            "no adapter registered for any of %s" % part.store_ids
        )

    def fetch_parts_degradable(
        self,
        origin: str,
        referral: Referral,
        now: float,
    ) -> Program[Tuple[List[Optional[PNode]], List[PartStatus]]]:
        """Parallel part fan-out that records failures instead of
        raising: the caller decides whether a partial answer is
        acceptable."""
        outcomes: List[LegOutcome] = yield Fork(
            [
                self.fetch_part(origin, part, now)
                for part in referral.parts
            ],
            capture=_DEGRADABLE_CAPTURE,
        )
        fragments: List[Optional[PNode]] = []
        statuses: List[PartStatus] = []
        for part, outcome in zip(referral.parts, outcomes):
            if outcome.error is not None:
                statuses.append(
                    PartStatus(part.path, ok=False, error=outcome.error)
                )
            else:
                fragment, store = outcome.value
                fragments.append(fragment)
                statuses.append(PartStatus(part.path, store=store))
        yield PartReport(statuses)
        return fragments, statuses

    def merge_at(
        self,
        fragments: List[Optional[PNode]],
        where: str,
    ) -> Program[Optional[PNode]]:
        present = [f for f in fragments if f is not None]
        if not present:
            return None
        if len(present) == 1:
            return present[0]
        yield Compute(
            self.host.MERGE_COMPUTE_MS_PER_PART * len(present),
            "merge %d fragments at %s" % (len(present), where),
        )
        return merge_all(present, GUP_KEYSPEC)

    # -- patterns -----------------------------------------------------------

    def chain(
        self,
        client: str,
        path: Path,
        context: RequestContext,
        now: float,
    ) -> Program[QueryOutcome]:
        """GUPster fetches and merges on the client's behalf; degrades
        gracefully (see ``QueryExecutor.chaining``)."""
        host = self.host
        server_node = host.server_node
        yield SpanOpen("query.chaining", {
            "path": str(path), "scope": context.cache_scope(),
            "client": client,
        })
        yield Send(client, server_node,
                   self._request_bytes(path, context),
                   "chained request")
        yield Compute(host.RESOLVE_COMPUTE_MS, "rewrite+policy+sign")
        referral = self._resolve_tracked(path, context, now)
        fragments, statuses = yield from self.fetch_parts_degradable(
            server_node, referral, now
        )
        failed = [s for s in statuses if not s.ok]
        if failed and not any(s.ok for s in statuses):
            raise PartialResultError(
                "every part of %s is unreachable" % path, statuses
            )
        if failed:
            yield Mark("degraded", len(failed))
            yield SpanSet("degraded_parts", len(failed))
        merged = yield from self.merge_at(fragments, server_node)
        response_bytes = (
            merged.byte_size() if merged is not None else 32
        ) + host.REQUEST_OVERHEAD_BYTES
        yield Send(server_node, client, response_bytes,
                   "merged result")
        yield SpanClose()
        return QueryOutcome(merged, statuses=statuses)

    def cached(
        self,
        client: str,
        path: Path,
        context: RequestContext,
        now: float,
    ) -> Program[QueryOutcome]:
        """Chaining through GUPster's component cache, shield
        re-checked on every hit (see ``QueryExecutor.cached``)."""
        host = self.host
        server_node = host.server_node
        yield SpanOpen("query.cached", {
            "path": str(path), "scope": context.cache_scope(),
            "client": client,
        })
        yield Send(client, server_node,
                   self._request_bytes(path, context),
                   "cached request")
        yield Compute(host.CACHE_COMPUTE_MS, "cache probe")
        cached = host.server.cache_lookup(path, context, now)
        if cached is not None:
            yield SpanSet("cache", "hit")
            yield Send(
                server_node, client,
                cached.byte_size() + host.REQUEST_OVERHEAD_BYTES,
                "cache hit",
            )
            yield SpanClose()
            return QueryOutcome(cached, hit=True)
        yield SpanSet("cache", "miss")
        yield Compute(host.RESOLVE_COMPUTE_MS, "rewrite+policy+sign")
        referral = self._resolve_tracked(path, context, now)
        fragments, statuses = yield from self.fetch_parts_degradable(
            server_node, referral, now
        )
        failed = [s for s in statuses if not s.ok]
        if failed and not any(s.ok for s in statuses):
            stale = host.server.cache_stale_lookup(path, context, now)
            if stale is not None:
                yield SpanSet("cache", "stale_serve")
                yield Mark("stale_serve")
                yield Mark("degraded", len(failed))
                yield Send(
                    server_node, client,
                    stale.byte_size() + host.REQUEST_OVERHEAD_BYTES,
                    "stale cache serve",
                )
                yield SpanClose()
                return QueryOutcome(
                    stale, hit=True, stale=True, statuses=statuses
                )
            raise PartialResultError(
                "every part of %s is unreachable and no stale cache "
                "entry survives" % path,
                statuses,
            )
        if failed:
            yield Mark("degraded", len(failed))
            yield SpanSet("degraded_parts", len(failed))
        merged = yield from self.merge_at(fragments, server_node)
        if merged is not None and not failed:
            # Partial merges are never cached — a degraded answer
            # must not masquerade as the component once stores
            # recover.
            if host.server.cache_store(path, merged, context, now):
                yield Compute(host.CACHE_COMPUTE_MS, "cache fill")
        response_bytes = (
            merged.byte_size() if merged is not None else 32
        ) + host.REQUEST_OVERHEAD_BYTES
        yield Send(server_node, client, response_bytes,
                   "filled result")
        yield SpanClose()
        return QueryOutcome(merged, statuses=statuses)

    # -- writes -------------------------------------------------------------

    def _provision_part(
        self,
        client: str,
        part: ReferralPart,
        document: PNode,
        now: float,
    ) -> Program[None]:
        """One store leg of the enter-once write fan-out."""
        host = self.host
        store_id = part.store_ids[0]
        component = part.path.steps[1].name
        sliced = extract(document, part.path.element_path())
        content = (
            sliced.child(component) if sliced is not None else None
        )
        if content is None:
            content = PNode(component)
        yield Send(client, store_id,
                   content.byte_size() + host.REQUEST_OVERHEAD_BYTES,
                   "write %s" % part.path)
        if part.signed_query is not None:
            host.verifier.verify(part.signed_query, now)
            yield Compute(host.VERIFY_COMPUTE_MS, "verify")
        yield StorePut(store_id, part.path.prefix(2), content)
        yield Send(store_id, client, 32, "ack")

    def provision(
        self,
        client: str,
        path: Path,
        fragment: PNode,
        context: RequestContext,
        now: float,
    ) -> Program[None]:
        """Enter-once write: resolve for update, then fan the fragment
        out to every store holding the component (see
        ``QueryExecutor.provision``)."""
        host = self.host
        server_node = host.server_node
        yield SpanOpen("query.provision", {
            "path": str(path), "scope": context.cache_scope(),
            "client": client,
        })
        yield Send(client, server_node,
                   self._request_bytes(path, context), "update resolve")
        yield Compute(host.RESOLVE_COMPUTE_MS, "rewrite+policy+sign")
        referral = host.server.resolve_for_update(path, context, now)
        if host.provenance is not None:
            stores = sorted(
                {s for part in referral.parts for s in part.store_ids}
            )
            host.provenance.record(
                now, context, path, stores, "update", granted=True
            )
        yield Send(server_node, client,
                   referral.byte_size() + host.REQUEST_OVERHEAD_BYTES,
                   "update referral")
        # Wrap the new component state in a user document so each
        # store can be handed exactly its slice (a store registered
        # for item[@type='corporate'] must not receive — nor lose —
        # the personal half).
        if fragment.tag == "user":
            document = fragment.copy()
        else:
            document = PNode("user", {"id": path.user_id() or ""})
            document.append(fragment.copy())
        yield Fork([
            self._provision_part(client, part, document, now)
            for part in referral.parts
        ])
        yield SpanClose()
        return None


def decision_of(outcome_or_error: object) -> Dict[str, object]:
    """Canonical (value, shield-decision) record for the equivalence
    gate: serializes a :class:`QueryOutcome` or an exception into a
    driver-independent comparable dict."""
    if isinstance(outcome_or_error, QueryOutcome):
        fragment = outcome_or_error.fragment
        return {
            "ok": True,
            "denied": False,
            "value": (
                fragment.serialize() if fragment is not None else None
            ),
            "hit": outcome_or_error.hit,
            "stale": outcome_or_error.stale,
            "degraded": [
                str(s.path)
                for s in outcome_or_error.statuses if not s.ok
            ],
        }
    assert isinstance(outcome_or_error, BaseException)
    return {
        "ok": False,
        "denied": isinstance(outcome_or_error, AccessDeniedError),
        "error": type(outcome_or_error).__name__,
        "value": None,
    }
