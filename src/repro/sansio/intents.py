"""Typed I/O intents — the sans-io vocabulary (ROADMAP item 2).

Protocol logic in :mod:`repro.sansio.engine` is written as plain
Python generators that **yield** instances of the classes below and
receive the result of each operation back at the ``yield`` expression
(or have the operation's failure thrown in with ``generator.throw``).
The generator never touches a socket, a clock, or the simulated
network: everything observable about the outside world arrives through
the intent protocol, so a single body of protocol code can be driven

* by :class:`repro.simnet.driver.SimnetDriver` — charging every intent
  to a virtual-time :class:`~repro.simnet.Trace`, bit-identical to the
  pre-refactor inline execution; and
* by :class:`repro.serve.transport.WallTransport` — performing the
  same intents under asyncio against the wall clock.

The intent protocol, per type:

=============  =======================================================
intent         driver obligation
=============  =======================================================
``Send``       deliver one message ``src -> dst`` of ``nbytes``;
               raise :class:`~repro.errors.NodeUnreachableError` /
               :class:`~repro.errors.PacketLossError` *into* the
               program when the wire fails
``Compute``    charge ``ms`` of processing at the current node
``Sleep``      idle for ``ms`` (retry backoff) — virtual ``wait`` or a
               real (scaled, capped) ``asyncio.sleep``
``StoreGet``   evaluate ``path`` at store ``store_id``'s adapter and
               send the fragment (or ``None``) back in
``StorePut``   write ``fragment`` at ``path`` on ``store_id``
``SpanOpen``   open a named observability span (attrs attached)
``SpanSet``    set an attribute on the innermost open span
``SpanClose``  close the innermost open span
``Mark``       resilience accounting: ``retry`` / ``failover`` /
               ``stale_serve`` / ``degraded`` / ``degraded_item``
``PartReport`` attach per-part :class:`PartStatus` delivery reports
``Fork``       run sub-programs as parallel legs; exceptions of the
               ``capture`` types become per-leg
               :class:`LegOutcome.error`, anything else propagates
=============  =======================================================

Drivers close any spans a program leaves open when it raises — the
sans-io equivalent of unwinding ``with trace.span(...)`` blocks.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    TypeVar,
    Union,
)

from repro.pxml import Path, PNode

__all__ = [
    "Intent",
    "Send",
    "Compute",
    "Sleep",
    "StoreGet",
    "StorePut",
    "SpanOpen",
    "SpanSet",
    "SpanClose",
    "Mark",
    "PartReport",
    "Fork",
    "LegOutcome",
    "Program",
    "MARK_KINDS",
]

T = TypeVar("T")

#: A sans-io protocol program: yields intents, receives each intent's
#: result at the yield expression, returns its outcome.
Program = Generator["Intent", Any, T]

#: The resilience accounting vocabulary ``Mark`` may carry.
MARK_KINDS = (
    "retry", "failover", "stale_serve", "degraded", "degraded_item",
)


class Intent:
    """Base class for every sans-io I/O intent."""

    __slots__ = ()


class Send(Intent):
    """One message ``src -> dst`` carrying ``nbytes`` on the wire."""

    __slots__ = ("src", "dst", "nbytes", "note")

    def __init__(
        self, src: str, dst: str, nbytes: int, note: str = ""
    ) -> None:
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.note = note

    def __repr__(self) -> str:
        return "<Send %s->%s %dB%s>" % (
            self.src, self.dst, self.nbytes,
            " (%s)" % self.note if self.note else "",
        )


class Compute(Intent):
    """Local processing time at the current node."""

    __slots__ = ("ms", "note")

    def __init__(self, ms: float, note: str = "") -> None:
        self.ms = ms
        self.note = note

    def __repr__(self) -> str:
        return "<Compute %.3fms%s>" % (
            self.ms, " (%s)" % self.note if self.note else "",
        )


class Sleep(Intent):
    """Idle time (retry backoff): no bytes move, nothing computes."""

    __slots__ = ("ms", "note")

    def __init__(self, ms: float, note: str = "") -> None:
        self.ms = ms
        self.note = note

    def __repr__(self) -> str:
        return "<Sleep %.3fms%s>" % (
            self.ms, " (%s)" % self.note if self.note else "",
        )


class StoreGet(Intent):
    """Evaluate *path* at *store_id*; the driver sends the fragment
    (:class:`~repro.pxml.PNode` or ``None``) back into the program."""

    __slots__ = ("store_id", "path")

    def __init__(self, store_id: str, path: Path) -> None:
        self.store_id = store_id
        self.path = path

    def __repr__(self) -> str:
        return "<StoreGet %s %s>" % (self.store_id, self.path)


class StorePut(Intent):
    """Write *fragment* at *path* on *store_id* (provisioning leg)."""

    __slots__ = ("store_id", "path", "fragment")

    def __init__(
        self, store_id: str, path: Path, fragment: PNode
    ) -> None:
        self.store_id = store_id
        self.path = path
        self.fragment = fragment

    def __repr__(self) -> str:
        return "<StorePut %s %s>" % (self.store_id, self.path)


class SpanOpen(Intent):
    """Open a named observability span with optional attributes."""

    __slots__ = ("name", "attrs")

    def __init__(
        self, name: str, attrs: Optional[Dict[str, object]] = None
    ) -> None:
        self.name = name
        self.attrs = attrs

    def __repr__(self) -> str:
        return "<SpanOpen %s>" % self.name


class SpanSet(Intent):
    """Set one attribute on the innermost open span."""

    __slots__ = ("key", "value")

    def __init__(self, key: str, value: object) -> None:
        self.key = key
        self.value = value

    def __repr__(self) -> str:
        return "<SpanSet %s=%r>" % (self.key, self.value)


class SpanClose(Intent):
    """Close the innermost open span."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<SpanClose>"


class Mark(Intent):
    """Resilience accounting event (see :data:`MARK_KINDS`)."""

    __slots__ = ("kind", "count")

    def __init__(self, kind: str, count: int = 1) -> None:
        if kind not in MARK_KINDS:
            raise ValueError("unknown mark kind %r" % kind)
        if count < 1:
            raise ValueError("mark count must be >= 1")
        self.kind = kind
        self.count = count

    def __repr__(self) -> str:
        return "<Mark %s x%d>" % (self.kind, self.count)


class PartReport(Intent):
    """Attach per-part delivery reports (``PartStatus`` objects) to
    whatever status ledger the driver maintains."""

    __slots__ = ("statuses",)

    def __init__(self, statuses: Sequence[object]) -> None:
        self.statuses = list(statuses)

    def __repr__(self) -> str:
        return "<PartReport %d parts>" % len(self.statuses)


class LegOutcome:
    """Result of one :class:`Fork` leg: a value or a captured error."""

    __slots__ = ("value", "error")

    def __init__(
        self,
        value: Any = None,
        error: Optional[BaseException] = None,
    ) -> None:
        self.value = value
        self.error = error

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:
        if self.error is not None:
            return "<LegOutcome error=%s>" % type(self.error).__name__
        return "<LegOutcome ok>"


class Fork(Intent):
    """Run *programs* as parallel legs and resume with the list of
    per-leg :class:`LegOutcome` (in leg order).

    Exceptions of the *capture* types raised by a leg are recorded in
    its outcome; any other exception aborts the fork and propagates
    (legs after the failing one never run, and no join is performed) —
    mirroring the inline semantics the engine was refactored from."""

    __slots__ = ("programs", "capture")

    def __init__(
        self,
        programs: Sequence[Program],
        capture: Union[
            Tuple[Type[BaseException], ...], Tuple[()]
        ] = (),
    ) -> None:
        self.programs = list(programs)
        self.capture = capture

    def __repr__(self) -> str:
        return "<Fork %d legs capture=%s>" % (
            len(self.programs),
            "/".join(t.__name__ for t in self.capture) or "none",
        )


def leg_values(outcomes: Sequence[LegOutcome]) -> List[Any]:
    """Values of successful legs, in leg order (helper for callers
    that only need the survivors)."""
    return [o.value for o in outcomes if o.ok]
