"""Sans-io protocol core (ROADMAP item 2): the query patterns as
generator programs yielding typed I/O intents, driven either by the
virtual-time simnet harness or by the real asyncio transport."""

from repro.sansio.intents import (
    MARK_KINDS,
    Compute,
    Fork,
    Intent,
    LegOutcome,
    Mark,
    PartReport,
    Program,
    Send,
    Sleep,
    SpanClose,
    SpanOpen,
    SpanSet,
    StoreGet,
    StorePut,
    leg_values,
)
from repro.sansio.engine import (
    QueryOutcome,
    SansIoQueryEngine,
    StandaloneQueryHost,
    decision_of,
)

__all__ = [
    "Intent",
    "Send",
    "Compute",
    "Sleep",
    "StoreGet",
    "StorePut",
    "SpanOpen",
    "SpanSet",
    "SpanClose",
    "Mark",
    "PartReport",
    "Fork",
    "LegOutcome",
    "Program",
    "MARK_KINDS",
    "leg_values",
    "QueryOutcome",
    "SansIoQueryEngine",
    "StandaloneQueryHost",
    "decision_of",
]
