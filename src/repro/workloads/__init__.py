"""Workload generation: synthetic populations, skewed request streams,
and builders for the paper's concrete scenarios."""

from repro.workloads.scenarios import ConvergedWorld, build_converged_world
from repro.workloads.synthetic import (
    SyntheticAdapter,
    ZipfSampler,
    spread_users,
)

__all__ = [
    "ConvergedWorld",
    "build_converged_world",
    "SyntheticAdapter",
    "ZipfSampler",
    "spread_users",
]
