"""Reference latency workloads — the determinism contract for E18.

The observability layer (:mod:`repro.obs`) promises **zero cost when
disabled**: attaching spans and registry-backed counters under the
:class:`~repro.simnet.Trace` API must not change a single sampled
latency. That promise is only checkable against a fixture captured
*before* the layer existed — so this module distils the E1/E7/E16
benchmark worlds into small, fully deterministic latency streams whose
values are pinned in ``tests/data/golden_latencies.json``:

* **e1** — the four Section 5.2 query patterns (referral / chaining /
  recruiting / direct) over a split address book, from a well-connected
  and a wireless client;
* **e7** — a cached-pattern request stream with hits, misses, TTL
  expiry and an invalidation;
* **e16** — the sunny-day chaining stream of the availability
  experiment (no faults, every resilience counter zero), plus a
  **degraded** stream where the corporate single point of failure is
  down (retry sweeps, backoff waits, partial merges).

``bench_e18_observability.py`` and ``tests/test_obs_determinism.py``
replay these streams — observability disabled — and assert bit-identical
equality with the goldens; the benchmark then replays them enabled and
asserts the sampled latencies *still* match (spans observe, never
perturb).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.access import RequestContext
from repro.core import ComponentCache, GupsterServer, QueryExecutor
from repro.pxml import PNode
from repro.simnet import Network, Trace
from repro.workloads.synthetic import SyntheticAdapter

__all__ = [
    "GOLDEN_STREAMS",
    "build_split_world",
    "e1_stream",
    "e7_stream",
    "e16_degraded_stream",
    "e16_sunny_stream",
    "reference_streams",
]

BOOK = "/user[@id='u1']/address-book"
PERSONAL = "/user[@id='u1']/address-book/item[@type='personal']"
CORPORATE = "/user[@id='u1']/address-book/item[@type='corporate']"

#: Stream names, in report order.
GOLDEN_STREAMS = ("e1", "e7", "e16_sunny", "e16_degraded")


def _ctx() -> RequestContext:
    return RequestContext("app", relationship="third-party")


def build_split_world(
    seed: int = 16,
    ttl_ms: float = 2_000.0,
    stale_grace_ms: float = 0.0,
) -> Tuple[Network, GupsterServer, QueryExecutor]:
    """The E16 world: a split, partially-replicated address book.

    The personal slice is replicated (alpha || beta); the corporate
    slice lives only at the enterprise store — a single point of
    failure for the degraded stream to route around."""
    network = Network(seed=seed)
    network.add_node("gupster", region="core")
    network.add_node("client", region="internet")
    network.add_node("gup.alpha.com", region="internet")
    network.add_node("gup.beta.com", region="core")
    network.add_node("gup.corp.com", region="enterprise")
    server = GupsterServer(
        "gupster",
        cache=ComponentCache(
            capacity=64,
            default_ttl_ms=ttl_ms,
            stale_grace_ms=stale_grace_ms,
        ),
        enforce_policies=False,
    )
    for store_id, store_seed in (
        ("gup.alpha.com", 5),
        ("gup.beta.com", 5),
        ("gup.corp.com", 9),
    ):
        adapter = SyntheticAdapter(store_id, seed=store_seed)
        adapter.add_user("u1", ["address-book"])
        server.join(adapter, user_ids=[])
    server.register_component(PERSONAL, "gup.alpha.com")
    server.register_component(PERSONAL, "gup.beta.com")
    server.register_component(CORPORATE, "gup.corp.com")
    executor = QueryExecutor(network, server)
    return network, server, executor


def e1_stream() -> List[float]:
    """E1's pattern comparison: referral/chaining/recruiting/direct
    over the split book from a fast and a wireless client."""
    network = Network(seed=2003)
    network.add_node("gupster", region="core")
    network.add_node("client-fast", region="internet")
    network.add_node("client-wireless", region="wireless")
    network.add_node("gup.east.com", region="internet")
    network.add_node("gup.west.com", region="internet")
    server = GupsterServer("gupster", enforce_policies=False)
    east = SyntheticAdapter("gup.east.com", book_entries=20, seed=1)
    west = SyntheticAdapter("gup.west.com", book_entries=20, seed=2)
    east.add_user("u1", ["address-book"])
    west.add_user("u1", ["address-book"])
    server.join(east, user_ids=[])
    server.join(west, user_ids=[])
    server.register_component(PERSONAL, "gup.east.com")
    server.register_component(CORPORATE, "gup.west.com")
    executor = QueryExecutor(network, server)
    latencies: List[float] = []
    for client in ("client-fast", "client-wireless"):
        _fragment, trace = executor.referral(client, BOOK, _ctx())
        latencies.append(trace.elapsed_ms)
        _fragment, trace = executor.chaining(client, BOOK, _ctx())
        latencies.append(trace.elapsed_ms)
        _fragment, trace = executor.recruiting(client, BOOK, _ctx())
        latencies.append(trace.elapsed_ms)
        _fragment, trace = executor.direct(
            client,
            [("gup.east.com", PERSONAL), ("gup.west.com", CORPORATE)],
        )
        latencies.append(trace.elapsed_ms)
    return latencies


def e7_stream() -> List[float]:
    """E7's cached pattern: repeats (hits), TTL expiry, refill, and a
    trigger invalidation mid-stream."""
    network = Network(seed=77)
    network.add_node("gupster", region="core")
    network.add_node("client", region="internet")
    network.add_node("gup.store.com", region="internet")
    store = SyntheticAdapter("gup.store.com", seed=5)
    users = ["user%03d" % index for index in range(6)]
    for user in users:
        store.add_user(user, ["presence"])
    server = GupsterServer(
        "gupster",
        cache=ComponentCache(capacity=8, default_ttl_ms=5_000.0),
        enforce_policies=False,
    )
    server.join(store)
    executor = QueryExecutor(network, server)
    ctx = _ctx()
    latencies: List[float] = []
    now = 0.0
    requests = [0, 1, 0, 2, 0, 1, 3, 0, 4, 1, 5, 0]
    for step, user_index in enumerate(requests):
        user = users[user_index]
        path = "/user[@id='%s']/presence" % user
        _fragment, trace, _hit = executor.cached(
            "client", path, ctx, now=now
        )
        latencies.append(trace.elapsed_ms)
        now += 400.0
        if step == 6:
            # A background update fires the invalidation trigger.
            fragment = PNode("presence")
            fragment.append(PNode("status", text="away"))
            store.apply_component(users[0], "presence", fragment)
            server.cache.invalidate(
                "/user[@id='%s']/presence" % users[0]
            )
    # Let every entry expire, then refill once.
    now += 10_000.0
    _fragment, trace, _hit = executor.cached(
        "client", "/user[@id='%s']/presence" % users[0], ctx, now=now
    )
    latencies.append(trace.elapsed_ms)
    return latencies


def e16_sunny_stream() -> List[float]:
    """E16's sunny-day chaining stream: no faults, 40 queries."""
    network, _server, executor = build_split_world()
    latencies: List[float] = []
    now = 0.0
    for _step in range(40):
        _fragment, trace = executor.chaining(
            "client", BOOK, _ctx(), now=now
        )
        latencies.append(trace.elapsed_ms)
        now += 500.0
    return latencies


def e16_degraded_stream() -> List[Tuple[float, int]]:
    """E16's degraded stream: the corporate single point of failure is
    down, so every chaining query pays retry sweeps + backoff against
    the dead store and returns a partial merge. Returns
    ``(elapsed_ms, degraded_parts)`` per query."""
    network, _server, executor = build_split_world()
    network.fail("gup.corp.com")
    results: List[Tuple[float, int]] = []
    now = 0.0
    for _step in range(10):
        _fragment, trace = executor.chaining(
            "client", BOOK, _ctx(), now=now
        )
        results.append((trace.elapsed_ms, trace.degraded_parts))
        now += 500.0
    return results


def e16_degraded_query(observed: bool = False) -> Tuple[Network, Trace]:
    """One degraded E16 chaining query (corp store down) — the worked
    example the E18 benchmark exports as a Chrome trace. With
    *observed* the network's span recorder is enabled before the query
    runs, so the returned ``network.recorder`` holds the span tree."""
    network, _server, executor = build_split_world()
    if observed:
        network.enable_observability()
    network.fail("gup.corp.com")
    _fragment, trace = executor.chaining("client", BOOK, _ctx(), now=0.0)
    return network, trace


def reference_streams() -> Dict[str, List]:
    """Every golden stream, keyed by name (see :data:`GOLDEN_STREAMS`)."""
    return {
        "e1": e1_stream(),
        "e7": e7_stream(),
        "e16_sunny": e16_sunny_stream(),
        "e16_degraded": [list(pair) for pair in e16_degraded_stream()],
    }
