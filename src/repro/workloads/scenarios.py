"""Scenario builders: the paper's worlds, assembled and wired.

:func:`build_converged_world` constructs the full Figure 1 topology —
a wireless carrier (HLR/VLR/MSC + portal + presence), a PSTN switch, a
SIP deployment, an internet portal (Yahoo!-like), a corporate intranet
(Lucent-like, with an LDAP directory), end-user devices — GUP-enables
everything with adapters, registers the coverage of the paper's Section
4.3 example, and provisions the Section 4.6 example privacy shield.

Both running examples live here:

* **Alice** (Section 2.1, roaming profile): SprintPCS cell phone,
  Vodafone GSM phone with SIM, a PDA, Yahoo! personal data, Lucent
  corporate data.
* **Arnaud** (Sections 4.3/4.5): address book replicated at Yahoo! and
  SprintPCS, game scores, presence at SprintPCS, and the Figure 9
  variant where the book is split personal/corporate between Yahoo! and
  Lucent.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.access import (
    PolicyRule,
    all_of,
    relationship_in,
    working_hours,
)
from repro.adapters import (
    CompositeAdapter,
    DeviceAdapter,
    IspAdapter,
    EnterpriseAdapter,
    GupAdapter,
    HlrAdapter,
    LdapAdapter,
    PortalAdapter,
    PresenceAdapter,
    PstnAdapter,
    SipAdapter,
)
from repro.core import GupsterServer, QueryExecutor
from repro.simnet import Network, Simulator
from repro.stores import (
    AAAServer,
    BillingSystem,
    HLR,
    MSC,
    VLR,
    AppointmentRecord,
    Class5Switch,
    ContactRecord,
    DirectoryServer,
    EnterpriseServer,
    LdapEntry,
    MobilePhone,
    Pda,
    PhoneBookEntry,
    PresenceServer,
    SimCard,
    IspSessionStore,
    SipProxy,
    SipRegistrar,
    StoreDirectory,
    WebPortal,
)

__all__ = ["ConvergedWorld", "build_converged_world"]


class ConvergedWorld:
    """Everything a test/bench/example needs, in one bag."""

    def __init__(self):
        self.network = Network(seed=2003)
        self.sim = Simulator()
        self.directory = StoreDirectory()
        # Native stores (populated by the builder).
        self.hlr: Optional[HLR] = None
        self.vlr: Optional[VLR] = None
        self.msc: Optional[MSC] = None
        self.switch: Optional[Class5Switch] = None
        self.registrar: Optional[SipRegistrar] = None
        self.proxy: Optional[SipProxy] = None
        self.yahoo: Optional[WebPortal] = None
        self.spcs_portal: Optional[WebPortal] = None
        self.lucent: Optional[EnterpriseServer] = None
        self.ldap: Optional[DirectoryServer] = None
        self.presence: Optional[PresenceServer] = None
        self.aaa: Optional[AAAServer] = None
        self.pstn_billing: Optional[BillingSystem] = None
        self.wireless_billing: Optional[BillingSystem] = None
        self.isp: Optional[IspSessionStore] = None
        self.phones: Dict[str, MobilePhone] = {}
        self.pdas: Dict[str, Pda] = {}
        # GUP layer.
        self.adapters: Dict[str, GupAdapter] = {}
        self.server: Optional[GupsterServer] = None
        self.executor: Optional[QueryExecutor] = None
        #: Pre-pay billing service (set by the builder).
        self.prepay = None

    def adapter(self, store_id: str) -> GupAdapter:
        return self.adapters[store_id]


def build_converged_world(
    split_address_book: bool = False,
    with_policies: bool = True,
) -> ConvergedWorld:
    """Build the paper's converged world.

    Parameters
    ----------
    split_address_book:
        False → Arnaud's whole book is replicated at Yahoo! and
        SprintPCS (the Section 4.3 coverage). True → the Figure 9
        split: personal items at Yahoo!, corporate items at Lucent.
    with_policies:
        Provision the Section 4.6 example privacy shield for Arnaud
        and a matching one for Alice.
    """
    world = ConvergedWorld()
    net = world.network

    # ---- network nodes ---------------------------------------------------
    net.add_node("gupster", region="core")
    net.add_node("client-app", region="internet")
    net.add_node("reachme-service", region="core")
    for name, region in (
        ("gup.yahoo.com", "internet"),
        ("gup.spcs.com", "core"),
        ("gup.lucent.com", "enterprise"),
        ("gup.pstn.com", "core"),
        ("gup.voip.com", "internet"),
        ("gup.ldap.lucent.com", "enterprise"),
        ("gup.isp.example.com", "internet"),
        ("gup.device.alice", "wireless"),
        ("gup.device.arnaud", "wireless"),
    ):
        net.add_node(name, region=region)

    # ---- native stores ---------------------------------------------------
    world.hlr = HLR("hlr.spcs", carrier="sprintpcs")
    world.vlr = VLR("vlr.nj", served_cells=["nj-1", "nj-2"])
    world.hlr.attach_vlr(world.vlr)
    world.msc = MSC("msc.nj", world.hlr, world.vlr)
    world.hlr.provision_subscriber("9085551111", "imsi-alice", "alice")
    world.hlr.provision_subscriber("9085552222", "imsi-arnaud", "arnaud")

    world.switch = Class5Switch("5ess.mh")
    world.switch.install_line("9085820001", "alice")   # office line
    world.switch.install_line("9085820099", "alice-home")

    world.registrar = SipRegistrar("registrar.lucent")
    world.proxy = SipProxy("proxy.lucent", world.registrar)

    world.yahoo = WebPortal("portal.yahoo")
    world.spcs_portal = WebPortal("portal.spcs")
    world.lucent = EnterpriseServer("intranet.lucent", company="Lucent")
    world.presence = PresenceServer("im.spcs")

    world.aaa = AAAServer("aaa.lucent")
    world.aaa.enroll("alice", "s3cret")
    world.aaa.grant_service("alice", "voip")
    world.pstn_billing = BillingSystem("billing.pstn", network="PSTN")
    world.pstn_billing.set_plan("alice", "flat")
    world.wireless_billing = BillingSystem(
        "billing.spcs", network="Wireless"
    )
    world.wireless_billing.set_plan("alice", "per-minute")
    world.isp = IspSessionStore("isp.example")

    world.ldap = DirectoryServer(
        "ldap.lucent", suffix="o=lucent", region="enterprise"
    )
    world.ldap.add(
        LdapEntry("o=lucent", ["organization"], {"o": ["lucent"]})
    )

    for store in (
        world.hlr, world.vlr, world.msc, world.switch,
        world.registrar, world.proxy, world.yahoo, world.spcs_portal,
        world.lucent, world.presence, world.ldap,
        world.aaa, world.pstn_billing, world.wireless_billing,
        world.isp,
    ):
        world.directory.add(store)

    # ---- Alice (Example 1) --------------------------------------------------
    alice_sim = SimCard("imsi-alice-eu", "447700900111", capacity=50)
    alice_cell = MobilePhone(
        "phone.alice.spcs", "alice", "sprintpcs"
    )
    alice_gsm = MobilePhone(
        "phone.alice.voda", "alice", "vodafone", sim=alice_sim
    )
    alice_pda = Pda("pda.alice", "alice")
    world.phones["alice-cell"] = alice_cell
    world.phones["alice-gsm"] = alice_gsm
    world.pdas["alice"] = alice_pda
    for store in (alice_cell, alice_gsm, alice_pda):
        world.directory.add(store)

    alice_cell.store_entry(
        PhoneBookEntry("c1", "Bob Cell", "908-582-1111")
    )
    alice_cell.set_preference("ring-tone", "vivaldi")
    alice_cell.add_wap_bookmark("w1", "wap://weather")
    alice_gsm.store_entry(
        PhoneBookEntry("e1", "Maman", "+33-1-42-68-53-00"), on_sim=True
    )

    world.yahoo.create_account("alice")
    world.yahoo.put_contact(
        "alice",
        ContactRecord("y1", "Mom", kind="personal",
                      phones={"home": "+33-1-42-68-53-00"}),
    )
    world.yahoo.put_appointment(
        "alice",
        AppointmentRecord("ya1", "2003-01-10T19:00", "2003-01-10T21:00",
                          "Dinner", visibility="private"),
    )
    world.lucent.create_account("alice")
    world.lucent.put_contact(
        "alice",
        ContactRecord("l1", "Rick (manager)", kind="corporate",
                      phones={"work": "908-582-4393"},
                      emails={"corporate": "rick@lucent.com"}),
    )
    world.lucent.put_appointment(
        "alice",
        AppointmentRecord("la1", "2003-01-06T09:00", "2003-01-06T10:00",
                          "Staff meeting", where="MH 2C-501",
                          visibility="work"),
    )
    world.ldap.add(
        LdapEntry(
            "uid=alice,o=lucent",
            ["person", "inetOrgPerson", "organizationalPerson"],
            {
                "cn": ["Alice Smith"], "sn": ["Smith"],
                "uid": ["alice"], "mail": ["alice@lucent.com"],
                "telephoneNumber": ["908-582-0001"],
                "mobile": ["908-555-1111"],
                "ou": ["Bell Labs"],
            },
        )
    )
    world.registrar.register(
        "sip:alice@lucent.com", "135.104.3.7", "alice", now=0.0
    )
    world.presence.set_status("alice", "available")

    # ---- Arnaud (Sections 4.3/4.5) ------------------------------------------
    world.yahoo.create_account("arnaud")
    world.spcs_portal.create_account("arnaud")
    personal_contacts = [
        ContactRecord("p1", "Maman", kind="personal",
                      phones={"home": "+33-1-40-00-00-01"}),
        ContactRecord("p2", "Paul", kind="personal",
                      phones={"cell": "908-555-0002"}),
    ]
    corporate_contacts = [
        ContactRecord("c1", "Rick Hull", kind="corporate",
                      phones={"work": "908-582-4393"},
                      emails={"corporate": "hull@lucent.com"}),
        ContactRecord("c2", "Daniel Lieuwen", kind="corporate",
                      phones={"work": "908-582-5544"}),
    ]
    if split_address_book:
        # Figure 9: personal at Yahoo!, corporate at Lucent.
        for record in personal_contacts:
            world.yahoo.put_contact("arnaud", record)
        world.lucent.create_account("arnaud")
        for record in corporate_contacts:
            world.lucent.put_contact("arnaud", record)
    else:
        # Section 4.3: the whole book replicated at Yahoo! and SprintPCS.
        for record in personal_contacts + corporate_contacts:
            world.yahoo.put_contact("arnaud", record)
            world.spcs_portal.put_contact("arnaud", record)
    world.yahoo.set_score("arnaud", "chess", 1820)
    world.spcs_portal.set_score("arnaud", "chess", 1820)
    world.presence.set_status("arnaud", "available")

    arnaud_phone = MobilePhone(
        "phone.arnaud.spcs", "arnaud", "sprintpcs"
    )
    world.phones["arnaud-cell"] = arnaud_phone
    world.directory.add(arnaud_phone)

    # ---- adapters ---------------------------------------------------------
    yahoo_adapter = PortalAdapter("gup.yahoo.com", world.yahoo)
    lucent_adapter = EnterpriseAdapter("gup.lucent.com", world.lucent)
    presence_adapter = PresenceAdapter(
        "gup.spcs.com#presence", world.presence
    )
    presence_adapter.track_user("arnaud")
    presence_adapter.track_user("alice")
    # IM buddy lists (requirement 5's "buddies who are available").
    world.presence.add_buddy("arnaud", "alice", "Alice S.")
    world.presence.add_buddy("arnaud", "paul", "Paul")
    world.presence.add_buddy("alice", "arnaud", "Arnaud")
    # The Figure 1 Pre-Pay service lives inside the WSP: Arnaud is a
    # prepaid subscriber with a live balance.
    from repro.services.prepay import PrePayService, PrepayAdapter

    world.prepay = PrePayService(world.hlr)
    world.prepay.open_account("arnaud", 1500)
    spcs_adapter = CompositeAdapter(
        "gup.spcs.com",
        [
            PortalAdapter("gup.spcs.com#portal", world.spcs_portal),
            presence_adapter,
            HlrAdapter("gup.spcs.com#hlr", world.hlr),
            PrepayAdapter("gup.spcs.com#prepay", world.prepay),
        ],
        region="core",
    )
    pstn_adapter = PstnAdapter("gup.pstn.com", world.switch)
    pstn_adapter.attach_line("alice", "9085820001")
    sip_adapter = SipAdapter("gup.voip.com", world.proxy)
    sip_adapter.attach_aor("alice", "sip:alice@lucent.com")
    ldap_adapter = LdapAdapter("gup.ldap.lucent.com", world.ldap)
    ldap_adapter.map_person("alice", "uid=alice,o=lucent")
    isp_adapter = IspAdapter("gup.isp.example.com", world.isp)
    isp_adapter.track_user("alice")
    alice_device_adapter = DeviceAdapter("gup.device.alice", alice_cell)
    arnaud_device_adapter = DeviceAdapter(
        "gup.device.arnaud", arnaud_phone
    )

    for adapter in (
        yahoo_adapter, lucent_adapter, spcs_adapter, pstn_adapter,
        sip_adapter, ldap_adapter, isp_adapter, alice_device_adapter,
        arnaud_device_adapter,
    ):
        world.adapters[adapter.store_id] = adapter

    # ---- GUPster ------------------------------------------------------------
    from repro.core.cache import ComponentCache

    world.server = GupsterServer(
        "gupster", cache=ComponentCache(capacity=256)
    )
    for adapter in world.adapters.values():
        if isinstance(adapter, DeviceAdapter):
            # Devices are sync clients, not shared network stores:
            # reachable through their adapters but not registered as
            # coverage (their books are replicas of network data).
            world.server.join(adapter, user_ids=[])
        else:
            world.server.join(adapter)
    # Yahoo! holds only Alice's *personal* data, so its registrations
    # for her are slices (the enterprise side auto-slices via
    # EnterpriseAdapter.COMPONENT_SLICES).
    alice_book = "/user[@id='alice']/address-book"
    alice_cal = "/user[@id='alice']/calendar"
    world.server.unregister_component(alice_book, "gup.yahoo.com")
    world.server.register_component(
        alice_book + "/item[@type='personal']", "gup.yahoo.com"
    )
    world.server.unregister_component(alice_cal, "gup.yahoo.com")
    world.server.register_component(
        alice_cal + "/appointment[@visibility='private']",
        "gup.yahoo.com",
    )
    if split_address_book:
        # Figure 9: Arnaud's book is split — Yahoo! holds only the
        # personal items (Lucent's corporate slice is already
        # registered that way by the enterprise adapter).
        book = "/user[@id='arnaud']/address-book"
        world.server.unregister_component(book, "gup.yahoo.com")
        world.server.register_component(
            book + "/item[@type='personal']", "gup.yahoo.com"
        )
    world.executor = QueryExecutor(world.network, world.server)

    # ---- privacy shields ------------------------------------------------------
    if with_policies:
        _provision_paper_policies(world.server)
    return world


def _provision_paper_policies(server: GupsterServer) -> None:
    """The Section 4.6 example shield, for both users."""
    for user in ("arnaud", "alice"):
        prefix = "/user[@id='%s']" % user
        server.provision_policy(
            user,
            PolicyRule(
                user, prefix + "/presence", "permit",
                all_of(relationship_in("co-worker"), working_hours()),
                rule_id="%s-coworkers-presence" % user,
            ),
        )
        server.provision_policy(
            user,
            PolicyRule(
                user, prefix + "/presence", "permit",
                relationship_in("boss", "family"),
                rule_id="%s-boss-family-presence" % user,
            ),
        )
        server.provision_policy(
            user,
            PolicyRule(
                user,
                prefix + "/address-book/item[@type='personal']",
                "permit", relationship_in("family"),
                rule_id="%s-family-book" % user,
            ),
        )
        server.provision_policy(
            user,
            PolicyRule(
                user, prefix + "/calendar", "permit",
                relationship_in("family", "boss"),
                rule_id="%s-family-calendar" % user,
            ),
        )
        # IM buddies may see presence and the buddy list.
        server.provision_policy(
            user,
            PolicyRule(
                user, prefix + "/presence", "permit",
                relationship_in("buddy"),
                rule_id="%s-buddies-presence" % user,
            ),
        )
        server.provision_policy(
            user,
            PolicyRule(
                user, prefix + "/buddy-list", "permit",
                relationship_in("buddy"),
                rule_id="%s-buddies-list" % user,
            ),
        )
        # The converged services themselves act with broad read access
        # (they run inside the operator, Figure 1).
        server.provision_policy(
            user,
            PolicyRule(
                user, prefix, "permit",
                relationship_in("self"),
                rule_id="%s-self" % user,
            ),
        )
