"""Synthetic profile stores and workload generation for the scale
experiments (E3, E7).

Scale claims ("at its peak, Napster had more than 50m users") cannot be
checked by hand-building portal accounts; :class:`SyntheticAdapter`
generates deterministic GUP profiles on demand from a seed — no
per-user storage beyond the component inventory — so populations of
hundreds of thousands of users fit in memory while exercising exactly
the same code paths as the hand-built stores.

:class:`ZipfSampler` draws component-request sequences with the skew a
profile workload would show (hot users are looked up constantly, cold
ones almost never), which is what makes caching (E7) interesting.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.pxml import PNode
from repro.adapters.base import GupAdapter

__all__ = ["SyntheticAdapter", "ZipfSampler", "spread_users"]


class SyntheticAdapter(GupAdapter):
    """A GUP-enabled store whose profiles are generated, not stored."""

    COMPONENTS = (
        "address-book", "presence", "calendar", "game-scores",
        "devices", "preferences",
    )

    def __init__(
        self,
        store_id: str,
        region: str = "internet",
        book_entries: int = 10,
        calendar_entries: int = 5,
        seed: int = 7,
        memoize_exports: bool = False,
    ):
        super().__init__(store_id, region=region)
        self.book_entries = book_entries
        self.calendar_entries = calendar_entries
        self.seed = seed
        #: user id -> components this store holds for them
        self._holdings: Dict[str, Tuple[str, ...]] = {}
        #: components overridden by writes: (user, component) -> PNode
        self._written: Dict[Tuple[str, str], PNode] = {}
        #: Opt-in export memoization for hot read workloads (E19).
        #: Safe because :meth:`GupAdapter.get` projects the view
        #: through :func:`~repro.pxml.evaluate.extract`, which copies —
        #: the cached tree is never handed to callers for mutation.
        #: Invalidated on any add/remove/write for the user.
        self._export_cache: Optional[Dict[str, PNode]] = (
            {} if memoize_exports else None
        )

    def add_user(
        self, user_id: str, components: Sequence[str]
    ) -> None:
        unknown = [c for c in components if c not in self.COMPONENTS]
        if unknown:
            raise ValueError("unsupported components %r" % unknown)
        self._holdings[user_id] = tuple(components)
        if self._export_cache is not None:
            self._export_cache.pop(user_id, None)

    def remove_user(self, user_id: str) -> Dict[str, PNode]:
        """Drop *user_id* from this store, returning any written
        component overrides (shard migration carries them along so a
        moved subscriber's writes survive the move)."""
        self._holdings.pop(user_id, None)
        if self._export_cache is not None:
            self._export_cache.pop(user_id, None)
        overrides: Dict[str, PNode] = {}
        for key in [k for k in self._written if k[0] == user_id]:
            overrides[key[1]] = self._written.pop(key)
        return overrides

    def users(self) -> List[str]:
        return sorted(self._holdings)

    def user_count(self) -> int:
        return len(self._holdings)

    def holdings(self, user_id: str) -> Tuple[str, ...]:
        return self._holdings.get(user_id, ())

    def coverage_paths(self, user_id: str) -> List[str]:
        """Registration paths straight from the component inventory.

        Overrides the base implementation (which materializes the full
        exported view just to list its children) — at carrier-scale
        populations that generation pass dominates ``join()`` time.
        Produces byte-identical paths: exported children are exactly
        the held components, in :data:`COMPONENTS` order."""
        components = self._holdings.get(user_id)
        if components is None:
            return []
        held = set(components)
        return [
            "/user[@id='%s']/%s%s"
            % (user_id, tag, self.COMPONENT_SLICES.get(tag, ""))
            for tag in self.COMPONENTS
            if tag in held
        ]

    # -- generation ------------------------------------------------------------

    def export_user(self, user_id: str) -> Optional[PNode]:
        components = self._holdings.get(user_id)
        if components is None:
            return None
        if self._export_cache is not None:
            cached = self._export_cache.get(user_id)
            if cached is not None:
                return cached
        root = self._user_root(user_id)
        # CRC32, not hash(): string hash() is randomized per process
        # (PYTHONHASHSEED), which silently made generated *text* —
        # and therefore sampled byte sizes and latencies — differ
        # between runs of the same seed. The E18 golden-latency gate
        # caught this; profile content must be a pure function of
        # (user, store, seed).
        rng = random.Random(
            (zlib.crc32(user_id.encode("utf-8"))
             ^ self.seed
             ^ zlib.crc32(self.store_id.encode("utf-8"))) & 0x7FFFFFFF
        )
        for component in components:
            override = self._written.get((user_id, component))
            if override is not None:
                root.append(override.copy())
                continue
            builder = getattr(self, "_build_" + component.replace("-", "_"))
            root.append(builder(user_id, rng))
        if self._export_cache is not None:
            self._export_cache[user_id] = root
        return root

    def apply_component(
        self, user_id: str, component: str, fragment: PNode
    ) -> None:
        if user_id not in self._holdings:
            self._holdings[user_id] = (component,)
        elif component not in self._holdings[user_id]:
            self._holdings[user_id] = self._holdings[user_id] + (
                component,
            )
        self._written[(user_id, component)] = fragment.copy()
        if self._export_cache is not None:
            self._export_cache.pop(user_id, None)

    # -- component builders ----------------------------------------------------

    def _build_address_book(self, user_id: str, rng) -> PNode:
        book = PNode("address-book")
        for index in range(self.book_entries):
            item = book.append(
                PNode(
                    "item",
                    {
                        "id": str(index),
                        "type": "personal" if index % 2 else "corporate",
                    },
                )
            )
            item.append(
                PNode("name", text="Contact %d of %s" % (index, user_id))
            )
            item.append(
                PNode(
                    "number", {"type": "cell"},
                    "908-%03d-%04d" % (rng.randint(100, 999),
                                       rng.randint(0, 9999)),
                )
            )
        return book

    def _build_presence(self, user_id: str, rng) -> PNode:
        presence = PNode("presence")
        presence.append(
            PNode(
                "status",
                text=rng.choice(["available", "busy", "away", "offline"]),
            )
        )
        return presence

    def _build_calendar(self, user_id: str, rng) -> PNode:
        calendar = PNode("calendar")
        for index in range(self.calendar_entries):
            appt = calendar.append(
                PNode("appointment", {"id": "a%d" % index})
            )
            hour = 8 + (index * 2) % 10
            appt.append(
                PNode("start", text="2003-01-06T%02d:00" % hour)
            )
            appt.append(
                PNode("end", text="2003-01-06T%02d:00" % (hour + 1))
            )
            appt.append(
                PNode("subject", text="meeting %d" % index)
            )
        return calendar

    def _build_game_scores(self, user_id: str, rng) -> PNode:
        scores = PNode("game-scores")
        for game in ("chess", "go"):
            scores.append(
                PNode("score", {"game": game},
                      str(rng.randint(100, 3000)))
            )
        return scores

    def _build_devices(self, user_id: str, rng) -> PNode:
        devices = PNode("devices")
        devices.append(
            PNode(
                "device",
                {
                    "id": "dev-%s" % user_id,
                    "type": "cell-phone",
                    "carrier": rng.choice(
                        ["sprintpcs", "vodafone", "att"]
                    ),
                },
            )
        )
        return devices

    def _build_preferences(self, user_id: str, rng) -> PNode:
        prefs = PNode("preferences")
        prefs.append(
            PNode("preference", {"name": "language"},
                  rng.choice(["en", "fr", "de"]))
        )
        return prefs


class ZipfSampler:
    """Deterministic Zipf(alpha) sampler over a fixed item list."""

    def __init__(self, items: Sequence, alpha: float = 1.0,
                 seed: int = 2003):
        if not items:
            raise ValueError("need at least one item")
        self.items = list(items)
        self._rng = random.Random(seed)
        weights = [
            1.0 / ((rank + 1) ** alpha) for rank in range(len(items))
        ]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)

    def sample(self):
        point = self._rng.random()
        low, high = 0, len(self._cdf) - 1
        while low < high:
            mid = (low + high) // 2
            if self._cdf[mid] < point:
                low = mid + 1
            else:
                high = mid
        return self.items[low]

    def sequence(self, count: int) -> List:
        return [self.sample() for _ in range(count)]


def spread_users(
    n_users: int,
    stores: Sequence[SyntheticAdapter],
    components_per_user: int = 3,
    replicas: int = 1,
    seed: int = 2003,
) -> List[str]:
    """Distribute a synthetic population over stores.

    Each user gets *components_per_user* components, each placed on
    *replicas* distinct stores (round-robin with a seeded shuffle) —
    heterogeneous placement, as the paper expects ("the profile data
    may be distributed in different ways for each end-user").
    Returns the user ids.
    """
    if replicas > len(stores):
        raise ValueError("more replicas than stores")
    rng = random.Random(seed)
    component_pool = list(SyntheticAdapter.COMPONENTS)
    users = []
    for index in range(n_users):
        user_id = "user%06d" % index
        users.append(user_id)
        components = rng.sample(
            component_pool, min(components_per_user, len(component_pool))
        )
        for component in components:
            first = rng.randrange(len(stores))
            for r in range(replicas):
                store = stores[(first + r) % len(stores)]
                held = store.holdings(user_id)
                store.add_user(user_id, held + (component,))
    return users
