"""Containment and overlap for the GUPster XPath fragment.

Coverage lookup (paper Section 4.5) reduces to deciding, for a request
path ``p`` and a registered coverage path ``q``:

* ``subtree_covers(q, p)`` — does the component registered at ``q``
  contain everything ``p`` asks for? If yes, a referral to that store
  alone can answer the request.
* ``subtree_overlaps(q, p)`` — does the component hold *part* of what
  ``p`` asks for? If only overlaps exist (e.g. the split address book of
  Figure 9), the referral must list several stores plus a merge plan.

For this fragment (child axis, ``*``, attribute-equality predicates)
containment is decidable by a direct step-wise check — the homomorphism
of [Deutsch & Tannen, KRDB 2001] degenerates to step alignment because
there is no descendant axis. Experiment E10 measures its cost.

All functions accept ``str`` or :class:`~repro.pxml.path.Path`.
"""

from __future__ import annotations

from typing import Union

from typing import Optional

from repro.pxml.path import WILDCARD, Path, Predicate, Step, parse_path

__all__ = [
    "step_contains",
    "steps_compatible",
    "node_contains",
    "subtree_covers",
    "subtree_overlaps",
    "path_contains",
    "intersect_regions",
]

PathLike = Union[str, Path]


def step_contains(outer: Step, inner: Step) -> bool:
    """Does *outer* select every element that *inner* selects?

    True when outer's name test is no stricter (equal, or wildcard) and
    outer's predicates are a subset of inner's.
    """
    if not outer.is_wildcard and outer.name != inner.name:
        return False
    if inner.is_wildcard and not outer.is_wildcard:
        return False
    inner_preds = inner.predicate_map()
    return all(
        inner_preds.get(p.attr) == p.value for p in outer.predicates
    )


def steps_compatible(a: Step, b: Step) -> bool:
    """Can a single element satisfy both steps?

    Names must be equal or one a wildcard; predicates must not bind the
    same attribute to different values.
    """
    if not a.is_wildcard and not b.is_wildcard and a.name != b.name:
        return False
    b_preds = b.predicate_map()
    for pred in a.predicates:
        if pred.attr in b_preds and b_preds[pred.attr] != pred.value:
            return False
    return True


def node_contains(outer: PathLike, inner: PathLike) -> bool:
    """Node-set containment: every node selected by *inner* (in any
    document) is selected by *outer*."""
    q = parse_path(outer)
    p = parse_path(inner)
    if q.depth != p.depth or q.attribute != p.attribute:
        return False
    return all(
        step_contains(qs, ps) for qs, ps in zip(q.steps, p.steps)
    )


def path_contains(outer: PathLike, inner: PathLike) -> bool:
    """Alias for :func:`node_contains` (the classical p ⊒ q relation)."""
    return node_contains(outer, inner)


def subtree_covers(coverage: PathLike, request: PathLike) -> bool:
    """Does the component registered at *coverage* fully answer *request*?

    The component is the entire subtree rooted at nodes selected by
    *coverage* (or just one attribute when *coverage* ends in ``/@a``).
    """
    q = parse_path(coverage)
    p = parse_path(request)
    if q.depth > p.depth:
        return False
    if not all(
        step_contains(qs, ps) for qs, ps in zip(q.steps, p.steps)
    ):
        return False
    if q.attribute is None:
        # q owns the whole subtree: any deeper element path or attribute
        # underneath is covered.
        return True
    # q owns a single attribute: only the identical attribute at the same
    # depth is covered.
    return q.depth == p.depth and p.attribute == q.attribute


def intersect_regions(a: PathLike, b: PathLike) -> Optional[Path]:
    """The largest region contained in both *a* and *b*, or None when
    the regions are disjoint.

    For this fragment the intersection is constructive: aligned steps
    merge (the concrete name wins over ``*``, predicates union), and
    the deeper path's remaining steps carry over. The privacy shield
    uses this to rewrite a request down to exactly the permitted slice
    (paper Section 5.3: "only a subset of the information asked for
    can be returned").
    """
    p = parse_path(a)
    q = parse_path(b)
    if not subtree_overlaps(p, q):
        return None
    shallow, deep = (p, q) if p.depth <= q.depth else (q, p)
    steps = []
    for index, deep_step in enumerate(deep.steps):
        if index < shallow.depth:
            shallow_step = shallow.steps[index]
            name = (
                shallow_step.name
                if not shallow_step.is_wildcard
                else deep_step.name
            )
            if name == WILDCARD and not deep_step.is_wildcard:
                name = deep_step.name
            merged = dict(deep_step.predicate_map())
            merged.update(shallow_step.predicate_map())
            steps.append(
                Step(
                    name,
                    tuple(
                        Predicate(attr, value)
                        for attr, value in merged.items()
                    ),
                )
            )
        else:
            steps.append(deep_step)
    # Attribute selector: the narrower (attribute) region wins; overlap
    # already guaranteed consistency.
    attribute = deep.attribute
    if shallow.depth == deep.depth and shallow.attribute is not None:
        attribute = shallow.attribute
    return Path(tuple(steps), attribute)


def subtree_overlaps(a: PathLike, b: PathLike) -> bool:
    """Can the components at *a* and *b* share any data in some document?

    Symmetric. True when a document can contain a node/attribute lying in
    both subtree regions. Used to detect split components (Figure 9) and
    conflicting registrations.
    """
    p = parse_path(a)
    q = parse_path(b)
    shallow, deep = (p, q) if p.depth <= q.depth else (q, p)
    if not all(
        steps_compatible(s, d)
        for s, d in zip(shallow.steps, deep.steps)
    ):
        return False
    if shallow.depth == deep.depth:
        if shallow.attribute is None or deep.attribute is None:
            return True
        return shallow.attribute == deep.attribute
    # Different depths: the shallower region must include whole subtrees
    # to reach down into the deeper one.
    return shallow.attribute is None
