"""Merge operators for profile components.

The paper needs merging in two places:

* **Split components** (Figure 9): Arnaud's address book lives partly at
  Yahoo! and partly at Lucent; a request for the whole book returns two
  fragments that must be combined ("a way to merge the two XML
  fragments", Section 4.5). Related work cites Deep Union [Buneman,
  Deutsch, Tan 1998] and Merge [Tufte & Maier 2001].
* **Reconciliation** (requirement 6): slightly inconsistent replicas
  (phone vs network address book) must be reconciled under an end-user
  policy, e.g. by prioritizing sites.

Element identity follows *Keys for XML* [Buneman et al., WWW10]: a
:class:`KeySpec` says which attributes identify an element among its
siblings. Keyed elements with equal keys merge recursively; unkeyed
elements are deduplicated by canonical form and otherwise concatenated.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import MergeConflictError, ModelError
from repro.pxml.node import PNode

__all__ = [
    "ConflictPolicy",
    "KeySpec",
    "GUP_KEYSPEC",
    "deep_union",
    "merge_all",
    "prioritized_merge",
]


class ConflictPolicy(Enum):
    """What to do when two keyed elements disagree on a leaf value."""

    PREFER_FIRST = "prefer-first"
    PREFER_SECOND = "prefer-second"
    RAISE = "raise"
    KEEP_BOTH = "keep-both"


class KeySpec:
    """Maps element tags to the attribute tuple that identifies them.

    Example: ``KeySpec({'item': ('id',), 'device': ('id',)})`` makes two
    ``<item id='42'>`` elements the *same logical entry* wherever they
    come from. Tags without a key are treated as singletons when they
    appear at most once per parent (typical for profile containers like
    ``<address-book>``), and as set members deduplicated by value
    otherwise.
    """

    def __init__(self, keys: Optional[Dict[str, Tuple[str, ...]]] = None):
        self._keys: Dict[str, Tuple[str, ...]] = dict(keys or {})

    def key_attrs(self, tag: str) -> Optional[Tuple[str, ...]]:
        return self._keys.get(tag)

    def identity(self, node: PNode) -> Optional[tuple]:
        """Key tuple of *node*, or None if the tag is unkeyed or the node
        is missing a key attribute (then it can only dedup by value)."""
        attrs = self._keys.get(node.tag)
        if attrs is None:
            return None
        values = tuple(node.attrs.get(a) for a in attrs)
        if any(v is None for v in values):
            return None
        return (node.tag,) + values

    def extended(self, extra: Dict[str, Tuple[str, ...]]) -> "KeySpec":
        merged = dict(self._keys)
        merged.update(extra)
        return KeySpec(merged)


#: Keys for the standard GUP schema (see :mod:`repro.pxml.schema`).
GUP_KEYSPEC = KeySpec(
    {
        "user": ("id",),
        "item": ("id",),
        "entry": ("id",),
        "device": ("id",),
        "location": ("id",),
        "appointment": ("id",),
        "buddy": ("id",),
        "card": ("id",),
        "account": ("id",),
        "bookmark": ("id",),
        "service": ("name",),
        "preference": ("name",),
        "application": ("name",),
        "number": ("type",),
        "address": ("type",),
        "email": ("type",),
        "call-status": ("network",),
    }
)


def deep_union(
    first: PNode,
    second: PNode,
    keyspec: KeySpec = GUP_KEYSPEC,
    policy: ConflictPolicy = ConflictPolicy.PREFER_FIRST,
) -> PNode:
    """Merge two fragments of the same component into one tree.

    The roots must be mergeable (same tag, compatible identity), which is
    always the case for two referral fragments of one request.
    """
    if first.tag != second.tag:
        raise MergeConflictError(
            "cannot merge %r with %r" % (first.tag, second.tag)
        )
    id_a = keyspec.identity(first)
    id_b = keyspec.identity(second)
    if id_a is not None and id_b is not None and id_a != id_b:
        raise MergeConflictError(
            "root identities differ: %r vs %r" % (id_a, id_b)
        )
    return _merge_nodes(first, second, keyspec, policy)


def merge_all(
    fragments: Sequence[PNode],
    keyspec: KeySpec = GUP_KEYSPEC,
    policy: ConflictPolicy = ConflictPolicy.PREFER_FIRST,
) -> PNode:
    """Left fold of :func:`deep_union` over *fragments* (at least one)."""
    if not fragments:
        raise ModelError("merge_all needs at least one fragment")
    merged = fragments[0].copy()
    for fragment in fragments[1:]:
        merged = _merge_nodes(merged, fragment, keyspec, policy)
    return merged


def prioritized_merge(
    ranked_fragments: Sequence[Tuple[int, PNode]],
    keyspec: KeySpec = GUP_KEYSPEC,
) -> PNode:
    """Reconcile replicas by site priority (paper Section 5.3:
    "reconciliation can be handled by prioritizing sites").

    *ranked_fragments* is ``[(priority, tree), ...]``; lower numbers win
    conflicts. Entries present only in a lower-priority replica still
    survive (union semantics); only conflicting leaf values defer to the
    higher-priority site.
    """
    if not ranked_fragments:
        raise ModelError("prioritized_merge needs at least one fragment")
    ordered = sorted(ranked_fragments, key=lambda rf: rf[0])
    trees = [tree for _, tree in ordered]
    return merge_all(trees, keyspec, ConflictPolicy.PREFER_FIRST)


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------

def _merge_nodes(
    a: PNode, b: PNode, keyspec: KeySpec, policy: ConflictPolicy
) -> PNode:
    merged = PNode(a.tag)
    merged.attrs = _merge_attrs(a, b, policy)
    if a.text is not None or b.text is not None:
        merged.set_text(_merge_text(a, b, policy))
        if merged.text is None and (a.children or b.children):
            pass  # fall through to child merge (one side was element-y)
        else:
            return merged
    _merge_children(merged, a.children, b.children, keyspec, policy)
    return merged


def _merge_attrs(a: PNode, b: PNode, policy: ConflictPolicy) -> Dict[str, str]:
    merged = dict(b.attrs)
    for key, value in a.attrs.items():
        if key in merged and merged[key] != value:
            if policy is ConflictPolicy.RAISE:
                raise MergeConflictError(
                    "attribute conflict on <%s>/@%s: %r vs %r"
                    % (a.tag, key, value, merged[key])
                )
            if policy is ConflictPolicy.PREFER_SECOND:
                continue
        merged[key] = value
    if policy is ConflictPolicy.PREFER_SECOND:
        merged.update(b.attrs)
    return merged


def _merge_text(
    a: PNode, b: PNode, policy: ConflictPolicy
) -> Optional[str]:
    if a.text == b.text:
        return a.text
    if a.text is None:
        return b.text
    if b.text is None:
        return a.text
    if policy is ConflictPolicy.RAISE:
        raise MergeConflictError(
            "text conflict in <%s>: %r vs %r" % (a.tag, a.text, b.text)
        )
    if policy is ConflictPolicy.PREFER_SECOND:
        return b.text
    return a.text  # PREFER_FIRST and KEEP_BOTH (text cannot keep both)


def _merge_children(
    parent: PNode,
    left: Iterable[PNode],
    right: Iterable[PNode],
    keyspec: KeySpec,
    policy: ConflictPolicy,
) -> None:
    consumed = set()
    right = list(right)

    # Index right-side children by identity, and singleton tags by name.
    by_identity: Dict[tuple, int] = {}
    by_tag: Dict[str, List[int]] = {}
    by_value: Dict[tuple, int] = {}
    for index, node in enumerate(right):
        identity = keyspec.identity(node)
        if identity is not None:
            by_identity.setdefault(identity, index)
        by_tag.setdefault(node.tag, []).append(index)
        by_value.setdefault(node.canonical_key(), index)

    for node in left:
        identity = keyspec.identity(node)
        partner_index = None
        if identity is not None and identity in by_identity:
            candidate = by_identity[identity]
            if candidate not in consumed:
                partner_index = candidate
        elif identity is None:
            value_twin = by_value.get(node.canonical_key())
            if value_twin is not None and value_twin not in consumed:
                partner_index = value_twin
            elif keyspec.key_attrs(node.tag) is None:
                # Unkeyed singleton container (e.g. <address-book>):
                # merge with the unique same-tag partner if both sides
                # have exactly one.
                indexes = [
                    i for i in by_tag.get(node.tag, ()) if i not in consumed
                ]
                left_twins = sum(
                    1 for sibling in parent.children
                    if sibling.tag == node.tag
                )
                if len(indexes) == 1 and left_twins == 0:
                    partner_index = indexes[0]
        if partner_index is not None:
            consumed.add(partner_index)
            parent.append(
                _merge_nodes(node, right[partner_index], keyspec, policy)
            )
        else:
            parent.append(node.copy())

    for index, node in enumerate(right):
        if index not in consumed:
            parent.append(node.copy())
