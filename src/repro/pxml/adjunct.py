"""Schema Adjunct Framework (paper Sections 2.3(8) and 7).

The paper proposes "expand[ing] on the traditional meta-data
representations ... to include information about data placement, rules
for data reconciliation, etc." and asks "how should the Schema Adjunct
Framework [26] be applied to capture these aspects?"

A :class:`SchemaAdjunct` attaches named properties to schema regions
(XPath-fragment paths): per-component cache TTLs, reconciliation
policies, placement constraints, sensitivity labels. Lookup resolves
the most specific covering region — so ``/user/wallet`` can carry
``cache-ttl=0`` while ``/user`` defaults to 60s.

GUPster consumes adjuncts through :meth:`property_for`; experiments
use them for the per-component reconciliation/caching ablations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.errors import PXMLError
from repro.pxml.path import Path, parse_path
from repro.pxml.containment import subtree_covers

__all__ = ["SchemaAdjunct", "GUP_ADJUNCT", "build_gup_adjunct"]


class SchemaAdjunct:
    """Named properties attached to schema regions."""

    def __init__(self, name: str = "adjunct"):
        self.name = name
        #: property -> list of (region path, value); order irrelevant,
        #: specificity (depth, predicate count) decides.
        # gupcheck: bounded[schema-vocab] -- one per (property, region); attach() replaces a region
        self._entries: Dict[str, List[Tuple[Path, object]]] = {}

    def attach(
        self, region: Union[str, Path], prop: str, value: object
    ) -> None:
        parsed = parse_path(region)
        if parsed.attribute is not None:
            raise PXMLError(
                "adjuncts attach to element regions, not attributes"
            )
        bucket = self._entries.setdefault(prop, [])
        bucket[:] = [
            (path, v) for path, v in bucket if path != parsed
        ]
        bucket.append((parsed, value))

    def property_for(
        self,
        target: Union[str, Path],
        prop: str,
        default: object = None,
    ) -> object:
        """Value of *prop* at *target*: the most specific attached
        region that covers the target wins."""
        parsed = parse_path(target)
        best: Optional[Tuple[int, int, object]] = None
        for region, value in self._entries.get(prop, ()):
            if not subtree_covers(region, parsed):
                continue
            specificity = (
                region.depth,
                sum(len(step.predicates) for step in region.steps),
            )
            if best is None or specificity > best[:2]:
                best = (specificity[0], specificity[1], value)
        return best[2] if best is not None else default

    def properties_at(
        self, target: Union[str, Path]
    ) -> Dict[str, object]:
        """All effective properties at *target*."""
        return {
            prop: self.property_for(target, prop)
            for prop in self._entries
            if self.property_for(target, prop) is not None
        }

    def regions(self, prop: str) -> List[str]:
        return sorted(
            str(path) for path, _v in self._entries.get(prop, ())
        )


def build_gup_adjunct() -> SchemaAdjunct:
    """The default adjunct for the GUP schema: caching and
    reconciliation metadata per component, with sensible sensitivity
    labels. Mirrors the kinds of facts the paper wants re-ified next
    to the schema."""
    adjunct = SchemaAdjunct("gup-defaults")
    # Cache TTLs: volatile components cache briefly, stable ones long.
    adjunct.attach("/user", "cache-ttl-ms", 60_000.0)
    adjunct.attach("/user/presence", "cache-ttl-ms", 2_000.0)
    adjunct.attach("/user/location", "cache-ttl-ms", 2_000.0)
    adjunct.attach("/user/call-status", "cache-ttl-ms", 500.0)
    adjunct.attach("/user/address-book", "cache-ttl-ms", 300_000.0)
    adjunct.attach("/user/wallet", "cache-ttl-ms", 0.0)  # never cache
    # Reconciliation policy per component.
    adjunct.attach("/user", "reconcile", "merge")
    adjunct.attach("/user/presence", "reconcile", "last-writer-wins")
    adjunct.attach("/user/wallet", "reconcile", "server-wins")
    # Sensitivity labels drive placement constraints.
    adjunct.attach("/user", "sensitivity", "normal")
    adjunct.attach("/user/wallet", "sensitivity", "restricted")
    adjunct.attach("/user/calendar", "sensitivity", "private")
    adjunct.attach(
        "/user/address-book/item[@type='personal']",
        "sensitivity", "private",
    )
    return adjunct


#: Shared default instance.
GUP_ADJUNCT = build_gup_adjunct()
