"""Evaluation of the GUPster XPath fragment over profile documents.

``evaluate`` returns the selected element nodes; ``evaluate_values``
returns attribute strings when the path ends in ``/@attr``. The data
stores use these to answer referral'd requests, and the privacy shield
uses them to project permitted subtrees.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.pxml.node import PNode
from repro.pxml.path import Path, parse_path

__all__ = [
    "evaluate",
    "evaluate_values",
    "evaluate_first",
    "extract",
    "exists",
]


def evaluate(root: PNode, path: Union[str, Path]) -> List[PNode]:
    """Select the element nodes of *root*'s document matched by *path*.

    The first step is matched against the document root itself (standard
    absolute-path semantics for a single-rooted document).
    """
    parsed = parse_path(path)
    first = parsed.steps[0]
    if not first.matches(root.tag, root.attrs):
        return []
    frontier = [root]
    for step in parsed.steps[1:]:
        frontier = [
            child
            for node in frontier
            for child in node.children
            if step.matches(child.tag, child.attrs)
        ]
        if not frontier:
            return []
    return frontier


def evaluate_values(root: PNode, path: Union[str, Path]) -> List[str]:
    """Evaluate a path ending in ``/@attr``; returns attribute values.

    For element paths this returns the text content of selected leaves
    (empty string for non-text elements), which is the natural "value of"
    reading used by reach-me rules.
    """
    parsed = parse_path(path)
    nodes = evaluate(root, parsed.element_path())
    if parsed.attribute is not None:
        return [
            node.attrs[parsed.attribute]
            for node in nodes
            if parsed.attribute in node.attrs
        ]
    return [node.text if node.text is not None else "" for node in nodes]


def evaluate_first(
    root: PNode, path: Union[str, Path]
) -> Optional[PNode]:
    """First matching element or None."""
    nodes = evaluate(root, path)
    return nodes[0] if nodes else None


def exists(root: PNode, path: Union[str, Path]) -> bool:
    """Does the path select anything in this document?"""
    parsed = parse_path(path)
    if parsed.attribute is not None:
        return bool(evaluate_values(root, parsed))
    return bool(evaluate(root, parsed))


def extract(root: PNode, path: Union[str, Path]) -> Optional[PNode]:
    """Project the subtree(s) selected by *path* out of *root*.

    Returns a copy of *root* pruned to only the ancestor chains and
    subtrees of matching nodes — i.e. the XML fragment a data store
    ships back for a component request. Returns None when nothing
    matches.

    The ancestor spine is preserved (with attributes) so the fragment is
    self-describing: a request for ``/user[@id='a']/address-book`` yields
    ``<user id='a'><address-book>...</address-book></user>``.
    """
    parsed = parse_path(path)
    matches = evaluate(root, parsed.element_path())
    if not matches:
        return None
    keep = set()
    spine = set()
    for node in matches:
        keep.add(id(node))
        for ancestor in node.path_from_root()[:-1]:
            spine.add(id(ancestor))
    return _prune(root, keep, spine)


def _prune(node: PNode, keep: set, spine: set) -> Optional[PNode]:
    if id(node) in keep:
        return node.copy()
    if id(node) not in spine:
        return None
    pruned = PNode(node.tag, dict(node.attrs))
    for child in node.children:
        kept = _prune(child, keep, spine)
        if kept is not None:
            pruned.append(kept)
    return pruned
