"""Profile-XML data model: trees, parsing, paths, containment, merging,
and the GUP schema. This is the common data model (requirement 1) every
other subsystem builds on."""

from repro.pxml.node import PNode, element
from repro.pxml.parse import parse
from repro.pxml.path import Path, Predicate, Step, parse_path
from repro.pxml.evaluate import (
    evaluate,
    evaluate_first,
    evaluate_values,
    exists,
    extract,
)
from repro.pxml.containment import (
    intersect_regions,
    node_contains,
    path_contains,
    step_contains,
    steps_compatible,
    subtree_covers,
    subtree_overlaps,
)
from repro.pxml.merge import (
    ConflictPolicy,
    GUP_KEYSPEC,
    KeySpec,
    deep_union,
    merge_all,
    prioritized_merge,
)
from repro.pxml.adjunct import (
    GUP_ADJUNCT,
    SchemaAdjunct,
    build_gup_adjunct,
)
from repro.pxml.schema import (
    GUP_SCHEMA,
    AttrDecl,
    ChildDecl,
    ElementDecl,
    Schema,
    Violation,
    build_gup_schema,
)

__all__ = [
    "PNode", "element", "parse",
    "Path", "Predicate", "Step", "parse_path",
    "evaluate", "evaluate_first", "evaluate_values", "exists", "extract",
    "node_contains", "path_contains", "step_contains", "steps_compatible",
    "intersect_regions",
    "subtree_covers", "subtree_overlaps",
    "ConflictPolicy", "GUP_KEYSPEC", "KeySpec", "deep_union", "merge_all",
    "prioritized_merge",
    "GUP_SCHEMA", "AttrDecl", "ChildDecl", "ElementDecl", "Schema",
    "Violation", "build_gup_schema",
    "SchemaAdjunct", "GUP_ADJUNCT", "build_gup_adjunct",
]
