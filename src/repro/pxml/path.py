"""The XPath fragment used by GUPster coverage and the privacy shield.

The paper (Section 4.5) restricts coverage expressions to "a subset of
XPath with child- and attribute-axis only and limited predicates, in
order to have a canonical way to navigate the tree". This module
implements exactly that fragment:

* absolute location paths: ``/user/address-book/item``
* name tests or the ``*`` wildcard at each step
* zero or more attribute-equality predicates per step:
  ``/user[@id='arnaud']/address-book/item[@type='personal']``
* an optional trailing attribute selector: ``.../item/@phone``

Descendant axis (``//``), functions, positional predicates, and every
other XPath feature are *deliberately* rejected with
:class:`repro.errors.UnsupportedPathError` — containment (see
:mod:`repro.pxml.containment`) is efficiently decidable for this
fragment, which is what makes coverage lookup fast (experiment E10).

Path objects are immutable and hashable so they can key coverage maps.
"""

from __future__ import annotations

from sys import intern as _intern
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.errors import ModelError, PathSyntaxError, UnsupportedPathError
from repro.pxml.node import _NAME_CHARS, _NAME_START

__all__ = ["Predicate", "Step", "Path", "parse_path"]

WILDCARD = "*"


class Predicate:
    """An attribute-equality predicate ``[@attr='value']``."""

    __slots__ = ("attr", "value")

    def __init__(self, attr: str, value: str) -> None:
        self.attr = attr
        self.value = value

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Predicate)
            and self.attr == other.attr
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.attr, self.value))

    def __repr__(self) -> str:
        return "[@%s='%s']" % (self.attr, self.value)


class Step:
    """One child-axis step: a name test plus predicates."""

    __slots__ = ("name", "predicates")

    def __init__(self, name: str, predicates: Tuple[Predicate, ...] = ()) -> None:
        self.name = name
        # Canonical order: sorted by attribute so equal steps compare equal
        # regardless of how the user wrote the predicates.
        self.predicates = tuple(
            sorted(predicates, key=lambda p: (p.attr, p.value))
        )

    @property
    def is_wildcard(self) -> bool:
        return self.name == WILDCARD

    def predicate_map(self) -> dict:
        """``{attr: value}`` for this step's predicates.

        A step with two conflicting predicates on the same attribute
        (``a[@t='x'][@t='y']``) selects nothing; the parser rejects that
        case so the map is always faithful.
        """
        return {p.attr: p.value for p in self.predicates}

    def matches(self, tag: str, attrs: dict) -> bool:
        """Does this step select an element with the given tag/attrs?"""
        if not self.is_wildcard and self.name != tag:
            return False
        return all(
            attrs.get(p.attr) == p.value for p in self.predicates
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Step)
            and self.name == other.name
            and self.predicates == other.predicates
        )

    def __hash__(self) -> int:
        return hash((self.name, self.predicates))

    def __repr__(self) -> str:
        return self.name + "".join(repr(p) for p in self.predicates)


class Path:
    """An absolute location path in the GUPster fragment."""

    __slots__ = ("steps", "attribute", "_hash")

    def __init__(
        self, steps: Tuple[Step, ...], attribute: Optional[str] = None
    ) -> None:
        if not steps:
            raise PathSyntaxError("a path needs at least one step")
        self.steps = tuple(steps)
        self.attribute = attribute
        self._hash = hash((self.steps, self.attribute))

    # -- derived forms ----------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self.steps)

    def element_path(self) -> "Path":
        """This path without its trailing attribute selector."""
        if self.attribute is None:
            return self
        return Path(self.steps, None)

    def prefix(self, length: int) -> "Path":
        """The first *length* steps as a path (no attribute selector)."""
        if not 1 <= length <= len(self.steps):
            raise ModelError("prefix length out of range")
        return Path(self.steps[:length], None)

    def child(self, step: Step) -> "Path":
        """Extend by one step."""
        if self.attribute is not None:
            raise ModelError("cannot extend past an attribute selector")
        return Path(self.steps + (step,), None)

    def with_predicate(
        self, step_index: int, predicate: Predicate
    ) -> "Path":
        """A copy with *predicate* added to the step at *step_index*.

        Used by the privacy shield to narrow a request to the permitted
        slice (query rewriting, Section 5.3)."""
        steps = list(self.steps)
        target = steps[step_index]
        steps[step_index] = Step(
            target.name, target.predicates + (predicate,)
        )
        return Path(tuple(steps), self.attribute)

    def user_id(self) -> Optional[str]:
        """The ``[@id=...]`` value of the first step, if present.

        GUPster coverage is per-user; by convention the first step of a
        profile path carries the user identity."""
        return self.steps[0].predicate_map().get("id")

    def iter_steps(self) -> Iterator[Step]:
        return iter(self.steps)

    # -- identity ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Path)
            and self.steps == other.steps
            and self.attribute == other.attribute
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        text = "/" + "/".join(repr(step) for step in self.steps)
        if self.attribute is not None:
            text += "/@" + self.attribute
        return text

    __str__ = __repr__


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

#: Successful parses memoized by their raw text. :class:`Path` is
#: immutable (tuple of steps + attribute + precomputed hash; every
#: "mutator" returns a fresh object), so handing the same instance to
#: every caller is safe. The cache follows the ``re`` module's bounded
#: strategy — cleared wholesale when full — which keeps behaviour
#: deterministic and memory flat even when a million distinct
#: subscriber paths stream through (E19); Zipf-skewed workloads
#: repopulate the hot heads within a handful of queries.
_PARSE_CACHE: Dict[str, Path] = {}
_PARSE_CACHE_MAX = 4096


def parse_path(text: Union[str, "Path"]) -> Path:
    """Parse *text* into a :class:`Path`.

    Accepts a :class:`Path` unchanged, so APIs can take either form.
    Successful string parses are memoized (paths are immutable); parse
    *errors* are recomputed each time, so the exception surface is
    unchanged. Non-string, non-Path input still raises
    :class:`~repro.errors.PathSyntaxError` from the parser, exactly as
    before the cache existed.
    """
    if isinstance(text, Path):
        return text
    if isinstance(text, str):
        cached = _PARSE_CACHE.get(text)
        if cached is not None:
            return cached
        parsed = _PathParser(text).parse()
        if len(_PARSE_CACHE) >= _PARSE_CACHE_MAX:
            _PARSE_CACHE.clear()
        _PARSE_CACHE[text] = parsed
        return parsed
    # Preserve totality for junk input (the fuzz tests feed bytes,
    # ints, None...): the parser's constructor raises PathSyntaxError.
    return _PathParser(text).parse()


class _PathParser:
    def __init__(self, text: str) -> None:
        if not isinstance(text, str):
            raise PathSyntaxError("path must be a string, got %r" % (text,))
        self.text = text.strip()
        self.pos = 0

    def parse(self) -> Path:
        if not self.text.startswith("/"):
            raise PathSyntaxError(
                "only absolute paths are supported: %r" % self.text
            )
        if self.text.startswith("//"):
            raise UnsupportedPathError(
                "descendant axis '//' is outside the GUPster fragment"
            )
        steps = []
        attribute = None
        while self.pos < len(self.text):
            if not self._consume("/"):
                self._fail("expected '/'")
            if self._peek() == "/":
                raise UnsupportedPathError(
                    "descendant axis '//' is outside the GUPster fragment"
                )
            if self._peek() == "@":
                self.pos += 1
                attribute = self._name("attribute name")
                if self.pos != len(self.text):
                    self._fail("attribute selector must be last")
                break
            steps.append(self._step())
        if not steps:
            raise PathSyntaxError("empty path: %r" % self.text)
        return Path(tuple(steps), attribute)

    def _step(self) -> Step:
        if self._peek() == "*":
            self.pos += 1
            name = WILDCARD
        else:
            name = self._name("step name")
        predicates = []
        seen = {}
        while self._peek() == "[":
            predicate = self._predicate()
            if predicate.attr in seen:
                if seen[predicate.attr] != predicate.value:
                    raise PathSyntaxError(
                        "conflicting predicates on @%s" % predicate.attr
                    )
                continue  # duplicate predicate, keep one
            seen[predicate.attr] = predicate.value
            predicates.append(predicate)
        return Step(name, tuple(predicates))

    def _predicate(self) -> Predicate:
        assert self._consume("[")
        self._skip_space()
        if self._peek() != "@":
            got = self._peek()
            if got is not None and (got.isdigit() or got == "p"):
                raise UnsupportedPathError(
                    "only attribute-equality predicates are supported"
                )
            self._fail("expected '@' in predicate")
        self.pos += 1
        attr = self._name("predicate attribute")
        self._skip_space()
        if not self._consume("="):
            self._fail("expected '=' in predicate")
        self._skip_space()
        value = self._quoted()
        self._skip_space()
        if not self._consume("]"):
            self._fail("expected ']' closing predicate")
        return Predicate(attr, value)

    def _name(self, what: str) -> str:
        # Same ASCII name grammar as the document model (see
        # repro.pxml.node._is_name): a path must never name an
        # element that no well-formed document can contain.
        start = self.pos
        ch = self._peek()
        if ch is None or ch not in _NAME_START:
            self._fail("expected %s" % what)
        while True:
            ch = self._peek()
            if ch is not None and ch in _NAME_CHARS:
                self.pos += 1
            else:
                break
        # Names come from bounded vocabularies (component tags,
        # attribute names like ``id``/``type``): interning makes the
        # hot ``Step.matches`` / hash comparisons pointer-fast.
        # Predicate *values* (user ids — unbounded) are never interned;
        # see :meth:`_quoted`.
        return _intern(self.text[start : self.pos])

    def _quoted(self) -> str:
        quote = self._peek()
        if quote not in ("'", '"'):
            self._fail("expected quoted value in predicate")
        self.pos += 1
        end = self.text.find(quote, self.pos)
        if end < 0:
            self._fail("unterminated quoted value")
        value = self.text[self.pos : end]
        self.pos = end + 1
        return value

    def _peek(self) -> Optional[str]:
        if self.pos < len(self.text):
            return self.text[self.pos]
        return None

    def _consume(self, token: str) -> bool:
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False

    def _skip_space(self) -> None:
        while self._peek() == " ":
            self.pos += 1

    def _fail(self, message: str) -> None:
        raise PathSyntaxError(
            "%s at position %d in %r" % (message, self.pos, self.text)
        )
