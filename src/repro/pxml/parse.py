"""A small XML parser for profile documents.

Supports the subset of XML that profile components use: elements,
attributes (single- or double-quoted), character data, entity references
(&amp; &lt; &gt; &quot; &apos;), comments, and an optional XML
declaration. No namespaces, CDATA, processing instructions, or DTDs —
profile data never needs them, and keeping the grammar small keeps the
parser honest and fully testable.

The parser is the inverse of :meth:`repro.pxml.node.PNode.serialize`:
``parse(node.serialize()).deep_equal(node)`` holds for every tree the
data model can represent (a property test asserts this).
"""

from __future__ import annotations

from sys import intern as _intern
from typing import Optional

from repro.errors import ParseError
from repro.pxml.node import _NAME_CHARS, _NAME_START, PNode

__all__ = ["parse"]

_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}


def parse(text: str) -> PNode:
    """Parse XML *text* into a :class:`PNode` tree.

    Raises :class:`repro.errors.ParseError` with the offending position
    on malformed input.
    """
    parser = _Parser(text)
    return parser.parse_document()


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    # -- document --------------------------------------------------------

    def parse_document(self) -> PNode:
        self._skip_prolog()
        root = self._parse_element()
        self._skip_misc()
        if self.pos != self.length:
            self._fail("trailing content after document element")
        return root

    def _skip_prolog(self) -> None:
        self._skip_whitespace()
        if self.text.startswith("<?xml", self.pos):
            end = self.text.find("?>", self.pos)
            if end < 0:
                self._fail("unterminated XML declaration")
            self.pos = end + 2
        self._skip_misc()

    def _skip_misc(self) -> None:
        while True:
            self._skip_whitespace()
            if self.text.startswith("<!--", self.pos):
                self._skip_comment()
            else:
                return

    def _skip_comment(self) -> None:
        end = self.text.find("-->", self.pos + 4)
        if end < 0:
            self._fail("unterminated comment")
        self.pos = end + 3

    # -- elements ----------------------------------------------------------

    def _parse_element(self) -> PNode:
        if not self._consume("<"):
            self._fail("expected element start '<'")
        tag = self._parse_name("element name")
        node = PNode(tag)
        self._parse_attributes(node)
        self._skip_whitespace()
        if self._consume("/>"):
            return node
        if not self._consume(">"):
            self._fail("expected '>' or '/>' in element %r" % tag)
        self._parse_content(node)
        return node

    def _parse_attributes(self, node: PNode) -> None:
        while True:
            self._skip_whitespace()
            ch = self._peek()
            if ch in (">", "/") or ch is None:
                return
            name = self._parse_name("attribute name")
            self._skip_whitespace()
            if not self._consume("="):
                self._fail("expected '=' after attribute %r" % name)
            self._skip_whitespace()
            value = self._parse_quoted()
            if name in node.attrs:
                self._fail("duplicate attribute %r" % name)
            # Attribute names are schema vocabulary — intern so the
            # whole deserialized forest shares one string per name
            # (values stay unbounded and uninterned).
            node.attrs[_intern(name)] = value

    def _parse_content(self, node: PNode) -> None:
        text_parts = []
        closing = "</" + node.tag
        while True:
            if self.pos >= self.length:
                self._fail("unexpected end of input inside %r" % node.tag)
            if self.text.startswith("<!--", self.pos):
                self._skip_comment()
                continue
            if self.text.startswith(closing, self.pos):
                self.pos += len(closing)
                self._skip_whitespace()
                if not self._consume(">"):
                    self._fail("malformed closing tag for %r" % node.tag)
                break
            if self.text.startswith("</", self.pos):
                self._fail("mismatched closing tag inside %r" % node.tag)
            if self._peek() == "<":
                child = self._parse_element()
                node.append(child)
                continue
            text_parts.append(self._parse_chardata())
        text = "".join(text_parts)
        if node.children:
            if text.strip():
                self._fail(
                    "mixed content in %r is not supported" % node.tag
                )
        else:
            # An explicit closing tag means the element has text
            # content — possibly empty ("<a></a>" is text="", while
            # "<a/>" is text=None), mirroring the serializer exactly.
            node.set_text(text)

    def _parse_chardata(self) -> str:
        parts = []
        while self.pos < self.length and self._peek() != "<":
            ch = self.text[self.pos]
            if ch == "&":
                parts.append(self._parse_entity())
            else:
                parts.append(ch)
                self.pos += 1
        return "".join(parts)

    def _parse_entity(self) -> str:
        end = self.text.find(";", self.pos + 1)
        if end < 0 or end - self.pos > 8:
            self._fail("malformed entity reference")
        name = self.text[self.pos + 1 : end]
        self.pos = end + 1
        if name.startswith("#"):
            try:
                code = (
                    int(name[2:], 16) if name[1:2] in ("x", "X")
                    else int(name[1:])
                )
            except ValueError:
                self._fail("bad character reference &%s;" % name)
            return chr(code)
        if name not in _ENTITIES:
            self._fail("unknown entity &%s;" % name)
        return _ENTITIES[name]

    # -- lexical helpers ---------------------------------------------------

    def _parse_name(self, what: str) -> str:
        # Accept exactly the name grammar of the data model
        # (PNode._is_name): ASCII letters and underscore to start,
        # then letters, digits, '_', '-', '.'.  Using str.isalpha()
        # here would admit Unicode alphabetics that the PNode
        # constructor rejects, turning a malformed document into a
        # bare ValueError instead of a ParseError.
        start = self.pos
        ch = self._peek()
        if ch is None or ch not in _NAME_START:
            self._fail("expected %s" % what)
        self.pos += 1
        while True:
            ch = self._peek()
            if ch is not None and ch in _NAME_CHARS:
                self.pos += 1
            else:
                break
        return self.text[start : self.pos]

    def _parse_quoted(self) -> str:
        quote = self._peek()
        if quote not in ('"', "'"):
            self._fail("expected quoted attribute value")
        self.pos += 1
        parts = []
        while True:
            if self.pos >= self.length:
                self._fail("unterminated attribute value")
            ch = self.text[self.pos]
            if ch == quote:
                self.pos += 1
                return "".join(parts)
            if ch == "&":
                parts.append(self._parse_entity())
            elif ch == "<":
                self._fail("'<' not allowed in attribute value")
            else:
                parts.append(ch)
                self.pos += 1

    def _peek(self) -> Optional[str]:
        if self.pos < self.length:
            return self.text[self.pos]
        return None

    def _consume(self, token: str) -> bool:
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False

    def _skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def _fail(self, message: str) -> None:
        raise ParseError(
            "%s (at position %d)" % (message, self.pos), self.pos
        )
