"""Ordered-tree data model for GUP profile documents.

The paper (Section 4.4) assumes an XML data model for all profile
components. :class:`PNode` is a deliberately small ordered tree: an
element has a tag, string attributes, an optional text value, and child
elements. This is the common data model every adapter exports into and
every GUPster operation (coverage, merge, access control) works over.

Design notes
------------
* Text content and child elements are mutually exclusive (mixed content
  never occurs in profile data and excluding it keeps merge semantics
  clean).
* Nodes know their parent, so subtree paths can be reconstructed — the
  privacy shield uses this to narrow referrals to permitted subtrees.
* ``deep_equal`` ignores child *order* only when comparing keyed children
  via :func:`repro.pxml.merge.deep_union`; here equality is structural
  and ordered, which is the strictest (safe) default.
"""

from __future__ import annotations

from sys import intern as _intern
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import ModelError

__all__ = ["PNode", "element"]


class PNode:
    """One element of a profile document tree."""

    __slots__ = ("tag", "attrs", "text", "children", "parent")

    def __init__(
        self,
        tag: str,
        attrs: Optional[Dict[str, str]] = None,
        text: Optional[str] = None,
        children: Optional[Iterable["PNode"]] = None,
    ):
        if not tag or not _is_name(tag):
            raise ModelError("invalid element tag: %r" % (tag,))
        # Tags and attribute *names* are bounded vocabularies (the
        # schema's component/element names; ``id``/``type``/...):
        # interning them collapses a million-subscriber forest onto a
        # few dozen shared strings and makes tag comparisons
        # pointer-fast. Attribute values are unbounded (user ids) and
        # stay as-is.
        self.tag = _intern(tag)
        self.attrs: Dict[str, str] = (
            {_intern(key): value for key, value in attrs.items()}
            if attrs else {}
        )
        self.text: Optional[str] = text
        self.children: List[PNode] = []
        self.parent: Optional[PNode] = None
        if children:
            for child in children:
                self.append(child)
        if self.text is not None and self.children:
            raise ModelError(
                "mixed content not supported: %r has both text and children"
                % (tag,)
            )

    # -- construction ------------------------------------------------------

    def append(self, child: "PNode") -> "PNode":
        """Attach *child* as the last child and return it."""
        if self.text is not None:
            raise ModelError(
                "cannot add children to text element %r" % (self.tag,)
            )
        child.parent = self
        self.children.append(child)
        return child

    def extend(self, children: Iterable["PNode"]) -> None:
        for child in children:
            self.append(child)

    def remove(self, child: "PNode") -> None:
        """Detach *child*; raises ValueError if it is not a child."""
        self.children.remove(child)
        child.parent = None

    def replace_children(self, children: Iterable["PNode"]) -> None:
        for old in self.children:
            old.parent = None
        self.children = []
        self.extend(children)

    def set_text(self, text: Optional[str]) -> None:
        if text is not None and self.children:
            raise ModelError(
                "cannot set text on element %r with children" % (self.tag,)
            )
        self.text = text

    # -- navigation ---------------------------------------------------------

    def child(self, tag: str) -> Optional["PNode"]:
        """First child with the given tag, or None."""
        for node in self.children:
            if node.tag == tag:
                return node
        return None

    def children_named(self, tag: str) -> List["PNode"]:
        return [node for node in self.children if node.tag == tag]

    def get(self, attr: str, default: Optional[str] = None) -> Optional[str]:
        return self.attrs.get(attr, default)

    def walk(self) -> Iterator["PNode"]:
        """Pre-order traversal of the subtree rooted here."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def root(self) -> "PNode":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def path_from_root(self) -> List["PNode"]:
        """Ancestor chain from the document root down to this node."""
        chain: List[PNode] = []
        node: Optional[PNode] = self
        while node is not None:
            chain.append(node)
            node = node.parent
        chain.reverse()
        return chain

    def location_path(self) -> str:
        """Absolute slash path of tags from the root to this node.

        Predicates are added for ``id``/``type`` attributes when present,
        so the result re-selects this node in most profile documents.
        """
        steps = []
        for node in self.path_from_root():
            step = node.tag
            for key in ("id", "type", "name"):
                if key in node.attrs:
                    step += "[@%s='%s']" % (key, node.attrs[key])
                    break
            steps.append(step)
        return "/" + "/".join(steps)

    # -- measurement ---------------------------------------------------------

    def size(self) -> int:
        """Number of elements in this subtree."""
        return sum(1 for _ in self.walk())

    def byte_size(self) -> int:
        """Serialized size in bytes; used by the simulator for transport
        cost accounting."""
        return len(self.serialize().encode("utf-8"))

    def depth(self) -> int:
        """Height of this subtree (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    # -- copying / equality ---------------------------------------------------

    def copy(self) -> "PNode":
        """Deep copy of this subtree (parent link of the copy is None)."""
        dup = PNode(self.tag, dict(self.attrs), self.text)
        for child in self.children:
            dup.append(child.copy())
        return dup

    def deep_equal(self, other: "PNode") -> bool:
        """Structural, ordered equality of two subtrees."""
        if (
            self.tag != other.tag
            or self.attrs != other.attrs
            or self.text != other.text
            or len(self.children) != len(other.children)
        ):
            return False
        return all(
            a.deep_equal(b) for a, b in zip(self.children, other.children)
        )

    def canonical_key(self) -> tuple:
        """Hashable canonical form: children are sorted, so two subtrees
        that differ only in sibling order get the same key. Used for
        duplicate detection during deep union."""
        return (
            self.tag,
            tuple(sorted(self.attrs.items())),
            # Encode text as an always-comparable pair (None < "" < "x"
            # would break tuple sorting otherwise).
            (self.text is not None, self.text or ""),
            tuple(sorted(child.canonical_key() for child in self.children)),
        )

    # -- serialization ---------------------------------------------------------

    def serialize(self, indent: Optional[int] = None) -> str:
        """Render as XML text. With ``indent`` set, pretty-print."""
        parts: List[str] = []
        self._serialize_into(parts, indent, 0)
        joiner = "\n" if indent is not None else ""
        return joiner.join(parts)

    def _serialize_into(
        self, parts: List[str], indent: Optional[int], level: int
    ) -> None:
        pad = " " * (indent * level) if indent is not None else ""
        attrs = "".join(
            ' %s="%s"' % (key, _escape_attr(value))
            for key, value in sorted(self.attrs.items())
        )
        if self.text is not None:
            parts.append(
                "%s<%s%s>%s</%s>"
                % (pad, self.tag, attrs, _escape_text(self.text), self.tag)
            )
        elif not self.children:
            parts.append("%s<%s%s/>" % (pad, self.tag, attrs))
        else:
            parts.append("%s<%s%s>" % (pad, self.tag, attrs))
            for child in self.children:
                child._serialize_into(parts, indent, level + 1)
            parts.append("%s</%s>" % (pad, self.tag))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        summary = self.text if self.text is not None else (
            "%d children" % len(self.children)
        )
        return "<PNode %s %r (%s)>" % (self.tag, self.attrs, summary)


def element(
    tag: str,
    attrs: Optional[Dict[str, str]] = None,
    text: Optional[str] = None,
    *children: PNode,
) -> PNode:
    """Convenience builder: ``element('user', {'id': 'alice'}, None, kid)``."""
    return PNode(tag, attrs, text, children or None)


_NAME_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_NAME_CHARS = _NAME_START | set("0123456789-.")


def _is_name(name: str) -> bool:
    return (
        bool(name)
        and name[0] in _NAME_START
        and all(ch in _NAME_CHARS for ch in name)
    )


def _escape_text(value: str) -> str:
    return (
        value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _escape_attr(value: str) -> str:
    return _escape_text(value).replace('"', "&quot;")
