"""The GUP profile schema (paper Section 4.4) and its validator.

The paper assumes "a standardized schema for (most) user profile
information will emerge from the activities of the 3GPP GUP standards
body" and sketches a top-level structure (MySelf, MyDevices, MyContacts,
MyLocations, MyEvents, MyWallet, MyApplications). Coverage examples use
component names like ``address-book`` and ``presence`` under
``/user[@id=...]``.

This module defines that schema concretely:

* a small schema language (:class:`ElementDecl` / :class:`AttrDecl` /
  :class:`ChildDecl`) with occurrence constraints,
* **typed values** — the Section 6 LDAP discussion notes that typing
  exists "for deciding which comparison function to use (e.g. ... phone
  numbers 908-582-4393 and (908) 582-4393 should compare as equal)";
  :class:`ValueType` provides exactly those normalizing comparators,
* validation producing a full list of violations (requirement 11:
  provisioning interfaces "should provide some guarantees (e.g.
  constraint checking)"),
* schema evolution via optional elements (Section 4.4: "the schema can
  be made more tolerant (or not) to evolutions").

:data:`GUP_SCHEMA` is the normative instance shared by every data store
adapter in this repository.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.pxml.node import PNode

__all__ = [
    "ValueType",
    "AttrDecl",
    "ChildDecl",
    "ElementDecl",
    "Violation",
    "Schema",
    "GUP_SCHEMA",
    "build_gup_schema",
]


# ---------------------------------------------------------------------------
# Value types with normalizing comparison
# ---------------------------------------------------------------------------

class ValueType:
    """A named scalar type with a normalizer used for comparison."""

    def __init__(self, name: str, normalizer=None, validator=None):
        self.name = name
        self._normalizer = normalizer
        self._validator = validator

    def normalize(self, value: str) -> str:
        if self._normalizer is None:
            return value
        return self._normalizer(value)

    def is_valid(self, value: str) -> bool:
        if self._validator is None:
            return True
        return bool(self._validator(value))

    def equal(self, a: str, b: str) -> bool:
        """Typed equality — the comparison the LDAP discussion wants."""
        return self.normalize(a) == self.normalize(b)

    def __repr__(self) -> str:
        return "<ValueType %s>" % self.name


def _normalize_phone(value: str) -> str:
    digits = re.sub(r"[^0-9+]", "", value)
    if digits.startswith("+1"):
        digits = digits[2:]
    elif digits.startswith("1") and len(digits) == 11:
        digits = digits[1:]
    return digits


def _normalize_datetime(value: str) -> str:
    return value.strip().replace(" ", "T")


_TIME_RE = re.compile(r"^\d{2}:\d{2}$")
_DATETIME_RE = re.compile(r"^\d{4}-\d{2}-\d{2}(T\d{2}:\d{2}(:\d{2})?)?$")
_EMAIL_RE = re.compile(r"^[^@\s]+@[^@\s]+\.[^@\s]+$")


STRING = ValueType("string")
TOKEN = ValueType("token", normalizer=lambda v: v.strip().lower())
PHONE = ValueType(
    "phone",
    normalizer=_normalize_phone,
    validator=lambda v: len(_normalize_phone(v).lstrip("+")) >= 7,
)
EMAIL = ValueType(
    "email",
    normalizer=lambda v: v.strip().lower(),
    validator=lambda v: _EMAIL_RE.match(v.strip()) is not None,
)
BOOLEAN = ValueType(
    "boolean",
    normalizer=lambda v: v.strip().lower(),
    validator=lambda v: v.strip().lower() in ("true", "false"),
)
INTEGER = ValueType(
    "integer",
    normalizer=lambda v: str(int(v)),
    validator=lambda v: v.strip().lstrip("-").isdigit(),
)
DATETIME = ValueType(
    "datetime",
    normalizer=_normalize_datetime,
    validator=lambda v: _DATETIME_RE.match(_normalize_datetime(v))
    is not None,
)
TIME = ValueType(
    "time", validator=lambda v: _TIME_RE.match(v.strip()) is not None
)

TYPES: Dict[str, ValueType] = {
    t.name: t
    for t in (STRING, TOKEN, PHONE, EMAIL, BOOLEAN, INTEGER, DATETIME, TIME)
}


# ---------------------------------------------------------------------------
# Schema declarations
# ---------------------------------------------------------------------------

class AttrDecl:
    """Declaration of one attribute of an element."""

    def __init__(
        self,
        name: str,
        required: bool = False,
        values: Optional[Sequence[str]] = None,
        vtype: ValueType = STRING,
    ):
        self.name = name
        self.required = required
        self.values = tuple(values) if values else None
        self.vtype = vtype


class ChildDecl:
    """Declaration of a child element with an occurrence constraint.

    ``occurs`` is one of ``'one'`` (exactly once), ``'opt'`` (zero or
    one) or ``'many'`` (zero or more).
    """

    def __init__(self, tag: str, occurs: str = "opt"):
        if occurs not in ("one", "opt", "many"):
            raise SchemaError("bad occurrence %r" % occurs)
        self.tag = tag
        self.occurs = occurs


class ElementDecl:
    """Declaration of an element: attributes, children, text type."""

    def __init__(
        self,
        tag: str,
        attrs: Sequence[AttrDecl] = (),
        children: Sequence[ChildDecl] = (),
        text: Optional[ValueType] = None,
        component: bool = False,
    ):
        self.tag = tag
        self.attrs = {a.name: a for a in attrs}
        self.children = {c.tag: c for c in children}
        self.text = text
        #: Component elements are the units of storage, registration and
        #: access control (GUP information model, Figure 6).
        self.component = component

    def child_decl(self, tag: str) -> Optional[ChildDecl]:
        return self.children.get(tag)


class Violation:
    """One schema violation found during validation."""

    def __init__(self, path: str, message: str):
        self.path = path
        self.message = message

    def __repr__(self) -> str:
        return "<Violation %s: %s>" % (self.path, self.message)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Violation)
            and self.path == other.path
            and self.message == other.message
        )

    def __hash__(self) -> int:
        return hash((self.path, self.message))


class Schema:
    """A GUP schema: element declarations plus a root tag and a version.

    ``strict`` controls evolution tolerance (Section 4.4): a strict
    schema rejects undeclared elements/attributes, a tolerant one
    accepts them (they validate as opaque extensions).
    """

    def __init__(
        self,
        root: str,
        decls: Sequence[ElementDecl],
        version: str = "1.0",
        strict: bool = True,
    ):
        self.root = root
        self.decls: Dict[str, ElementDecl] = {d.tag: d for d in decls}
        self.version = version
        self.strict = strict
        if root not in self.decls:
            raise SchemaError("root element %r is not declared" % root)

    # -- queries ------------------------------------------------------------

    def decl(self, tag: str) -> Optional[ElementDecl]:
        return self.decls.get(tag)

    def component_tags(self) -> List[str]:
        """Tags declared as profile components (units of sharing)."""
        return sorted(
            tag for tag, decl in self.decls.items() if decl.component
        )

    def component_paths(self, user_id: str) -> List[str]:
        """The registrable coverage paths for one user, e.g.
        ``/user[@id='alice']/address-book``."""
        prefix = "/%s[@id='%s']" % (self.root, user_id)
        return [
            "%s/%s" % (prefix, tag) for tag in self.component_tags()
        ]

    # -- validation ------------------------------------------------------------

    def validate(self, doc: PNode) -> List[Violation]:
        """All violations in *doc* (empty list means valid)."""
        violations: List[Violation] = []
        if doc.tag != self.root:
            violations.append(
                Violation("/", "root must be <%s>, got <%s>"
                          % (self.root, doc.tag))
            )
            return violations
        self._validate_node(doc, "/" + doc.tag, violations)
        return violations

    def is_valid(self, doc: PNode) -> bool:
        return not self.validate(doc)

    def check(self, doc: PNode) -> None:
        """Raise :class:`SchemaError` with every violation listed."""
        violations = self.validate(doc)
        if violations:
            raise SchemaError(
                "; ".join(
                    "%s: %s" % (v.path, v.message) for v in violations
                )
            )

    def _validate_node(
        self, node: PNode, path: str, out: List[Violation]
    ) -> None:
        decl = self.decls.get(node.tag)
        if decl is None:
            if self.strict:
                out.append(Violation(path, "undeclared element"))
            return
        # Attributes
        for name, attr in decl.attrs.items():
            value = node.attrs.get(name)
            if value is None:
                if attr.required:
                    out.append(
                        Violation(path, "missing attribute @%s" % name)
                    )
                continue
            if attr.values is not None and value not in attr.values:
                out.append(
                    Violation(
                        path,
                        "@%s=%r not in %r" % (name, value, attr.values),
                    )
                )
            elif not attr.vtype.is_valid(value):
                out.append(
                    Violation(
                        path,
                        "@%s=%r is not a valid %s"
                        % (name, value, attr.vtype.name),
                    )
                )
        if self.strict:
            for name in node.attrs:
                if name not in decl.attrs:
                    out.append(
                        Violation(path, "undeclared attribute @%s" % name)
                    )
        # Text
        if node.text is not None:
            if decl.text is None and decl.children:
                out.append(Violation(path, "unexpected text content"))
            elif decl.text is not None and not decl.text.is_valid(node.text):
                out.append(
                    Violation(
                        path,
                        "text %r is not a valid %s"
                        % (node.text, decl.text.name),
                    )
                )
        # Children occurrence
        counts: Dict[str, int] = {}
        for child in node.children:
            counts[child.tag] = counts.get(child.tag, 0) + 1
        for tag, child_decl in decl.children.items():
            n = counts.get(tag, 0)
            if child_decl.occurs == "one" and n != 1:
                out.append(
                    Violation(
                        path, "<%s> must occur exactly once (got %d)"
                        % (tag, n)
                    )
                )
            elif child_decl.occurs == "opt" and n > 1:
                out.append(
                    Violation(
                        path, "<%s> may occur at most once (got %d)"
                        % (tag, n)
                    )
                )
        for tag in counts:
            if tag not in decl.children and self.strict:
                out.append(
                    Violation(path, "undeclared child <%s>" % tag)
                )
        # Recurse
        for child in node.children:
            self._validate_node(
                child, "%s/%s" % (path, child.tag), out
            )

    def validate_path(self, path) -> Optional[str]:
        """Check that a request path can select anything under this
        schema (GUPster uses this to "filter out spurious queries ...
        which do not fit with the GUP schema", Section 5.3).

        Returns None when the path is plausible, else a human-readable
        problem description. Wildcard steps are accepted anywhere.
        """
        from repro.pxml.path import parse_path  # local to avoid cycle

        parsed = parse_path(path)
        first = parsed.steps[0]
        if not first.is_wildcard and first.name != self.root:
            return "path must start at <%s>" % self.root
        if first.is_wildcard:
            return None  # wildcard root: cannot track declarations
        current = self.decls.get(self.root)
        for step in parsed.steps[1:]:
            if current is None:
                # Below a wildcard (or an undeclared-but-allowed
                # region in tolerant mode): nothing left to check.
                return None
            if step.is_wildcard:
                current = None  # any child: stop tracking decls
                continue
            child_decl = current.child_decl(step.name)
            if child_decl is None:
                if self.strict:
                    return (
                        "<%s> has no child <%s>"
                        % (current.tag, step.name)
                    )
                return None
            current = self.decls.get(step.name)
        if parsed.attribute is not None and current is not None:
            if self.strict and parsed.attribute not in current.attrs:
                return (
                    "<%s> has no attribute @%s"
                    % (current.tag, parsed.attribute)
                )
        return None

    # -- evolution ------------------------------------------------------------

    def evolved(
        self,
        version: str,
        new_decls: Sequence[ElementDecl] = (),
        new_children: Sequence[Tuple[str, ChildDecl]] = (),
    ) -> "Schema":
        """A new schema version with extra declarations.

        Evolution is additive-only (new optional elements/attributes), so
        documents valid under the old version stay valid under the new
        one — the compatibility story Section 4.4 sketches.
        """
        decls = {tag: decl for tag, decl in self.decls.items()}
        for decl in new_decls:
            if decl.tag in decls:
                raise SchemaError(
                    "evolution cannot redefine <%s>" % decl.tag
                )
            decls[decl.tag] = decl
        for parent_tag, child_decl in new_children:
            parent = decls.get(parent_tag)
            if parent is None:
                raise SchemaError("unknown parent <%s>" % parent_tag)
            if child_decl.occurs == "one":
                raise SchemaError(
                    "evolution may only add optional children"
                )
            updated = ElementDecl(
                parent.tag,
                list(parent.attrs.values()),
                list(parent.children.values()) + [child_decl],
                parent.text,
                parent.component,
            )
            decls[parent.tag] = updated
        return Schema(
            self.root, list(decls.values()), version, self.strict
        )

    def skeleton(self, user_id: str) -> PNode:
        """Minimal valid document for a new user (provisioning seed)."""
        root = PNode(self.root, {"id": user_id})
        decl = self.decls[self.root]
        for tag, child_decl in decl.children.items():
            if child_decl.occurs == "one":
                root.append(PNode(tag))
        return root


# ---------------------------------------------------------------------------
# The normative GUP schema instance
# ---------------------------------------------------------------------------

def build_gup_schema(strict: bool = True) -> Schema:
    """Construct the GUP schema of Section 4.4.

    The root is ``<user id=...>``; its children are the profile
    *components* — units of storage, registration and access control.
    The component set covers both the paper's "MyProfile" sketch and the
    concrete component names used in its coverage examples
    (``address-book``, ``presence``, ``game-scores``).
    """
    decls = [
        ElementDecl(
            "user",
            attrs=[AttrDecl("id", required=True)],
            children=[
                ChildDecl("self", "opt"),
                ChildDecl("devices", "opt"),
                ChildDecl("address-book", "opt"),
                ChildDecl("buddy-list", "opt"),
                ChildDecl("presence", "opt"),
                ChildDecl("location", "opt"),
                ChildDecl("calendar", "opt"),
                ChildDecl("wallet", "opt"),
                ChildDecl("preferences", "opt"),
                ChildDecl("services", "opt"),
                ChildDecl("applications", "opt"),
                ChildDecl("game-scores", "opt"),
                ChildDecl("bookmarks", "opt"),
                # One call-status per network the user touches.
                ChildDecl("call-status", "many"),
            ],
        ),
        # --- MySelf ---------------------------------------------------
        ElementDecl(
            "self",
            children=[
                ChildDecl("name", "opt"),
                ChildDecl("address", "many"),
                ChildDecl("email", "many"),
                ChildDecl("number", "many"),
                ChildDecl("employer", "opt"),
            ],
            component=True,
        ),
        ElementDecl("name", text=STRING),
        ElementDecl(
            "address",
            attrs=[
                AttrDecl("type", values=("home", "work", "shipping")),
            ],
            text=STRING,
        ),
        ElementDecl(
            "email",
            attrs=[AttrDecl("type", values=("personal", "corporate"))],
            text=EMAIL,
        ),
        ElementDecl(
            "number",
            attrs=[
                AttrDecl(
                    "type",
                    values=(
                        "home", "work", "cell", "fax", "voip", "pager",
                    ),
                ),
            ],
            text=PHONE,
        ),
        ElementDecl("employer", text=STRING),
        # --- MyDevices ------------------------------------------------
        ElementDecl(
            "devices",
            children=[ChildDecl("device", "many")],
            component=True,
        ),
        ElementDecl(
            "device",
            attrs=[
                AttrDecl("id", required=True),
                AttrDecl(
                    "type",
                    required=True,
                    values=(
                        "cell-phone", "gsm-phone", "pda", "laptop",
                        "ip-phone", "softphone", "home-phone",
                        "office-phone",
                    ),
                ),
                AttrDecl("carrier"),
            ],
            children=[ChildDecl("capability", "many")],
        ),
        ElementDecl(
            "capability",
            attrs=[AttrDecl("name", required=True)],
            text=STRING,
        ),
        # --- MyContacts -----------------------------------------------
        ElementDecl(
            "address-book",
            children=[ChildDecl("item", "many")],
            component=True,
        ),
        ElementDecl(
            "item",
            attrs=[
                AttrDecl("id", required=True),
                AttrDecl(
                    "type", values=("personal", "corporate")
                ),
            ],
            children=[
                ChildDecl("name", "opt"),
                ChildDecl("number", "many"),
                ChildDecl("email", "many"),
                ChildDecl("address", "many"),
            ],
        ),
        ElementDecl(
            "buddy-list",
            children=[ChildDecl("buddy", "many")],
            component=True,
        ),
        ElementDecl(
            "buddy",
            attrs=[AttrDecl("id", required=True)],
            children=[
                ChildDecl("alias", "opt"),
                ChildDecl("im-address", "opt"),
            ],
        ),
        ElementDecl("alias", text=STRING),
        ElementDecl("im-address", text=STRING),
        # --- Presence / location / call status --------------------------
        ElementDecl(
            "presence",
            children=[
                ChildDecl("status", "one"),
                ChildDecl("since", "opt"),
                ChildDecl("note", "opt"),
            ],
            component=True,
        ),
        ElementDecl(
            "status", text=TOKEN
        ),
        ElementDecl("since", text=DATETIME),
        ElementDecl("note", text=STRING),
        ElementDecl(
            "location",
            children=[
                ChildDecl("cell", "opt"),
                ChildDecl("coordinates", "opt"),
                ChildDecl("on-air", "opt"),
                ChildDecl("zone", "opt"),
            ],
            component=True,
        ),
        ElementDecl("cell", text=STRING),
        ElementDecl("coordinates", text=STRING),
        ElementDecl("on-air", text=BOOLEAN),
        ElementDecl("zone", text=TOKEN),
        ElementDecl(
            "call-status",
            attrs=[
                AttrDecl(
                    "network",
                    values=("pstn", "voip", "wireless", "internet"),
                ),
            ],
            children=[ChildDecl("state", "one")],
            component=True,
        ),
        ElementDecl("state", text=TOKEN),
        # --- MyEvents ---------------------------------------------------
        ElementDecl(
            "calendar",
            children=[ChildDecl("appointment", "many")],
            component=True,
        ),
        ElementDecl(
            "appointment",
            attrs=[
                AttrDecl("id", required=True),
                AttrDecl(
                    "visibility", values=("private", "public", "work")
                ),
            ],
            children=[
                ChildDecl("start", "one"),
                ChildDecl("end", "one"),
                ChildDecl("subject", "opt"),
                ChildDecl("where", "opt"),
            ],
        ),
        ElementDecl("start", text=DATETIME),
        ElementDecl("end", text=DATETIME),
        ElementDecl("subject", text=STRING),
        ElementDecl("where", text=STRING),
        # --- MyWallet ---------------------------------------------------
        ElementDecl(
            "wallet",
            children=[
                ChildDecl("card", "many"),
                ChildDecl("account", "many"),
            ],
            component=True,
        ),
        ElementDecl(
            "card",
            attrs=[
                AttrDecl("id", required=True),
                AttrDecl("issuer"),
            ],
            children=[ChildDecl("expires", "opt")],
        ),
        ElementDecl("expires", text=STRING),
        ElementDecl(
            "account",
            attrs=[
                AttrDecl("id", required=True),
                AttrDecl("bank"),
                # Prepaid/stored-value accounts expose a balance.
                AttrDecl("balance", vtype=INTEGER),
                AttrDecl("currency"),
            ],
        ),
        # --- Preferences / services / applications -----------------------
        ElementDecl(
            "preferences",
            children=[ChildDecl("preference", "many")],
            component=True,
        ),
        ElementDecl(
            "preference",
            attrs=[AttrDecl("name", required=True)],
            text=STRING,
        ),
        ElementDecl(
            "services",
            children=[ChildDecl("service", "many")],
            component=True,
        ),
        ElementDecl(
            "service",
            attrs=[
                AttrDecl("name", required=True),
                AttrDecl("enabled", vtype=BOOLEAN),
            ],
            children=[ChildDecl("parameter", "many")],
        ),
        ElementDecl(
            "parameter",
            attrs=[AttrDecl("name", required=True)],
            text=STRING,
        ),
        ElementDecl(
            "applications",
            children=[ChildDecl("application", "many")],
            component=True,
        ),
        ElementDecl(
            "application",
            attrs=[AttrDecl("name", required=True)],
            children=[ChildDecl("parameter", "many")],
        ),
        ElementDecl(
            "game-scores",
            children=[ChildDecl("score", "many")],
            component=True,
        ),
        ElementDecl(
            "score",
            attrs=[
                AttrDecl("game", required=True),
            ],
            text=INTEGER,
        ),
        ElementDecl(
            "bookmarks",
            children=[ChildDecl("bookmark", "many")],
            component=True,
        ),
        ElementDecl(
            "bookmark",
            attrs=[AttrDecl("id", required=True)],
            text=STRING,
        ),
    ]
    return Schema("user", decls, version="1.0", strict=strict)


#: The schema every adapter in this repository exports into.
GUP_SCHEMA = build_gup_schema()
