"""Conflict policies: who wins when both sides wrote.

*The Identity Crisis* names the failure mode this module exists to
prevent: **silent overwrites with unclear provenance**. A conflict —
both sides changed the same attribute since the last successful sync
— is never papered over; a policy produces an explicit
:class:`Resolution` naming the winner, the surviving value, its
virtual timestamp, and a human-readable reason, and the reconciler
writes all of that into the provenance ledger before touching either
store.

Policies are deterministic functions of the two (value, authored-at)
pairs, so arbitrary interleavings of writes reach the same fixpoint
(the property tests state exactly that):

* ``lww`` — last writer wins on **virtual timestamps** (the instants
  the values were authored, carried across sync boundaries — not the
  instants the sync loop copied them). MobileAtlas-style
  geographically decoupled writers make this genuinely contested;
  ties at equal instants go to GUP, the paper's authoritative master.
* ``merge`` — per-attribute merge: both values survive, combined by
  the mapping entry's merge function (default: comma-set union).
* ``gup-wins`` / ``foreign-wins`` — fixed authority per deployment.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import FederationError
from repro.federation.mapping import MappingEntry

__all__ = [
    "AttributeMerge",
    "ConflictPolicy",
    "ForeignWins",
    "GupWins",
    "LastWriterWins",
    "POLICIES",
    "Resolution",
    "merge_union",
    "policy_named",
]


def merge_union(gup_value: str, foreign_value: str) -> str:
    """Default per-attribute merge: treat both values as comma-sets,
    keep the sorted union. Commutative and idempotent, so both sides
    converge on the same merged value no matter the write order."""
    tokens = {
        token.strip()
        for value in (gup_value, foreign_value)
        for token in value.split(",")
        if token.strip()
    }
    return ",".join(sorted(tokens))


class Resolution:
    """The explicit outcome of one conflict."""

    __slots__ = ("winner", "value", "at", "reason")

    def __init__(
        self, winner: str, value: str, at: float, reason: str
    ) -> None:
        if winner not in ("gup", "foreign", "merge"):
            raise FederationError("unknown winner %r" % winner)
        self.winner = winner
        self.value = value
        self.at = at
        self.reason = reason

    def __repr__(self) -> str:
        return "<Resolution %s %r (%s)>" % (
            self.winner, self.value, self.reason,
        )


class ConflictPolicy:
    """Base class: resolve one contested attribute."""

    name = "abstract"

    def resolve(
        self,
        entry: MappingEntry,
        gup_value: str,
        gup_at: float,
        foreign_value: str,
        foreign_at: float,
    ) -> Resolution:
        raise NotImplementedError

    def __repr__(self) -> str:
        return "<ConflictPolicy %s>" % self.name


class LastWriterWins(ConflictPolicy):
    """Newest authored value wins; GUP wins the equal-instant tie."""

    name = "lww"

    def resolve(
        self,
        entry: MappingEntry,
        gup_value: str,
        gup_at: float,
        foreign_value: str,
        foreign_at: float,
    ) -> Resolution:
        if foreign_at > gup_at:
            return Resolution(
                "foreign", foreign_value, foreign_at,
                "foreign write at %.3f newer than gup at %.3f"
                % (foreign_at, gup_at),
            )
        if gup_at > foreign_at:
            return Resolution(
                "gup", gup_value, gup_at,
                "gup write at %.3f newer than foreign at %.3f"
                % (gup_at, foreign_at),
            )
        return Resolution(
            "gup", gup_value, gup_at,
            "tie at %.3f; GUP is the authoritative master" % gup_at,
        )


class GupWins(ConflictPolicy):
    """GUP is authoritative for every contested attribute."""

    name = "gup-wins"

    def resolve(
        self,
        entry: MappingEntry,
        gup_value: str,
        gup_at: float,
        foreign_value: str,
        foreign_at: float,
    ) -> Resolution:
        return Resolution(
            "gup", gup_value, gup_at,
            "policy gup-wins: GUP authoritative for %s"
            % entry.gup_suffix,
        )


class ForeignWins(ConflictPolicy):
    """The foreign directory is authoritative."""

    name = "foreign-wins"

    def resolve(
        self,
        entry: MappingEntry,
        gup_value: str,
        gup_at: float,
        foreign_value: str,
        foreign_at: float,
    ) -> Resolution:
        return Resolution(
            "foreign", foreign_value, foreign_at,
            "policy foreign-wins: foreign authoritative for %s"
            % entry.foreign_attr,
        )


class AttributeMerge(ConflictPolicy):
    """Both values survive, combined per attribute.

    The merged value is stamped at the *newer* of the two authored
    instants, so a later lww-style comparison never resurrects a
    pre-merge value."""

    name = "merge"

    def resolve(
        self,
        entry: MappingEntry,
        gup_value: str,
        gup_at: float,
        foreign_value: str,
        foreign_at: float,
    ) -> Resolution:
        merge = entry.merge if entry.merge is not None else merge_union
        merged = merge(gup_value, foreign_value)
        return Resolution(
            "merge", merged, max(gup_at, foreign_at),
            "per-attribute merge of gup %r and foreign %r"
            % (gup_value, foreign_value),
        )


#: Registry of the shipped policies by name.
POLICIES: Dict[str, ConflictPolicy] = {
    policy.name: policy
    for policy in (
        LastWriterWins(), AttributeMerge(), GupWins(), ForeignWins(),
    )
}


def policy_named(name: str) -> ConflictPolicy:
    """Look up a registered conflict policy by its wire name."""
    policy = POLICIES.get(name)
    if policy is None:
        raise FederationError(
            "unknown conflict policy %r (have %s)"
            % (name, ", ".join(sorted(POLICIES)))
        )
    return policy
