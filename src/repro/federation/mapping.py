"""The attribute mapping table: GUP paths <-> foreign attributes.

The AD-connector pattern (ROADMAP item 3): federation is declared as
a table of per-attribute mappings, each with a **sync direction** —

* ``out`` — GUP is authoritative; changes flow GUP -> foreign only.
  Foreign drift on an out-attribute is detected on journal import and
  overwritten by GUP's value at the next sync round.
* ``in`` — the foreign directory is authoritative; changes flow
  foreign -> GUP only, and GUP-side edits are never exported.
* ``both`` — genuinely contested: concurrent writes are conflicts,
  resolved by the reconciler's policy and ledgered.

A mapping names the GUP side by **suffix** — the element path below
``/user[@id=...]`` (e.g. ``self/email``) — so one table serves every
user; :meth:`MappingEntry.gup_path` expands it per user. ``merge``
optionally overrides the per-attribute merge function used by the
``merge`` conflict policy.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import FederationError, PXMLError
from repro.pxml import parse_path

__all__ = ["DIRECTIONS", "MappingEntry", "MappingTable"]

DIRECTIONS = ("in", "out", "both")


class MappingEntry:
    """One row of the mapping table."""

    __slots__ = ("gup_suffix", "foreign_attr", "direction", "merge")

    def __init__(
        self,
        gup_suffix: str,
        foreign_attr: str,
        direction: str = "both",
        merge: Optional[Callable[[str, str], str]] = None,
    ) -> None:
        if direction not in DIRECTIONS:
            raise FederationError(
                "direction must be one of %r, got %r"
                % (DIRECTIONS, direction)
            )
        if not gup_suffix or gup_suffix.startswith("/"):
            raise FederationError(
                "gup_suffix is the element path below /user[@id=..], "
                "got %r" % gup_suffix
            )
        self.gup_suffix = gup_suffix
        self.foreign_attr = foreign_attr
        self.direction = direction
        self.merge = merge

    def gup_path(self, user_id: str) -> str:
        """The full GUP path of this attribute for one user."""
        return "/user[@id='%s']/%s" % (user_id, self.gup_suffix)

    @property
    def imports(self) -> bool:
        """Do foreign changes flow into GUP?"""
        return self.direction in ("in", "both")

    @property
    def exports(self) -> bool:
        """Do GUP changes flow out to the foreign directory?"""
        return self.direction in ("out", "both")

    def __repr__(self) -> str:
        arrow = {"in": "<-", "out": "->", "both": "<->"}[self.direction]
        return "<MappingEntry %s %s %s>" % (
            self.gup_suffix, arrow, self.foreign_attr,
        )


class MappingTable:
    """The reconciler's federation contract, indexed both ways."""

    def __init__(self, entries: Iterable[MappingEntry]) -> None:
        # gupcheck: bounded[declared-table] -- one entry per declared mapping; filled once at construction
        self._by_suffix: Dict[str, MappingEntry] = {}
        # gupcheck: bounded[declared-table] -- mirror index of the same declared mappings
        self._by_foreign: Dict[str, MappingEntry] = {}
        for entry in entries:
            if entry.gup_suffix in self._by_suffix:
                raise FederationError(
                    "duplicate GUP suffix %r" % entry.gup_suffix
                )
            if entry.foreign_attr in self._by_foreign:
                raise FederationError(
                    "duplicate foreign attribute %r"
                    % entry.foreign_attr
                )
            self._by_suffix[entry.gup_suffix] = entry
            self._by_foreign[entry.foreign_attr] = entry
        if not self._by_suffix:
            raise FederationError("mapping table is empty")

    def by_suffix(self, gup_suffix: str) -> Optional[MappingEntry]:
        return self._by_suffix.get(gup_suffix)

    def by_foreign(self, attr: str) -> Optional[MappingEntry]:
        return self._by_foreign.get(attr)

    def split_record_path(
        self, path: str
    ) -> Optional[Tuple[str, MappingEntry]]:
        """Map a bus change-record path to (user id, mapping entry) —
        or None when the path is not federated (unmapped, no user id,
        or an unparseable free-form path)."""
        try:
            parsed = parse_path(path)
        except PXMLError:
            # Bus paths are free-form; unparseable means unmapped.
            return None
        user_id = parsed.user_id()
        if user_id is None or parsed.depth < 2:
            return None
        suffix = "/".join(
            step.name for step in parsed.steps[1:]
        )
        entry = self._by_suffix.get(suffix)
        if entry is None:
            return None
        return user_id, entry

    def entries(self) -> List[MappingEntry]:
        return [
            self._by_suffix[suffix]
            for suffix in sorted(self._by_suffix)
        ]

    def __len__(self) -> int:
        return len(self._by_suffix)

    def __iter__(self) -> Iterator[MappingEntry]:
        return iter(self.entries())

    def __repr__(self) -> str:
        return "<MappingTable %d entr%s>" % (
            len(self), "y" if len(self) == 1 else "ies",
        )
