"""The bidirectional reconciler: GUP <-> foreign, one loop, no echoes.

ROADMAP item 3, modeled on the AD-connector pattern: a sync loop that
runs every ``interval_ms`` of virtual time at its own network node and
makes both sides converge on a shared fixpoint per mapped attribute.
DESIGN.md §4.10 gives the state machine; the load-bearing invariants:

**Three-way resolution.** For each dirty (user, attribute) pair the
reconciler compares the GUP value, the foreign value, and ``_base`` —
the value both sides agreed on after the last successful sync. Only
one side moved -> copy it across, no conflict. Both moved -> the
conflict policy produces an explicit winner, ledgered with who won
and why, before either store is touched. Values equal -> just advance
the base; **no write happens**, which is what makes a fixpoint a
fixpoint (zero oscillation: a converged pair generates no traffic).

**Echo suppression via origin-tagged provenance.** Every write the
reconciler makes carries its sync tag. Outbound: foreign journal
entries bearing the tag are skipped on import. Inbound: before
writing GUP, the (user, suffix, value) triple is registered in the
origin-tag table, and the bus record that comes back through
:class:`~repro.federation.listener.FederationListener` consumes the
tag instead of re-dirtying the pair. A synced write therefore never
produces a second sync of itself. The tag table is capped; losing a
tag to eviction only costs one spurious dirty mark that resolves as
already-equal (self-healing, counted in ``fed.tags_evicted``).

**Bounded reject queue.** Per-object failures (foreign write
rejections, reads during an outage) park the object's pending
attributes with exponential backoff; ``max_attempts`` strikes mark it
poisoned — retried only by an explicit :meth:`replay`. The queue
itself is capped; overflow raises the ``need_resync`` flag so the
next round re-derives the lost work from a full scan (no-loss).

**Privacy shield on egress.** Every outbound foreign write passes the
policy enforcement point per attribute; a denial is counted and
ledgered (``granted=False``) and the value never crosses the wire.

Crash/recovery: ``crash()`` loses the volatile dirty set and tag
table but keeps ``_base``, the cursor and the reject queue (the
connector's persistent sync database). ``resume()`` full-resyncs and
kicks the bus so the held-back GUP backlog replays whole.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.access import PolicyEnforcementPoint, RequestContext
from repro.bus import ChangeBus
from repro.bus.log import ChangeRecord
from repro.core.provenance import ProvenanceTracker
from repro.errors import (
    AdapterError,
    ForeignResyncRequiredError,
    NetworkError,
    StoreError,
)
from repro.federation.conflicts import ConflictPolicy, LastWriterWins
from repro.federation.foreign import ForeignDirectory
from repro.federation.gupview import GupAttributeStore
from repro.federation.mapping import MappingEntry, MappingTable
from repro.obs.metrics import CounterView
from repro.simnet import Network, Timer, Trace

__all__ = [
    "DEFAULT_INTERVAL_MS",
    "Reconciler",
    "RejectQueue",
    "RejectedObject",
]

#: Default sync-round cadence (virtual ms).
DEFAULT_INTERVAL_MS = 250.0

#: Wire envelope of a journal poll request / attribute read.
POLL_BYTES = 64
READ_BYTES = 96
ACK_BYTES = 32
WRITE_OVERHEAD_BYTES = 96

#: Sentinel meaning "no base value agreed yet" in three-way terms.
_NO_BASE = None


class RejectedObject:
    """One parked object: which attributes are pending, how many
    strikes it has, and when it is due again."""

    __slots__ = ("user_id", "pending", "attempts", "retry_at",
                 "poisoned", "last_error")

    def __init__(self, user_id: str) -> None:
        self.user_id = user_id
        #: GUP suffixes still awaiting a successful resolution.
        # gupcheck: bounded[attr-vocab] -- suffixes come from the mapping table, a declared finite vocabulary
        self.pending: Set[str] = set()
        self.attempts = 0
        self.retry_at = 0.0
        self.poisoned = False
        self.last_error = ""

    def __repr__(self) -> str:
        state = "poisoned" if self.poisoned else (
            "due@%.0f" % self.retry_at
        )
        return "<RejectedObject %s %d attr(s) %s>" % (
            self.user_id, len(self.pending), state,
        )


class RejectQueue:
    """Per-object retry queue with exponential backoff.

    Keyed by user id (the federated *object*), because foreign
    failures are per-entry: a constraint violation or ACL reject hits
    the whole DN, not one attribute. Objects past ``max_attempts``
    are **poisoned** — held without retries until an operator calls
    :meth:`replay` (or drops them). The queue is bounded; overflow
    trips ``need_resync`` instead of silently dropping work, and the
    owning reconciler heals by full resync.
    """

    def __init__(
        self,
        max_objects: int = 1024,
        max_attempts: int = 5,
        base_backoff_ms: float = 500.0,
        max_backoff_ms: float = 60_000.0,
    ) -> None:
        if max_objects <= 0:
            raise ValueError("max_objects must be positive")
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        self.max_objects = max_objects
        self.max_attempts = max_attempts
        self.base_backoff_ms = base_backoff_ms
        self.max_backoff_ms = max_backoff_ms
        #: user id -> parked object. Capped at max_objects: overflow
        #: trips need_resync (counted) and the owner heals by resync.
        self._objects: Dict[str, RejectedObject] = {}
        #: Overflow happened — the owner must full-resync to recover
        #: the work this queue could not hold.
        self.need_resync = False
        self.overflowed = 0

    def note_failure(
        self,
        user_id: str,
        suffixes: Set[str],
        now: float,
        error: Exception,
    ) -> RejectedObject:
        """Park (or re-park) an object after a failed resolution."""
        entry = self._objects.get(user_id)
        if entry is None:
            if len(self._objects) >= self.max_objects:
                self.need_resync = True
                self.overflowed += 1
                # Return a throwaway record; the pending work is
                # re-derived by the resync, not remembered here.
                spill = RejectedObject(user_id)
                spill.pending.update(suffixes)
                spill.last_error = str(error)
                return spill
            entry = RejectedObject(user_id)
            self._objects[user_id] = entry
        entry.pending.update(suffixes)
        entry.attempts += 1
        entry.last_error = str(error)
        if entry.attempts >= self.max_attempts:
            entry.poisoned = True
        backoff = min(
            self.base_backoff_ms * (2.0 ** (entry.attempts - 1)),
            self.max_backoff_ms,
        )
        entry.retry_at = now + backoff
        return entry

    def note_success(self, user_id: str, suffix: str) -> None:
        """One attribute of a parked object resolved cleanly."""
        entry = self._objects.get(user_id)
        if entry is None:
            return
        entry.pending.discard(suffix)
        if not entry.pending:
            del self._objects[user_id]

    def due(self, now: float) -> List[RejectedObject]:
        """Non-poisoned objects whose backoff has elapsed."""
        return [
            entry for entry in self._objects.values()
            if not entry.poisoned and entry.retry_at <= now
        ]

    def replay(self, user_id: str, now: float) -> Optional[RejectedObject]:
        """Operator override: un-poison one object and make it due
        immediately (attempt count restarts)."""
        entry = self._objects.get(user_id)
        if entry is None:
            return None
        entry.poisoned = False
        entry.attempts = 0
        entry.retry_at = now
        return entry

    def drop(self, user_id: str) -> None:
        """Operator override: abandon one object's pending work."""
        self._objects.pop(user_id, None)

    def poisoned_objects(self) -> List[RejectedObject]:
        return sorted(
            (e for e in self._objects.values() if e.poisoned),
            key=lambda e: e.user_id,
        )

    def get(self, user_id: str) -> Optional[RejectedObject]:
        return self._objects.get(user_id)

    def __len__(self) -> int:
        return len(self._objects)

    def __repr__(self) -> str:
        return "<RejectQueue %d object(s)%s>" % (
            len(self._objects),
            " NEED-RESYNC" if self.need_resync else "",
        )


class Reconciler:
    """The sync loop between a GUP attribute store and one foreign
    directory.

    Parameters
    ----------
    node:
        The reconciler's simulated-network node; journal polls and
        outbound writes travel node <-> ``foreign.name``.
    gup / foreign:
        The two stores being reconciled.
    table:
        The attribute mapping table (per-attribute direction).
    network:
        The simulated network (topology, metrics registry, tracing).
    pep:
        The policy enforcement point gating every outbound write.
    policy:
        Conflict policy for genuinely contested attributes.
    provenance:
        Ledger receiving one record per conflict resolution and per
        shield withhold (who won and why).
    """

    rounds = CounterView("fed.rounds")
    synced_in = CounterView("fed.synced_in")
    synced_out = CounterView("fed.synced_out")
    conflicts = CounterView("fed.conflicts")
    conflict_gup_wins = CounterView("fed.conflict_gup_wins")
    conflict_foreign_wins = CounterView("fed.conflict_foreign_wins")
    conflict_merges = CounterView("fed.conflict_merges")
    echo_suppressed_in = CounterView("fed.echo_suppressed_in")
    echo_suppressed_gup = CounterView("fed.echo_suppressed_gup")
    withheld = CounterView("fed.withheld")
    rejects = CounterView("fed.rejects")
    retries = CounterView("fed.retries")
    poisoned = CounterView("fed.poisoned")
    replays = CounterView("fed.replays")
    poll_failures = CounterView("fed.poll_failures")
    resyncs = CounterView("fed.resyncs")
    tags_evicted = CounterView("fed.tags_evicted")

    def __init__(
        self,
        node: str,
        gup: GupAttributeStore,
        foreign: ForeignDirectory,
        table: MappingTable,
        network: Network,
        pep: PolicyEnforcementPoint,
        policy: Optional[ConflictPolicy] = None,
        provenance: Optional[ProvenanceTracker] = None,
        interval_ms: float = DEFAULT_INTERVAL_MS,
        tag: Optional[str] = None,
        max_tags: int = 4096,
        reject_queue: Optional[RejectQueue] = None,
    ) -> None:
        self.node = node
        self.gup = gup
        self.foreign = foreign
        self.table = table
        self.network = network
        self.sim = gup.sim
        self.pep = pep
        self.policy = policy if policy is not None else LastWriterWins()
        self.provenance = provenance
        self.interval_ms = interval_ms
        #: Origin tag stamped on every write this reconciler makes.
        self.tag = tag if tag is not None else "sync:%s" % node
        self.max_tags = max_tags
        self.queue = (
            reject_queue if reject_queue is not None else RejectQueue()
        )
        #: The requester identity outbound writes are enforced under.
        self.foreign_context = RequestContext(
            requester=foreign.name,
            relationship="third-party",
            purpose="provision",
        )
        #: (user, suffix) -> last value both sides agreed on.
        # gupcheck: bounded[dataset] -- one entry per federated (user, attribute); overwritten in place
        self._base: Dict[Tuple[str, str], str] = {}
        #: Pairs awaiting resolution; drained every round.
        # gupcheck: bounded[drained] -- cleared at the top of every sync round
        self._dirty: Set[Tuple[str, str]] = set()
        #: Inbound-write provenance: (user, suffix, value) -> refcount.
        #: Capped at max_tags, oldest-insertion evicted (counted); a
        #: lost tag self-heals as a no-op dirty mark.
        self._tags: Dict[Tuple[str, str, str], int] = {}
        #: Foreign journal cursor (last USN imported).
        self._cursor = 0
        self._timer: Optional[Timer] = None
        self._down = False
        self.metrics = network.metrics
        self.metrics.counter(
            "fed.rounds", help="Federation sync rounds run")
        self.metrics.counter(
            "fed.synced_in", help="Attribute values copied foreign -> GUP")
        self.metrics.counter(
            "fed.synced_out", help="Attribute values copied GUP -> foreign")
        self.metrics.counter(
            "fed.conflicts", help="Contested pairs handed to the policy")
        self.metrics.counter(
            "fed.conflict_gup_wins", help="Conflicts resolved for GUP")
        self.metrics.counter(
            "fed.conflict_foreign_wins",
            help="Conflicts resolved for the foreign directory")
        self.metrics.counter(
            "fed.conflict_merges", help="Conflicts resolved by merge")
        self.metrics.counter(
            "fed.echo_suppressed_in",
            help="Own journal entries skipped on import")
        self.metrics.counter(
            "fed.echo_suppressed_gup",
            help="Own bus records absorbed by the origin-tag table")
        self.metrics.counter(
            "fed.withheld",
            help="Outbound writes denied by the privacy shield")
        self.metrics.counter(
            "fed.rejects", help="Failed resolutions parked for retry")
        self.metrics.counter(
            "fed.retries", help="Parked objects re-marked dirty")
        self.metrics.counter(
            "fed.poisoned", help="Objects that struck out of retries")
        self.metrics.counter(
            "fed.replays", help="Explicit operator replays of poisoned objects")
        self.metrics.counter(
            "fed.poll_failures", help="Journal polls that failed")
        self.metrics.counter(
            "fed.resyncs", help="Full resyncs (window fell behind or overflow)")
        self.metrics.counter(
            "fed.tags_evicted",
            help="Origin tags evicted by the table cap")

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> Timer:
        """Begin (or restart) the periodic sync loop."""
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.sim.every(self.interval_ms, self.sync_round)
        return self._timer

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def crash(self) -> None:
        """Lose the volatile state: the loop stops, the node drops off
        the network (bus deliveries fail and cursors hold), and the
        in-memory dirty set and origin-tag table are gone. ``_base``,
        the journal cursor and the reject queue survive — they are the
        connector's persistent sync database."""
        self.stop()
        self._down = True
        self.network.fail(self.node)
        self._dirty.clear()
        self._tags.clear()

    def resume(self, bus: Optional[ChangeBus] = None) -> None:
        """Recover from :meth:`crash`: rejoin the network, full-resync
        (the foreign side moved while we were down), restart the loop,
        and kick the bus so the held-back GUP backlog replays."""
        self.network.restore(self.node)
        self._down = False
        self.full_resync()
        self.start()
        if bus is not None:
            bus.kick()

    def full_resync(self) -> None:
        """Mark every federated pair either side knows about dirty and
        jump the cursor to the journal head. The next rounds re-derive
        convergence from current state — already-equal pairs resolve
        as no-ops, so a resync is safe to run at any time."""
        self.resyncs += 1
        for user_id, suffix in self.gup.pairs():
            if self.table.by_suffix(suffix) is not None:
                self._dirty.add((user_id, suffix))
        try:
            for user_id in self.foreign.users():
                for attr in self.foreign.attrs_of(user_id):
                    entry = self.table.by_foreign(attr)
                    if entry is not None:
                        self._dirty.add((user_id, entry.gup_suffix))
        except StoreError:
            # Foreign is down; its half of the scan happens after the
            # next resync (the cursor jump below is still correct: a
            # down directory journals nothing).
            pass
        self._dirty.update(self._base)
        self._cursor = self.foreign.last_usn

    # -- bus-facing surface ---------------------------------------------------

    def maps_record(self, record: ChangeRecord) -> bool:
        """Does this bus record touch a federated attribute?
        (``FederationListener.wants`` — inbound-only entries still
        match: a GUP edit of a foreign-authoritative attribute must
        dirty the pair so foreign authority reasserts itself.)"""
        return self.table.split_record_path(record.path) is not None

    def note_gup_delta(self, record: ChangeRecord) -> None:
        """One GUP-side change arrived off the bus: either the echo of
        an inbound sync (consume its origin tag, suppress) or a
        genuine local edit (dirty the pair)."""
        mapped = self.table.split_record_path(record.path)
        if mapped is None:
            return
        user_id, entry = mapped
        if self._consume_tag(user_id, entry.gup_suffix, record.value):
            self.echo_suppressed_gup += 1
            return
        self._dirty.add((user_id, entry.gup_suffix))

    # -- origin tags ----------------------------------------------------------

    def _note_tag(self, user_id: str, suffix: str, value: str) -> None:
        key = (user_id, suffix, value)
        self._tags[key] = self._tags.get(key, 0) + 1
        while len(self._tags) > self.max_tags:
            oldest = next(iter(self._tags))
            del self._tags[oldest]
            self.tags_evicted += 1

    def _consume_tag(
        self, user_id: str, suffix: str, value: str
    ) -> bool:
        key = (user_id, suffix, value)
        count = self._tags.get(key)
        if count is None:
            return False
        if count <= 1:
            del self._tags[key]
        else:
            self._tags[key] = count - 1
        return True

    # -- the sync round -------------------------------------------------------

    def sync_round(self) -> int:
        """One round: import the foreign journal, re-mark due rejects,
        resolve every dirty pair. Returns the number of pairs worked
        (0 at fixpoint — the zero-oscillation gate)."""
        if self._down:
            return 0
        self.rounds += 1
        trace = self.network.trace()
        with trace.span(
            "fed.round", node=self.node, foreign=self.foreign.name,
            policy=self.policy.name,
        ) as span:
            if self.queue.need_resync:
                self.queue.need_resync = False
                self.full_resync()
            self._import_journal(trace)
            self._retry_due()
            work = sorted(self._dirty)
            self._dirty.clear()
            for user_id, suffix in work:
                self._resolve_pair(user_id, suffix, trace)
            span.set("pairs", len(work))
        return len(work)

    def _import_journal(self, trace: Trace) -> None:
        """Poll ``changes_since(cursor)``: advance the cursor, skip
        echoes of our own exports, dirty genuinely foreign changes of
        importable attributes."""
        try:
            trace.hop(self.node, self.foreign.name, POLL_BYTES)
            changes = self.foreign.changes_since(self._cursor)
            trace.hop(
                self.foreign.name, self.node,
                POLL_BYTES + sum(c.byte_size() for c in changes),
            )
        except ForeignResyncRequiredError:
            # Cursor fell behind the retained window: the incremental
            # stream is incomplete, so re-derive from full state.
            self.full_resync()
            return
        except (NetworkError, StoreError):
            self.poll_failures += 1
            return
        for change in changes:
            self._cursor = change.usn
            if change.origin == self.tag:
                self.echo_suppressed_in += 1
                continue
            entry = self.table.by_foreign(change.attr)
            if entry is None:
                continue
            # Even out-only entries dirty the pair: foreign drift on a
            # GUP-authoritative attribute is detected here and
            # overwritten by the resolution (the mirror of a GUP edit
            # on an in-attribute dirtying via the bus listener).
            self._dirty.add((change.user_id, entry.gup_suffix))

    def _retry_due(self) -> None:
        for parked in self.queue.due(self.sim.now):
            self.retries += 1
            for suffix in parked.pending:
                self._dirty.add((parked.user_id, suffix))

    def _note_reject(
        self, user_id: str, suffix: str, error: Exception
    ) -> None:
        self.rejects += 1
        was_poisoned = (
            (parked := self.queue.get(user_id)) is not None
            and parked.poisoned
        )
        entry = self.queue.note_failure(
            user_id, {suffix}, self.sim.now, error
        )
        if entry.poisoned and not was_poisoned:
            self.poisoned += 1

    def replay(self, user_id: str) -> bool:
        """Operator override: retry a poisoned object now."""
        entry = self.queue.replay(user_id, self.sim.now)
        if entry is None:
            return False
        self.replays += 1
        for suffix in entry.pending:
            self._dirty.add((user_id, suffix))
        return True

    # -- pair resolution ------------------------------------------------------

    def _resolve_pair(
        self, user_id: str, suffix: str, trace: Trace
    ) -> None:
        entry = self.table.by_suffix(suffix)
        if entry is None:
            return
        parked = self.queue.get(user_id)
        if parked is not None and parked.poisoned \
                and suffix in parked.pending:
            # Poisoned means held: not even a full resync retries the
            # pair — only an explicit replay() does.
            return
        key = (user_id, suffix)
        gup_state = self.gup.read(user_id, suffix)
        try:
            trace.round_trip(
                self.node, self.foreign.name, READ_BYTES, READ_BYTES,
                note="fed.read",
            )
            foreign_state = self.foreign.read(
                user_id, entry.foreign_attr
            )
        except (NetworkError, StoreError, AdapterError) as err:
            self._note_reject(user_id, suffix, err)
            return
        gup_value, gup_at = (
            gup_state if gup_state is not None else (None, 0.0)
        )
        foreign_value, foreign_at = (
            foreign_state if foreign_state is not None else (None, 0.0)
        )
        if gup_value == foreign_value:
            # Converged: advance the base, write nothing. This branch
            # is why a fixpoint stays a fixpoint.
            if gup_value is not None:
                self._base[key] = gup_value
            self.queue.note_success(user_id, suffix)
            return
        try:
            self._reconcile(
                user_id, entry, gup_value, gup_at,
                foreign_value, foreign_at, trace,
            )
        except (NetworkError, StoreError, AdapterError) as err:
            self._note_reject(user_id, suffix, err)
            return
        self.queue.note_success(user_id, suffix)

    def _reconcile(
        self,
        user_id: str,
        entry: MappingEntry,
        gup_value: Optional[str],
        gup_at: float,
        foreign_value: Optional[str],
        foreign_at: float,
        trace: Trace,
    ) -> None:
        """The three-way decision for one differing pair. Values are
        unequal and at least one side holds one."""
        key = (user_id, entry.gup_suffix)
        base = self._base.get(key, _NO_BASE)
        if entry.direction == "out":
            # GUP authoritative: push our value (foreign drift on an
            # out-attribute is overwritten, never imported).
            if gup_value is not None and self._push_out(
                user_id, entry, gup_value, gup_at,
                self.foreign_context, trace,
            ):
                self._base[key] = gup_value
            return
        if entry.direction == "in":
            # Foreign authoritative: pull its value back over any
            # local edit. No foreign value yet -> the local edit
            # stands until one appears.
            if foreign_value is not None:
                self._pull_in(user_id, entry, foreign_value, foreign_at)
                self._base[key] = foreign_value
            return
        # direction == "both": genuine three-way merge against base.
        if gup_value is None:
            assert foreign_value is not None
            self._pull_in(user_id, entry, foreign_value, foreign_at)
            self._base[key] = foreign_value
            return
        if foreign_value is None:
            if self._push_out(
                user_id, entry, gup_value, gup_at,
                self.foreign_context, trace,
            ):
                self._base[key] = gup_value
            return
        if base == gup_value:
            # Only foreign moved since the last agreement.
            self._pull_in(user_id, entry, foreign_value, foreign_at)
            self._base[key] = foreign_value
            return
        if base == foreign_value:
            # Only GUP moved.
            if self._push_out(
                user_id, entry, gup_value, gup_at,
                self.foreign_context, trace,
            ):
                self._base[key] = gup_value
            return
        # Both sides moved (or no base yet): a real conflict.
        resolution = self.policy.resolve(
            entry, gup_value, gup_at, foreign_value, foreign_at
        )
        self.conflicts += 1
        self._ledger(
            user_id, entry,
            "policy=%s winner=%s: %s"
            % (self.policy.name, resolution.winner, resolution.reason),
            stores=("gup", self.foreign.name),
        )
        if resolution.winner == "gup":
            self.conflict_gup_wins += 1
            if self._push_out(
                user_id, entry, resolution.value, resolution.at,
                self.foreign_context, trace,
            ):
                self._base[key] = resolution.value
        elif resolution.winner == "foreign":
            self.conflict_foreign_wins += 1
            self._pull_in(
                user_id, entry, resolution.value, resolution.at
            )
            self._base[key] = resolution.value
        else:  # merge: both sides receive the combined value.
            self.conflict_merges += 1
            sent = True
            if resolution.value != foreign_value:
                sent = self._push_out(
                    user_id, entry, resolution.value, resolution.at,
                    self.foreign_context, trace,
                )
            if resolution.value != gup_value:
                self._pull_in(
                    user_id, entry, resolution.value, resolution.at
                )
            if sent:
                self._base[key] = resolution.value

    # -- the two write paths --------------------------------------------------

    def _push_out(
        self,
        user_id: str,
        entry: MappingEntry,
        value: str,
        at: float,
        context: RequestContext,
        trace: Trace,
    ) -> bool:
        """Export one attribute value to the foreign directory —
        through the privacy shield first. Returns True when the
        foreign side now holds *value* (sent), False when the shield
        withheld it (counted, ledgered, never on the wire)."""
        decision = self.pep.enforce(entry.gup_path(user_id), context)
        if not decision.permit:
            self.withheld += 1
            self._ledger(
                user_id, entry,
                "shield withheld %s from %s: %s"
                % (entry.foreign_attr, self.foreign.name,
                   "; ".join(decision.reasons) or "denied"),
                stores=(self.foreign.name,),
                granted=False,
            )
            return False
        trace.round_trip(
            self.node, self.foreign.name,
            WRITE_OVERHEAD_BYTES + len(value), ACK_BYTES,
            note="fed.write",
        )
        self.foreign.write(
            user_id, entry.foreign_attr, value,
            origin=self.tag, at=at,
        )
        self.synced_out += 1
        return True

    def _pull_in(
        self,
        user_id: str,
        entry: MappingEntry,
        value: str,
        at: float,
    ) -> None:
        """Import one attribute value into GUP. The origin tag is
        registered *before* the write, so the bus record the write
        publishes is absorbed as an echo instead of re-dirtying."""
        self._note_tag(user_id, entry.gup_suffix, value)
        self.gup.write(user_id, entry.gup_suffix, value, at=at)
        self.synced_in += 1

    # -- the audit trail ------------------------------------------------------

    def _ledger(
        self,
        user_id: str,
        entry: MappingEntry,
        note: str,
        stores: Tuple[str, ...],
        granted: bool = True,
    ) -> None:
        if self.provenance is None:
            return
        self.provenance.record(
            self.sim.now,
            self.foreign_context,
            entry.gup_path(user_id),
            stores=stores,
            operation="reconcile",
            granted=granted,
            note=note,
        )

    def __repr__(self) -> str:
        return "<Reconciler %s<->%s policy=%s cursor=%d%s>" % (
            self.node, self.foreign.name, self.policy.name,
            self._cursor, " DOWN" if self._down else "",
        )
