"""The foreign directory: a store that keeps mutating on its own.

*The Identity Crisis* (PAPERS.md) catalogs what goes wrong when two
authorities write the same attribute; this class is the other
authority. It is deliberately **not** a GUP adapter: it has its own
write API (used by the foreign side's administrators, HR feeds,
self-service portals...), an AD-style **USN change counter** whose
journal the reconciler polls incrementally, and fault hooks the
benches and property tests drive:

* :meth:`fail` / :meth:`restore` — a directory-wide outage; reads and
  writes raise :class:`~repro.errors.ForeignUnavailableError`.
* :meth:`reject_writes_for` — a per-object poison pill: writes for one
  user are rejected (constraint violation, ACL, replication conflict
  ...), which is what feeds the reconciler's reject queue.
* a **bounded journal window** — like AD's tombstone lifetime, only
  the newest ``max_journal`` changes replay; a cursor that fell
  behind the window raises
  :class:`~repro.errors.ForeignResyncRequiredError` instead of
  silently feeding an incomplete change stream.

Every change carries an **origin tag**. The foreign side's own writers
use their own tags (default ``"foreign"``); the reconciler writes with
its sync tag, so its journal poll can tell a genuinely foreign change
from the echo of a change it exported itself (DESIGN.md §4.10,
echo-suppression invariant).

:class:`LdapForeignDirectory` keeps a real
:class:`~repro.stores.directory.DirectoryServer` in lockstep through
the :meth:`~repro.adapters.ldap_adapter.LdapAdapter.write_attr` seam,
so reconciler traffic exercises the adapter's write path end to end.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Set, Tuple

from repro.errors import (
    ForeignResyncRequiredError,
    ForeignUnavailableError,
    StoreError,
)
from repro.simnet import Simulator

__all__ = [
    "DEFAULT_MAX_JOURNAL",
    "ForeignChange",
    "ForeignDirectory",
    "LdapForeignDirectory",
]

#: Default journal window (changes retained for incremental replay).
DEFAULT_MAX_JOURNAL = 65536

#: Origin tag of the foreign side's own writers.
FOREIGN_ORIGIN = "foreign"

#: Fixed per-change envelope when a journal slice crosses the wire.
CHANGE_OVERHEAD_BYTES = 48


class ForeignChange:
    """One journaled foreign-directory change."""

    __slots__ = ("usn", "at", "user_id", "attr", "value", "origin")

    def __init__(
        self,
        usn: int,
        at: float,
        user_id: str,
        attr: str,
        value: str,
        origin: str,
    ) -> None:
        self.usn = usn
        self.at = at
        self.user_id = user_id
        self.attr = attr
        self.value = value
        self.origin = origin

    def byte_size(self) -> int:
        """Wire size of this change inside a journal slice."""
        return (
            CHANGE_OVERHEAD_BYTES
            + len(self.user_id) + len(self.attr) + len(self.value)
        )

    def __repr__(self) -> str:
        return "<ForeignChange #%d %s.%s=%r by %s @%.1f>" % (
            self.usn, self.user_id, self.attr, self.value,
            self.origin, self.at,
        )


class ForeignDirectory:
    """A mutating foreign directory with a USN journal.

    Parameters
    ----------
    name:
        Directory name — also the simulated-network node the
        reconciler's journal polls and writes travel to.
    sim:
        The simulator; writes are stamped at ``sim.now`` unless the
        caller carries a virtual timestamp across from the other side.
    max_journal:
        Journal window: older changes are dropped (``dropped`` counts
        them) and cursors behind the window must full-resync.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        max_journal: int = DEFAULT_MAX_JOURNAL,
    ) -> None:
        if max_journal <= 0:
            raise ValueError("max_journal must be positive")
        self.name = name
        self.sim = sim
        self.max_journal = max_journal
        self.available = True
        #: (user, attr) -> (value, virtual timestamp of the change).
        # gupcheck: bounded[dataset] -- one entry per (user, attribute); writes overwrite in place
        self._state: Dict[Tuple[str, str], Tuple[str, float]] = {}
        #: Incremental replay window, newest ``max_journal`` changes.
        # gupcheck: bounded[journal-window] -- capped at max_journal; oldest dropped with `dropped` accounted
        self._journal: List[ForeignChange] = []
        #: USN of ``_journal[0]`` (when non-empty).
        self._head_usn = 1
        self.last_usn = 0
        #: Journal entries dropped by the retention window.
        self.dropped = 0
        #: Users whose writes are currently rejected (poison hook).
        # gupcheck: bounded[fault-hook] -- test/bench fault injection; clear_rejects() empties it
        self._rejected: Set[str] = set()
        self.writes = 0
        self.reads = 0
        self.rejected_writes = 0

    # -- fault hooks ----------------------------------------------------------

    def fail(self) -> None:
        """Directory-wide outage: every read/write raises until
        :meth:`restore`."""
        self.available = False

    def restore(self) -> None:
        self.available = True

    def reject_writes_for(self, user_id: str) -> None:
        """Poison one object: writes for *user_id* raise
        :class:`~repro.errors.StoreError` until cleared."""
        self._rejected.add(user_id)

    def clear_rejects(self, user_id: Optional[str] = None) -> None:
        if user_id is None:
            self._rejected.clear()
        else:
            self._rejected.discard(user_id)

    def _check_available(self) -> None:
        if not self.available:
            raise ForeignUnavailableError(
                "foreign directory %r is down" % self.name
            )

    # -- the write API (the other authority) ----------------------------------

    def write(
        self,
        user_id: str,
        attr: str,
        value: str,
        origin: str = FOREIGN_ORIGIN,
        at: Optional[float] = None,
    ) -> ForeignChange:
        """One attribute write, journaled under the next USN.

        *origin* names the writer (the reconciler passes its sync tag
        so the journal can be echo-filtered); *at* carries a virtual
        timestamp across from the originating side — conflict policies
        compare the instants the values were *authored*, not the
        instants the sync loop happened to copy them."""
        self._check_available()
        if user_id in self._rejected:
            self.rejected_writes += 1
            raise StoreError(
                "foreign directory %r rejects writes for %r"
                % (self.name, user_id)
            )
        when = self.sim.now if at is None else at
        self._apply_native(user_id, attr, value)
        self._state[(user_id, attr)] = (value, when)
        self.last_usn += 1
        change = ForeignChange(
            self.last_usn, when, user_id, attr, value, origin
        )
        self._journal.append(change)
        overflow = len(self._journal) - self.max_journal
        if overflow > 0:
            del self._journal[:overflow]
            self._head_usn += overflow
            self.dropped += overflow
        self.writes += 1
        return change

    def _apply_native(
        self, user_id: str, attr: str, value: str
    ) -> None:
        """Subclass hook: push the write into a backing native store
        (may raise — the journal records only applied writes)."""

    # -- reads ----------------------------------------------------------------

    def read(
        self, user_id: str, attr: str
    ) -> Optional[Tuple[str, float]]:
        """Current (value, authored-at) of one attribute, or None."""
        self._check_available()
        self.reads += 1
        return self._state.get((user_id, attr))

    def users(self) -> List[str]:
        return sorted({user for user, _attr in self._state})

    def attrs_of(self, user_id: str) -> List[str]:
        return sorted(
            attr for user, attr in self._state if user == user_id
        )

    # -- the USN journal -------------------------------------------------------

    def changes_since(self, usn: int) -> List[ForeignChange]:
        """Every journaled change with ``usn`` greater than the
        cursor, oldest first. A cursor behind the retained window
        raises :class:`~repro.errors.ForeignResyncRequiredError` —
        the reconciler must full-resync, not silently skip the gap."""
        self._check_available()
        if usn >= self.last_usn:
            return []
        if usn < self._head_usn - 1:
            raise ForeignResyncRequiredError(
                "cursor %d fell behind %r's journal window "
                "(oldest retained usn %d)"
                % (usn, self.name, self._head_usn)
            )
        return list(self._journal[usn + 1 - self._head_usn:])

    @property
    def head_usn(self) -> int:
        """USN of the oldest retained journal entry."""
        return self._head_usn

    def journal_len(self) -> int:
        return len(self._journal)

    def __repr__(self) -> str:
        return "<%s %s usn=%d %d user(s)%s>" % (
            type(self).__name__, self.name, self.last_usn,
            len(self.users()), "" if self.available else " DOWN",
        )


class LdapAdapterLike(Protocol):  # pragma: no cover - typing only
    """Structural stand-in for :class:`LdapAdapter` (avoids importing
    the adapter package here)."""

    def write_attr(
        self, user_id: str, attr: str, values: List[str]
    ) -> None: ...


class LdapForeignDirectory(ForeignDirectory):
    """A foreign directory whose truth lives in a real
    :class:`~repro.stores.directory.DirectoryServer`.

    Writes go through the LDAP adapter's :meth:`write_attr` seam
    before they are journaled, so schema violations and missing
    entries surface as :class:`~repro.errors.AdapterError` — exactly
    the failures the reconciler's reject queue must absorb."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        adapter: LdapAdapterLike,
        max_journal: int = DEFAULT_MAX_JOURNAL,
    ) -> None:
        super().__init__(name, sim, max_journal=max_journal)
        self.adapter = adapter

    def _apply_native(
        self, user_id: str, attr: str, value: str
    ) -> None:
        self.adapter.write_attr(user_id, attr, [value])
