"""The bus listener feeding GUP-side deltas to the reconciler.

Foreign-bound deltas come off the E20 change bus, not from polling:
the listener's ``wants`` filter keeps only records whose path the
mapping table federates outward, and delivery hands each record to
the reconciler, which either **suppresses it as an echo** (the record
is the bus shadow of a foreign change the reconciler itself imported
— re-exporting it would bounce the change back forever) or marks the
(user, attribute) pair dirty for the next sync round.

The listener runs at the reconciler's node, so wave deliveries pay
one simulated round trip and honor the bus's crash/replay contract:
while the reconciler node is down, cursors hold and the backlog
replays whole on recovery — the no-loss half of the E22 gates.

No shield here: the reconciler is GUPster's own component, not a
requester. The privacy shield runs where data actually leaves the
system — per attribute, on the reconciler's outbound foreign writes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.bus.bus import BusListener, ChangeBus, ShieldMemo
from repro.bus.log import ChangeRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.reconciler import Reconciler

__all__ = ["FederationListener"]


class FederationListener(BusListener):
    """Routes federated GUP changes into the reconciler's dirty set."""

    def __init__(
        self, name: str, reconciler: "Reconciler"
    ) -> None:
        super().__init__(name, node=reconciler.node)
        self.reconciler = reconciler
        self.routed = 0

    def wants(self, record: ChangeRecord) -> bool:
        return self.reconciler.maps_record(record)

    def deliver(
        self,
        records: List[ChangeRecord],
        now: float,
        bus: ChangeBus,
        memo: ShieldMemo,
    ) -> None:
        for record in records:
            self.routed += 1
            self.reconciler.note_gup_delta(record)
