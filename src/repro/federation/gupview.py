"""The attribute-granular GUP-side facade the reconciler syncs.

GUP queries and provisioning move whole XML components; federation
reconciles at the *attribute* grain the mapping table speaks
(``self/email`` <-> ``mail``). :class:`GupAttributeStore` is that
view: per-(user, suffix) values stamped with the virtual instant they
were authored, whose writes ride the E20 change bus exactly like the
provisioner's enter-once storms — so caches invalidate, mirrors
refresh, subscribers fan out, **and** the federation listener marks
the pair dirty, all off the same append.

``at`` lets the reconciler carry a foreign change's authored instant
across the boundary (conflict policies compare authored instants, not
copy instants); ordinary GUP-side writers leave it unset and get
``sim.now``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.bus import ChangeBus
from repro.simnet import Simulator

__all__ = ["GupAttributeStore"]


class GupAttributeStore:
    """Attribute-level profile values on the GUP side of the fence."""

    def __init__(
        self,
        sim: Simulator,
        bus: Optional[ChangeBus] = None,
    ) -> None:
        self.sim = sim
        self.bus = bus
        #: (user, gup suffix) -> (value, authored-at).
        # gupcheck: bounded[dataset] -- one entry per (user, attribute); writes overwrite in place
        self._values: Dict[Tuple[str, str], Tuple[str, float]] = {}
        self.writes = 0

    def bind_bus(self, bus: ChangeBus) -> None:
        self.bus = bus

    def write(
        self,
        user_id: str,
        suffix: str,
        value: str,
        at: Optional[float] = None,
    ) -> None:
        """Author one attribute value (and publish it on the bus)."""
        when = self.sim.now if at is None else at
        self._values[(user_id, suffix)] = (value, when)
        self.writes += 1
        if self.bus is not None:
            self.bus.append(
                "/user[@id='%s']/%s" % (user_id, suffix),
                value,
                user_id,
            )

    def read(
        self, user_id: str, suffix: str
    ) -> Optional[Tuple[str, float]]:
        """Current (value, authored-at) of one attribute, or None."""
        return self._values.get((user_id, suffix))

    def pairs(self) -> Iterator[Tuple[str, str]]:
        """Every (user, suffix) pair holding a value."""
        return iter(sorted(self._values))

    def users(self) -> List[str]:
        return sorted({user for user, _suffix in self._values})

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return "<GupAttributeStore %d value(s)%s>" % (
            len(self._values),
            "" if self.bus is None else " on-bus",
        )
