"""Bidirectional federation: GUP <-> foreign-directory reconciliation.

ROADMAP item 3 / experiment E22. The paper's "enter once, share
everywhere" promise assumed the GUP side was the only writer; a
converged network's foreign directories (corp AD/LDAP, telco HLR)
keep mutating on their own. This package makes the promise honest
when the other side also writes:

* :class:`ForeignDirectory` — a mutating stand-in with its own write
  API, a USN-style change counter with a bounded journal window, and
  fault hooks (outage, per-object write rejection, journal
  truncation). :class:`LdapForeignDirectory` backs it with a real
  :class:`~repro.stores.directory.DirectoryServer` through the
  :meth:`~repro.adapters.ldap_adapter.LdapAdapter.write_attr` seam.
* :class:`MappingTable` — GUP component paths <-> foreign attributes,
  with a per-attribute sync direction (``in`` / ``out`` / ``both``).
* Conflict policies (:mod:`repro.federation.conflicts`) —
  last-writer-wins on virtual timestamps, per-attribute merge,
  gup-wins, foreign-wins; every resolution lands in the provenance
  ledger with who won and why.
* :class:`GupAttributeStore` — the attribute-granular GUP-side facade
  whose writes ride the E20 change bus.
* :class:`FederationListener` — the bus listener feeding GUP-side
  deltas to the reconciler (echo-suppressed via origin tags).
* :class:`Reconciler` — the simnet-scheduled sync loop itself, with a
  bounded per-object reject queue, retry/backoff and explicit replay.

See DESIGN.md §4.10 and EXPERIMENTS.md E22.
"""

from repro.federation.conflicts import (
    AttributeMerge,
    ConflictPolicy,
    ForeignWins,
    GupWins,
    LastWriterWins,
    POLICIES,
    Resolution,
    merge_union,
    policy_named,
)
from repro.federation.foreign import (
    ForeignChange,
    ForeignDirectory,
    LdapForeignDirectory,
)
from repro.federation.gupview import GupAttributeStore
from repro.federation.listener import FederationListener
from repro.federation.mapping import MappingEntry, MappingTable
from repro.federation.reconciler import Reconciler, RejectQueue

__all__ = [
    "AttributeMerge",
    "ConflictPolicy",
    "FederationListener",
    "ForeignChange",
    "ForeignDirectory",
    "ForeignWins",
    "GupAttributeStore",
    "GupWins",
    "LastWriterWins",
    "LdapForeignDirectory",
    "MappingEntry",
    "MappingTable",
    "POLICIES",
    "Reconciler",
    "RejectQueue",
    "Resolution",
    "merge_union",
    "policy_named",
]
