"""Consistent-hash ring: deterministic subscriber placement at scale.

The paper pitches GUP at carrier populations ("at its peak, Napster
had more than 50m users"; HLRs serve hundreds of millions of
subscribers), and *Towards Social Profile Based Overlays* (PAPERS.md)
argues DHT-style placement is the natural substrate for federated
profile data. This module is that substrate, reduced to its essence:

* a :class:`HashRing` maps any string key (a subscriber id) to one of
  N shards through ``vnodes`` virtual points per shard on a 64-bit
  hash circle — placement is **deterministic** (a pure function of the
  shard ids, the vnode count and the key; pinned by the golden fixture
  ``tests/data/golden_placement.json``) and **balanced** (more vnodes
  ⇒ tighter arc-length spread);
* :meth:`HashRing.rebalance` retargets the ring to a new shard set and
  returns a :class:`RebalancePlan` describing exactly which hash
  ranges changed owner — growing n → n+k shards moves only the keys
  landing in the new shards' arcs (≈ k/(n+k) of the population), never
  reshuffles the rest. ``tests/test_sharding.py`` holds Hypothesis
  property tests for both guarantees.

The hash is BLAKE2b (8-byte digest) — stable across processes and
Python versions, unlike ``hash()`` under ``PYTHONHASHSEED``; the
determinism rule's ban on seedless randomness does not even come up
because nothing here is random at all.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["HashRing", "RebalancePlan", "hash_key"]

#: The hash circle is [0, 2**64).
RING_BITS = 64
RING_SIZE = 1 << RING_BITS


def hash_key(key: str) -> int:
    """Position of *key* on the ring: 64-bit BLAKE2b, process-stable."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


def _vnode_points(shard_id: str, vnodes: int) -> List[int]:
    return [
        hash_key("%s#%d" % (shard_id, index)) for index in range(vnodes)
    ]


class RebalancePlan:
    """What a :meth:`HashRing.rebalance` changed.

    ``moved_ranges`` are half-open hash intervals ``(lo, hi, frm, to)``
    (``lo <= h < hi``) whose owner changed — the *only* keys that move.
    The plan is the unit the property tests pin: membership via
    :meth:`moves`, magnitude via :attr:`moved_fraction`.
    """

    __slots__ = ("added", "removed", "moved_ranges")

    def __init__(
        self,
        added: Tuple[str, ...],
        removed: Tuple[str, ...],
        moved_ranges: List[Tuple[int, int, str, str]],
    ) -> None:
        self.added = added
        self.removed = removed
        self.moved_ranges = moved_ranges

    @property
    def moved_fraction(self) -> float:
        """Fraction of the hash circle whose owner changed."""
        moved = sum(hi - lo for lo, hi, _frm, _to in self.moved_ranges)
        return moved / RING_SIZE

    def moves(self, key: str) -> Optional[Tuple[str, str]]:
        """``(old_shard, new_shard)`` when *key* changed owner, else
        None."""
        point = hash_key(key)
        for lo, hi, frm, to in self.moved_ranges:
            if lo <= point < hi:
                return (frm, to)
        return None

    def __repr__(self) -> str:
        return "<RebalancePlan +%d -%d shards, %.4f%% of ring moved>" % (
            len(self.added), len(self.removed),
            100.0 * self.moved_fraction,
        )


class HashRing:
    """Consistent-hash placement of string keys over named shards."""

    __slots__ = ("vnodes", "_shards", "_points", "_owners")

    def __init__(
        self, shard_ids: Sequence[str], vnodes: int = 64
    ) -> None:
        if not shard_ids:
            raise ValueError("a ring needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError("duplicate shard ids")
        if vnodes < 1:
            raise ValueError("need at least one vnode per shard")
        self.vnodes = vnodes
        #: Shard ids in registration order (placement does not depend
        #: on this order — only on the ids themselves).
        self._shards: List[str] = list(shard_ids)
        self._points: List[int] = []
        self._owners: List[str] = []
        self._rebuild()

    # -- construction -------------------------------------------------------

    def _rebuild(self) -> None:
        pairs: List[Tuple[int, str]] = []
        for shard_id in self._shards:
            pairs.extend(
                (point, shard_id)
                for point in _vnode_points(shard_id, self.vnodes)
            )
        # Sort by (point, shard id): a (vanishingly unlikely) point
        # collision between two shards resolves deterministically to
        # the lexicographically smaller shard id.
        pairs.sort()
        self._points = [point for point, _sid in pairs]
        self._owners = [sid for _point, sid in pairs]

    # -- placement ----------------------------------------------------------

    @property
    def shards(self) -> List[str]:
        return list(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    def _owner_at(self, point: int) -> str:
        index = bisect_left(self._points, point)
        if index == len(self._points):
            index = 0  # wrap: past the last vnode, the first owns
        return self._owners[index]

    def place(self, key: str) -> str:
        """The shard owning *key* — the first vnode clockwise from the
        key's hash position."""
        return self._owner_at(hash_key(key))

    def place_n(self, key: str, n: int) -> List[str]:
        """The *n* distinct shards next clockwise from *key* (a replica
        set: owner first, then successors). ``n`` is capped at the
        shard count."""
        if n < 1:
            raise ValueError("need at least one replica")
        want = min(n, len(self._shards))
        start = bisect_left(self._points, hash_key(key))
        picked: List[str] = []
        total = len(self._owners)
        for offset in range(total):
            owner = self._owners[(start + offset) % total]
            if owner not in picked:
                picked.append(owner)
                if len(picked) == want:
                    break
        return picked

    def arc_share(self) -> Dict[str, float]:
        """Fraction of the hash circle each shard owns (sums to 1.0) —
        the balance the property tests bound."""
        shares: Dict[str, int] = {sid: 0 for sid in self._shards}
        previous = self._points[-1] - RING_SIZE  # wrap-around arc
        for point, owner in zip(self._points, self._owners):
            shares[owner] += point - previous
            previous = point
        return {
            sid: arc / RING_SIZE for sid, arc in shares.items()
        }

    # -- membership changes -------------------------------------------------

    def rebalance(self, target_shard_ids: Sequence[str]) -> RebalancePlan:
        """Retarget the ring to *target_shard_ids*, moving only the
        minimal hash ranges.

        Returns the :class:`RebalancePlan` of owner-changed intervals;
        the caller (e.g. :class:`repro.stores.sharded.ShardedStore`)
        uses it to migrate exactly the affected subscribers."""
        if not target_shard_ids:
            raise ValueError("cannot rebalance to zero shards")
        if len(set(target_shard_ids)) != len(target_shard_ids):
            raise ValueError("duplicate shard ids")
        old_points = self._points
        old_owners = self._owners
        added = tuple(
            sid for sid in target_shard_ids if sid not in self._shards
        )
        removed = tuple(
            sid for sid in self._shards if sid not in target_shard_ids
        )
        self._shards = list(target_shard_ids)
        self._rebuild()
        # Break the circle at every vnode of either ring. Ownership
        # ("first vnode clockwise at or after the point") is constant
        # on the half-open-from-the-left intervals ``(b[i-1], b[i]]``
        # between consecutive breakpoints — it changes just *after*
        # each vnode — so the moved set is exactly those intervals
        # where the two owner functions differ, re-expressed in the
        # plan's ``lo <= h < hi`` convention as ``[b[i-1]+1, b[i]+1)``.
        breakpoints = sorted(set(old_points) | set(self._points))
        moved: List[Tuple[int, int, str, str]] = []
        if not breakpoints:  # pragma: no cover - rings are never empty
            return RebalancePlan(added, removed, moved)

        def old_owner_at(point: int) -> str:
            index = bisect_left(old_points, point)
            if index == len(old_points):
                index = 0
            return old_owners[index]

        def note(lo: int, hi: int, sample: int) -> None:
            if lo >= hi:
                return
            frm = old_owner_at(sample)
            to = self._owner_at(sample)
            if frm != to:
                if moved and moved[-1][1] == lo \
                        and moved[-1][2] == frm and moved[-1][3] == to:
                    # Coalesce adjacent intervals with the same move.
                    moved[-1] = (moved[-1][0], hi, frm, to)
                else:
                    moved.append((lo, hi, frm, to))

        first = breakpoints[0]
        last = breakpoints[-1]
        # The wrap arc (last, RING_SIZE) ∪ [0, first] is one circular
        # interval: every point in it resolves to each ring's smallest
        # vnode. Emitted as (up to) two linear ranges, sampled at 0.
        note(0, first + 1, 0)
        for previous, point in zip(breakpoints, breakpoints[1:]):
            note(previous + 1, point + 1, point)
        note(last + 1, RING_SIZE, 0)
        return RebalancePlan(added, removed, moved)

    # -- introspection ------------------------------------------------------

    def placement_table(self, keys: Iterable[str]) -> Dict[str, str]:
        """key -> owning shard for every key (golden-fixture helper)."""
        return {key: self.place(key) for key in keys}

    def __repr__(self) -> str:
        return "<HashRing %d shard(s) x %d vnode(s)>" % (
            len(self._shards), self.vnodes,
        )
