"""Consistent-hash placement for carrier-scale GUP federation.

The paper's Section 4 pitches "scalability via federation" — profile
data spread across many stores, located through the coverage map.
This package supplies the placement substrate: a deterministic
consistent-hash ring (:mod:`repro.sharding.ring`) that
:class:`repro.stores.sharded.ShardedStore` uses to partition a
subscriber population across N simulated replicas.
"""

from repro.sharding.ring import (
    RING_BITS,
    RING_SIZE,
    HashRing,
    RebalancePlan,
    hash_key,
)

__all__ = [
    "HashRing",
    "RebalancePlan",
    "RING_BITS",
    "RING_SIZE",
    "hash_key",
]
