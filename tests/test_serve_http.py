"""The asyncio serving layer: HTTP parsing, the app surface, admission
control, the wall transport's fault plan, wall spans, background
jobs. All async paths run through ``asyncio.run`` inside sync tests
(the container ships no pytest-asyncio)."""

import asyncio
import json

import pytest

from repro.errors import NodeUnreachableError, PacketLossError
from repro.obs import SpanRecorder
from repro.obs.wallclock import ManualClock, WallSpanScope
from repro.sansio import Compute, Fork, Send, SpanClose, SpanOpen
from repro.serve import (
    AdmissionGate,
    AdmissionRejected,
    AppServer,
    FaultPlan,
    Request,
    RequestPipeline,
    Response,
    WallTransport,
    build_demo_world,
    create_app,
)
from repro.serve.http import (
    HttpProtocolError,
    read_request,
    write_response,
)

BOOK = "/user[@id='u1']/address-book"
PERSONAL = BOOK + "/item[@type='personal']"

PROVISION_HEADERS = {
    "x-requester": "u1",
    "x-relationship": "self",
    "x-purpose": "provision",
}


def run(coro):
    return asyncio.run(coro)


def get_json(response):
    assert response.headers["content-type"] == "application/json"
    return json.loads(response.body)


# ---------------------------------------------------------------------------
# Wire parsing
# ---------------------------------------------------------------------------

def parse_bytes(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)
    return run(go())


class TestHttpParsing:
    def test_request_line_params_and_headers(self):
        request = parse_bytes(
            b"GET /v1/query?path=/a&pattern=cached HTTP/1.1\r\n"
            b"Host: x\r\nX-Requester: app\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/v1/query"
        assert request.params == {"path": "/a", "pattern": "cached"}
        assert request.headers["x-requester"] == "app"

    def test_percent_decoding(self):
        request = parse_bytes(
            b"GET /v1/query?path=/user[@id=%27u1%27] HTTP/1.1\r\n\r\n"
        )
        assert request.params["path"] == "/user[@id='u1']"

    def test_body_by_content_length(self):
        request = parse_bytes(
            b"POST /v1/provision HTTP/1.1\r\n"
            b"Content-Length: 4\r\n\r\nabcd"
        )
        assert request.body == b"abcd"

    def test_closed_before_any_bytes_is_none(self):
        assert parse_bytes(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(HttpProtocolError):
            parse_bytes(b"NONSENSE\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(HttpProtocolError):
            parse_bytes(
                b"POST / HTTP/1.1\r\nContent-Length: many\r\n\r\n"
            )

    def test_oversized_body_rejected(self):
        with pytest.raises(HttpProtocolError) as excinfo:
            parse_bytes(
                b"POST / HTTP/1.1\r\n"
                b"Content-Length: 99999999\r\n\r\n"
            )
        assert excinfo.value.status == 413

    def test_truncated_body(self):
        with pytest.raises(HttpProtocolError):
            parse_bytes(
                b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
            )

    def test_write_response_shape(self):
        async def go():
            reader = asyncio.StreamReader()

            class _Writer:
                def __init__(self):
                    self.chunks = []
                def write(self, data):
                    self.chunks.append(data)
                async def drain(self):
                    pass

            writer = _Writer()
            await write_response(writer, Response.json({"ok": True}))
            return b"".join(writer.chunks), reader
        raw, _ = run(go())
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"connection: close" in head
        assert b"content-length: %d" % len(body) in head
        assert json.loads(body) == {"ok": True}


# ---------------------------------------------------------------------------
# The app, socket-free
# ---------------------------------------------------------------------------

class TestAppRoutes:
    def test_healthz(self):
        app = create_app()
        response = run(app.handle(Request("GET", "/healthz")))
        payload = get_json(response)
        assert payload["ok"] is True
        assert "gup.alpha.com" in payload["stores"]

    def test_unknown_route_is_404(self):
        app = create_app()
        response = run(app.handle(Request("GET", "/nope")))
        assert response.status == 404

    def test_chaining_query(self):
        app = create_app()
        response = run(app.handle(Request(
            "GET", "/v1/query", params={"path": BOOK},
        )))
        payload = get_json(response)
        assert response.status == 200
        assert "<address-book" in payload["fragment"]
        assert payload["degraded_parts"] == []

    def test_missing_path_param_is_400(self):
        app = create_app()
        response = run(app.handle(Request("GET", "/v1/query")))
        assert response.status == 400

    def test_unknown_pattern_is_400(self):
        app = create_app()
        response = run(app.handle(Request(
            "GET", "/v1/query",
            params={"path": BOOK, "pattern": "telepathy"},
        )))
        assert response.status == 400

    def test_cached_pattern_hits_second_time(self):
        app = create_app()
        async def go():
            first = await app.handle(Request(
                "GET", "/v1/query",
                params={"path": BOOK, "pattern": "cached"},
            ))
            second = await app.handle(Request(
                "GET", "/v1/query",
                params={"path": BOOK, "pattern": "cached"},
            ))
            return first, second
        first, second = run(go())
        assert not get_json(first)["cache_hit"]
        assert get_json(second)["cache_hit"]

    def test_every_response_carries_request_id(self):
        app = create_app()
        response = run(app.handle(Request("GET", "/healthz")))
        assert response.headers["x-request-id"].isdigit()

    def test_provision_then_read_back(self):
        app = create_app()
        fragment = (
            "<address-book><item type='personal'>"
            "<entry name='serve-test'><phone number='1'/></entry>"
            "</item><item type='corporate'>"
            "<entry name='corp'><phone number='2'/></entry>"
            "</item></address-book>"
        )
        async def go():
            wrote = await app.handle(Request(
                "POST", "/v1/provision", headers=PROVISION_HEADERS,
                body=json.dumps(
                    {"path": BOOK, "fragment": fragment}
                ).encode(),
            ))
            read = await app.handle(Request(
                "GET", "/v1/query", params={"path": BOOK},
            ))
            return wrote, read
        wrote, read = run(go())
        assert wrote.status == 201
        assert "serve-test" in get_json(read)["fragment"]

    def test_provision_without_context_is_403(self):
        app = create_app()
        response = run(app.handle(Request(
            "POST", "/v1/provision",
            body=json.dumps(
                {"path": BOOK, "fragment": "<address-book/>"}
            ).encode(),
        )))
        assert response.status == 403
        assert get_json(response)["error"] == "access-denied"

    def test_provision_bad_json_is_4xx_not_traceback(self):
        app = create_app()
        response = run(app.handle(Request(
            "POST", "/v1/provision", headers=PROVISION_HEADERS,
            body=b"this is not json",
        )))
        assert 400 <= response.status < 500
        assert b"Traceback" not in response.body

    def test_subscription_lifecycle(self):
        app = create_app()
        fragment = (
            "<address-book><item type='personal'>"
            "<entry name='sub'><phone number='3'/></entry></item>"
            "</address-book>"
        )
        async def go():
            created = await app.handle(Request(
                "POST", "/v1/subscriptions",
                body=json.dumps({"watch_path": BOOK}).encode(),
            ))
            sub_id = get_json(created)["id"]
            await app.handle(Request(
                "POST", "/v1/provision", headers=PROVISION_HEADERS,
                body=json.dumps(
                    {"path": BOOK, "fragment": fragment}
                ).encode(),
            ))
            app.jobs.drain_bus_once()
            polled = await app.handle(Request(
                "GET", "/v1/subscriptions/%d" % sub_id,
            ))
            cancelled = await app.handle(Request(
                "DELETE", "/v1/subscriptions/%d" % sub_id,
            ))
            gone = await app.handle(Request(
                "GET", "/v1/subscriptions/%d" % sub_id,
            ))
            return created, polled, cancelled, gone
        created, polled, cancelled, gone = run(go())
        assert created.status == 201
        deliveries = get_json(polled)["deliveries"]
        assert len(deliveries) == 1
        assert deliveries[0]["path"] == BOOK
        assert get_json(cancelled)["cancelled"] is True
        assert gone.status == 404

    def test_metrics_endpoint_prometheus_text(self):
        app = create_app()
        async def go():
            await app.handle(Request(
                "GET", "/v1/query", params={"path": BOOK},
            ))
            return await app.handle(Request("GET", "/metrics"))
        response = run(go())
        text = response.body.decode()
        assert "serve_requests" in text
        assert "server_resolves" in text

    def test_failed_store_degrades_not_500(self):
        faults = FaultPlan()
        faults.fail("gup.corp.com")
        app = create_app(world=build_demo_world(faults=faults))
        response = run(app.handle(Request(
            "GET", "/v1/query", params={"path": BOOK},
        )))
        payload = get_json(response)
        assert response.status == 200
        assert payload["degraded_parts"] == [
            BOOK + "/item[@type='corporate']"
        ]

    def test_all_stores_down_is_503(self):
        faults = FaultPlan()
        for store in (
            "gup.alpha.com", "gup.beta.com", "gup.corp.com",
        ):
            faults.fail(store)
        app = create_app(world=build_demo_world(faults=faults))
        response = run(app.handle(Request(
            "GET", "/v1/query", params={"path": BOOK},
        )))
        assert response.status == 503
        assert get_json(response)["error"] == "all-parts-failed"


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

class TestAdmission:
    def test_rejects_beyond_queue(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, max_queued=0)
            release = asyncio.Event()

            async def occupant():
                async with gate:
                    await release.wait()

            task = asyncio.ensure_future(occupant())
            await asyncio.sleep(0)  # occupant takes the slot
            with pytest.raises(AdmissionRejected):
                await gate.acquire()
            release.set()
            await task
            # Slot free again: admission works.
            await gate.acquire()
            gate.release()
            return gate
        gate = run(go())
        assert gate.metrics.counter("serve.rejected").value == 1
        assert gate.metrics.counter("serve.admitted").value == 2

    def test_queue_admits_when_slot_frees(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, max_queued=4)
            release = asyncio.Event()
            order = []

            async def occupant():
                async with gate:
                    order.append("first")
                    await release.wait()

            async def waiter():
                async with gate:
                    order.append("second")

            first = asyncio.ensure_future(occupant())
            await asyncio.sleep(0)
            second = asyncio.ensure_future(waiter())
            await asyncio.sleep(0)
            assert gate.queued == 1
            release.set()
            await asyncio.gather(first, second)
            return order
        assert run(go()) == ["first", "second"]

    def test_shed_request_gets_503_with_retry_after(self):
        async def go():
            gate = AdmissionGate(
                max_inflight=1, max_queued=0, retry_after_s=7.0
            )
            pipeline = RequestPipeline(gate=gate)
            release = asyncio.Event()

            async def slow_handler(request):
                await release.wait()
                return Response.json({"ok": True})

            handler = pipeline.wrap(slow_handler)
            first = asyncio.ensure_future(
                handler(Request("GET", "/slow"))
            )
            await asyncio.sleep(0)
            shed = await handler(Request("GET", "/slow"))
            release.set()
            served = await first
            return shed, served
        shed, served = run(go())
        assert shed.status == 503
        assert shed.headers["retry-after"] == "7"
        assert served.status == 200

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionGate(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionGate(max_queued=-1)


# ---------------------------------------------------------------------------
# WallTransport faults mirror Network semantics
# ---------------------------------------------------------------------------

class TestWallTransportFaults:
    def _run_program(self, program, faults=None):
        transport = WallTransport({}, faults=faults)
        return run(transport.run(program))

    def test_source_down_raises_immediately(self):
        faults = FaultPlan()
        faults.fail("a")
        def program():
            yield Send("a", "b", 10, "x")
        with pytest.raises(NodeUnreachableError, match="source 'a'"):
            self._run_program(program(), faults)

    def test_target_down_message(self):
        faults = FaultPlan()
        faults.fail("b")
        def program():
            yield Send("a", "b", 10, "x")
        with pytest.raises(NodeUnreachableError, match="node 'b'"):
            self._run_program(program(), faults)

    def test_forced_drop_budget_shared_both_directions(self):
        faults = FaultPlan()
        faults.force_drops("a", "b", 1)
        seen = []
        def program():
            try:
                yield Send("b", "a", 10, "reverse direction")
            except PacketLossError as err:
                seen.append(err)
            # Budget consumed: the retry sails through.
            yield Send("a", "b", 10, "retry")
            return "ok"
        assert self._run_program(program(), faults) == "ok"
        assert len(seen) == 1

    def test_fork_runs_all_legs_and_captures(self):
        faults = FaultPlan()
        faults.fail("store-2")
        def leg(store):
            yield Send("server", store, 10, "probe")
            return store
        def program():
            outcomes = yield Fork(
                [leg("store-1"), leg("store-2"), leg("store-3")],
                capture=(NodeUnreachableError,),
            )
            return outcomes
        outcomes = self._run_program(program(), faults)
        assert outcomes[0].value == "store-1"
        assert isinstance(outcomes[1].error, NodeUnreachableError)
        assert outcomes[2].value == "store-3"

    def test_restore_heals(self):
        faults = FaultPlan()
        faults.fail("b")
        faults.restore("b")
        def program():
            yield Send("a", "b", 10, "x")
            return "ok"
        assert self._run_program(program(), faults) == "ok"

    def test_marks_feed_metrics(self):
        from repro.sansio import Mark
        transport = WallTransport({})
        def program():
            yield Mark("retry")
            yield Mark("failover")
            yield Mark("degraded", 3)
        run(transport.run(program()))
        assert transport.metrics.counter("serve.retries").value == 1
        assert transport.metrics.counter("serve.failovers").value == 1
        # One degraded *response*, whatever the part count.
        assert transport.metrics.counter(
            "serve.degraded_responses"
        ).value == 1


# ---------------------------------------------------------------------------
# Wall spans
# ---------------------------------------------------------------------------

class TestWallSpans:
    def test_nesting_and_timestamps(self):
        recorder = SpanRecorder()
        clock = ManualClock()
        scope = WallSpanScope(recorder, clock)
        outer = scope.open("outer")
        clock.advance(5.0)
        inner = scope.open("inner")
        clock.advance(2.0)
        scope.close()
        scope.close()
        assert inner.parent_id == outer.span_id
        assert outer.duration_ms == 7.0
        assert inner.start_ms == 5.0
        assert recorder.open_spans() == []

    def test_fork_child_never_closes_parent(self):
        recorder = SpanRecorder()
        clock = ManualClock()
        scope = WallSpanScope(recorder, clock)
        parent = scope.open("request")
        child = scope.fork_child()
        leg = child.open("leg")
        assert leg.parent_id == parent.span_id
        assert leg.tid != parent.tid
        child.unwind()          # closes the leg...
        assert leg.finished
        assert not parent.finished  # ...but never the borrowed parent
        scope.close()
        assert parent.finished

    def test_driver_unwinds_wall_spans_on_error(self):
        recorder = SpanRecorder()
        transport = WallTransport({}, recorder=recorder)
        def program():
            yield SpanOpen("outer")
            yield SpanOpen("inner")
            raise RuntimeError("boom")
        with pytest.raises(RuntimeError):
            run(transport.run(program()))
        assert recorder.open_spans() == []

    def test_span_close_balances(self):
        recorder = SpanRecorder()
        transport = WallTransport({}, recorder=recorder)
        def program():
            yield SpanOpen("a")
            yield Compute(1.0, "work")
            yield SpanClose()
            return "ok"
        assert run(transport.run(program())) == "ok"
        assert len(recorder.spans) == 1
        assert recorder.spans[0].finished

    def test_manual_clock_rejects_reverse(self):
        clock = ManualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)


# ---------------------------------------------------------------------------
# Background jobs
# ---------------------------------------------------------------------------

class TestBackgroundJobs:
    def test_cache_sweep_drops_expired(self):
        app = create_app(world=build_demo_world(
            ttl_ms=0.0, stale_grace_ms=0.0, with_bus=False,
        ))
        async def go():
            await app.handle(Request(
                "GET", "/v1/query",
                params={"path": BOOK, "pattern": "cached"},
            ))
            return app.jobs.sweep_cache_once()
        # A TTL-0 entry is stored but never served; the sweep is what
        # reclaims it once past TTL + grace.
        assert run(go()) == 1

    def test_jobs_start_stop(self):
        app = create_app()
        async def go():
            app.jobs.start()
            stats = app.jobs.stats()
            await app.jobs.stop()
            return stats, app.jobs.stats()
        running, stopped = run(go())
        assert set(running["running"]) == {
            "serve-bus-drain", "serve-cache-sweep",
        }
        assert stopped["running"] == []
        assert stopped["failed"] == []


# ---------------------------------------------------------------------------
# Real sockets
# ---------------------------------------------------------------------------

class TestOverRealSockets:
    def test_query_over_loopback(self):
        import urllib.request

        async def go():
            server = AppServer(create_app(), port=0)
            host, port = await server.start()

            def fetch(path):
                url = "http://%s:%d%s" % (host, port, path)
                with urllib.request.urlopen(url, timeout=5) as resp:
                    return resp.status, resp.read()

            loop = asyncio.get_running_loop()
            health = await loop.run_in_executor(
                None, fetch, "/healthz"
            )
            query = await loop.run_in_executor(
                None, fetch,
                "/v1/query?path=" + urllib.parse.quote(BOOK),
            )
            await server.stop()
            return health, query

        (h_status, h_body), (q_status, q_body) = run(go())
        assert h_status == 200
        assert json.loads(h_body)["ok"] is True
        assert q_status == 200
        assert "<address-book" in json.loads(q_body)["fragment"]
