"""Unit tests for web portal, enterprise server, presence server."""

import pytest

from repro.errors import StoreError
from repro.stores import (
    AppointmentRecord,
    ContactRecord,
    EnterpriseServer,
    PresenceServer,
    WebPortal,
)


class TestWebPortal:
    def setup_method(self):
        self.portal = WebPortal("yahoo")
        self.portal.create_account("arnaud")

    def test_duplicate_account_rejected(self):
        with pytest.raises(StoreError):
            self.portal.create_account("arnaud")

    def test_missing_account_rejected(self):
        with pytest.raises(StoreError):
            self.portal.contacts("stranger")

    def test_contact_crud(self):
        self.portal.put_contact(
            "arnaud",
            ContactRecord("1", "Bob", phones={"cell": "908-582-1111"}),
        )
        contacts = self.portal.contacts("arnaud")
        assert len(contacts) == 1
        assert contacts[0].phones["cell"] == "908-582-1111"
        self.portal.delete_contact("arnaud", "1")
        assert self.portal.contacts("arnaud") == []

    def test_bad_contact_kind_rejected(self):
        with pytest.raises(StoreError):
            ContactRecord("1", "Bob", kind="alien")

    def test_appointments_sorted_by_start(self):
        self.portal.put_appointment(
            "arnaud", AppointmentRecord("2", "2003-01-07T10:00",
                                        "2003-01-07T11:00", "late"),
        )
        self.portal.put_appointment(
            "arnaud", AppointmentRecord("1", "2003-01-06T09:00",
                                        "2003-01-06T10:00", "early"),
        )
        subjects = [a.subject for a in self.portal.appointments("arnaud")]
        assert subjects == ["early", "late"]

    def test_scores_and_bookmarks(self):
        self.portal.set_score("arnaud", "chess", 1450)
        self.portal.add_bookmark("arnaud", "b1", "http://cidr.org")
        assert self.portal.scores("arnaud") == {"chess": 1450}
        assert self.portal.bookmarks("arnaud")["b1"] == "http://cidr.org"

    def test_operation_counters(self):
        self.portal.put_contact("arnaud", ContactRecord("1", "Bob"))
        self.portal.contacts("arnaud")
        assert self.portal.writes == 1
        assert self.portal.reads == 1


class TestEnterpriseServer:
    def test_only_corporate_contacts(self):
        lucent = EnterpriseServer("intranet.lucent", company="Lucent")
        lucent.create_account("alice")
        with pytest.raises(StoreError):
            lucent.put_contact(
                "alice", ContactRecord("1", "Mom", kind="personal")
            )
        lucent.put_contact(
            "alice", ContactRecord("2", "Boss", kind="corporate")
        )
        assert len(lucent.contacts("alice")) == 1

    def test_enterprise_region(self):
        lucent = EnterpriseServer("intranet.lucent", company="Lucent")
        assert lucent.region == "enterprise"


class TestPresenceServer:
    def setup_method(self):
        self.server = PresenceServer("im.example")

    def test_default_offline(self):
        assert self.server.status("ghost") == "offline"

    def test_set_and_get(self):
        self.server.set_status("alice", "busy", "in a meeting")
        assert self.server.status("alice") == "busy"
        assert self.server.note("alice") == "in a meeting"

    def test_invalid_status_rejected(self):
        with pytest.raises(ValueError):
            self.server.set_status("alice", "bored")

    def test_push_notification_on_change(self):
        events = []
        self.server.watch("alice", lambda u, s, n: events.append((u, s)))
        self.server.set_status("alice", "available")
        self.server.set_status("alice", "away")
        assert events == [("alice", "available"), ("alice", "away")]
        assert self.server.notifications_sent == 2

    def test_no_notification_without_change(self):
        events = []
        self.server.watch("alice", lambda u, s, n: events.append(s))
        self.server.set_status("alice", "available")
        self.server.set_status("alice", "available")
        assert events == ["available"]

    def test_unwatch(self):
        events = []
        watcher = lambda u, s, n: events.append(s)  # noqa: E731
        self.server.watch("alice", watcher)
        self.server.unwatch("alice", watcher)
        self.server.set_status("alice", "busy")
        assert events == []
        assert self.server.watcher_count("alice") == 0
