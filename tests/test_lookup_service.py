"""Tests for the requirement-5 canonical lookup queries, including the
multi-user 'buddies who are available' fan-out."""

import pytest

from repro.access import RequestContext
from repro.services import ProfileLookupService
from repro.workloads import build_converged_world


@pytest.fixture()
def world():
    return build_converged_world()


@pytest.fixture()
def lookup(world):
    return ProfileLookupService(world.server, world.executor)


def buddy_ctx(requester="arnaud"):
    return RequestContext(requester, relationship="self")


class TestPresenceQuery:
    def test_retrieve_presence(self, world, lookup):
        status, trace = lookup.presence_of("arnaud", buddy_ctx())
        assert status == "available"
        assert trace.elapsed_ms > 0

    def test_presence_respects_shield(self, world, lookup):
        from repro.errors import AccessDeniedError
        with pytest.raises(AccessDeniedError):
            lookup.presence_of(
                "arnaud", RequestContext("telemarketer")
            )


class TestAppointmentsQuery:
    def test_todays_appointments(self, world, lookup):
        ctx = RequestContext("alice", relationship="self")
        appointments, _trace = lookup.appointments_on(
            "alice", "2003-01-06", ctx
        )
        assert appointments == [
            ("2003-01-06T09:00", "Staff meeting"),
        ]

    def test_other_day_empty(self, world, lookup):
        ctx = RequestContext("alice", relationship="self")
        appointments, _trace = lookup.appointments_on(
            "alice", "2003-02-14", ctx
        )
        assert appointments == []

    def test_both_calendars_merged(self, world, lookup):
        # Yahoo holds the private dinner, Lucent the staff meeting —
        # one query sees both days.
        ctx = RequestContext("alice", relationship="self")
        jan10, _ = lookup.appointments_on("alice", "2003-01-10", ctx)
        assert jan10 == [("2003-01-10T19:00", "Dinner")]


class TestAvailableBuddies:
    def test_available_buddy_found(self, world, lookup):
        available, trace = lookup.available_buddies(
            "arnaud", buddy_ctx()
        )
        assert ("alice", "Alice S.") in available
        # Paul has no presence anywhere: not listed as available.
        assert all(buddy_id != "paul" for buddy_id, _ in available)
        assert trace.hops >= 4  # list + at least one presence fetch

    def test_busy_buddy_filtered(self, world, lookup):
        world.presence.set_status("alice", "busy")
        available, _trace = lookup.available_buddies(
            "arnaud", buddy_ctx()
        )
        assert available == []

    def test_buddy_shield_applies(self, world, lookup):
        # If Alice revokes buddy access to her presence, Arnaud's
        # buddies query silently loses her (no error, no leak).
        world.server.revoke_policy("alice", "alice-buddies-presence")
        available, _trace = lookup.available_buddies(
            "arnaud", buddy_ctx()
        )
        assert available == []

    def test_no_buddy_list_user(self, world, lookup):
        from repro.errors import NoCoverageError
        with pytest.raises(NoCoverageError):
            lookup.available_buddies(
                "ghost", RequestContext("ghost", relationship="self")
            )


class TestBuddyListThroughGupster:
    def test_buddy_list_provisioning_round_trip(self, world):
        from repro.pxml import parse
        adapter = world.adapter("gup.spcs.com")
        adapter.put(
            "/user[@id='arnaud']/buddy-list",
            parse(
                "<buddy-list>"
                "<buddy id='rick'><alias>Rick</alias></buddy>"
                "</buddy-list>"
            ),
        )
        assert world.presence.buddies("arnaud") == {"rick": "Rick"}

    def test_buddy_list_export_validates(self, world):
        from repro.pxml import GUP_SCHEMA
        view = world.adapter("gup.spcs.com").export_user("arnaud")
        assert GUP_SCHEMA.validate(view) == []
        assert view.child("buddy-list") is not None
