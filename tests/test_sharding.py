"""Property tests for consistent-hash placement and the sharded store.

Pins the two guarantees :mod:`repro.sharding` advertises:

* **deterministic, balanced placement** — placement is a pure function
  of (shard ids, vnode count, key): independent of registration order,
  stable across processes (golden fixture
  ``tests/data/golden_placement.json``), and spread so no shard owns a
  wildly outsized arc;
* **minimal movement on rebalance** — growing n → n+k shards moves
  only the keys landing in the new shards' arcs (the
  :class:`~repro.sharding.RebalancePlan` describes exactly those
  ranges), and a :class:`~repro.stores.ShardedStore` rebalance neither
  loses nor duplicates a single subscriber.
"""

import json
import os

from hypothesis import given, settings, strategies as st

from repro.sharding import RING_SIZE, HashRing, hash_key
from repro.stores import ShardedStore

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "golden_placement.json"
)

shard_counts = st.integers(min_value=1, max_value=12)
keys = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1,
    max_size=16,
)


def shard_ids(count):
    return ["shard-%02d" % index for index in range(count)]


class TestPlacementProperties:
    @given(shard_counts, st.lists(keys, min_size=1, max_size=40))
    @settings(max_examples=100)
    def test_placement_is_deterministic_and_order_independent(
        self, count, sample
    ):
        ids = shard_ids(count)
        ring = HashRing(ids, vnodes=16)
        again = HashRing(list(reversed(ids)), vnodes=16)
        for key in sample:
            owner = ring.place(key)
            assert owner in ids
            assert again.place(key) == owner
            assert HashRing(ids, vnodes=16).place(key) == owner

    @given(shard_counts, keys, st.integers(min_value=1, max_value=6))
    @settings(max_examples=100)
    def test_replica_sets_are_distinct_and_owner_first(
        self, count, key, replicas
    ):
        ring = HashRing(shard_ids(count), vnodes=16)
        chosen = ring.place_n(key, replicas)
        assert len(chosen) == min(replicas, count)
        assert len(set(chosen)) == len(chosen)
        assert chosen[0] == ring.place(key)

    @given(st.integers(min_value=2, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_arcs_are_balanced(self, count):
        """More vnodes tighten the spread; at 128 vnodes no shard owns
        more than 3x its fair share of the circle (a loose bound that
        holds with huge margin in practice)."""
        ring = HashRing(shard_ids(count), vnodes=128)
        shares = ring.arc_share()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        fair = 1.0 / count
        assert max(shares.values()) < 3.0 * fair
        assert min(shares.values()) > fair / 3.0

    def test_hash_is_process_stable(self):
        # BLAKE2b, not PYTHONHASHSEED-dependent hash(): this exact
        # value must hold in every process on every platform.
        assert hash_key("u0000042") == 0xA53143983591678D
        assert 0 <= hash_key("u0000042") < RING_SIZE


class TestRebalanceProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.lists(keys, min_size=1, max_size=40, unique=True),
    )
    @settings(max_examples=100, deadline=None)
    def test_plan_predicts_every_move(self, before, after, sample):
        """A key changed owner iff the plan says so, and the plan names
        the right (from, to) pair."""
        ring = HashRing(shard_ids(before), vnodes=16)
        old = {key: ring.place(key) for key in sample}
        plan = ring.rebalance(shard_ids(after))
        for key in sample:
            new_owner = ring.place(key)
            move = plan.moves(key)
            if old[key] == new_owner:
                assert move is None
            else:
                assert move == (old[key], new_owner)

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_growth_moves_only_toward_added_shards(self, count, extra):
        """n -> n+k: every moved range lands on an added shard, and the
        moved fraction is near k/(n+k) (within a generous vnode-noise
        factor)."""
        ring = HashRing(shard_ids(count), vnodes=64)
        plan = ring.rebalance(shard_ids(count + extra))
        added = set(plan.added)
        assert len(added) == extra
        assert not plan.removed
        for _lo, _hi, frm, to in plan.moved_ranges:
            assert to in added
            assert frm not in added
        ideal = extra / (count + extra)
        assert plan.moved_fraction <= min(1.0, 2.5 * ideal)

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_shrink_moves_only_from_removed_shards(self, keep, drop):
        ring = HashRing(shard_ids(keep + drop), vnodes=64)
        plan = ring.rebalance(shard_ids(keep))
        removed = set(plan.removed)
        assert len(removed) == drop
        assert not plan.added
        for _lo, _hi, frm, to in plan.moved_ranges:
            assert frm in removed
            assert to not in removed


class TestShardedStoreRebalance:
    def _fleet(self, shards, users):
        fleet = ShardedStore("gup.pool", shards, vnodes=32)
        for index in range(users):
            fleet.add_user("sub%05d" % index, ["address-book"])
        return fleet

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=15, deadline=None)
    def test_rebalance_loses_and_duplicates_nobody(self, before, after):
        fleet = self._fleet(before, users=120)
        population = fleet.users()
        assert len(population) == 120
        fleet.rebalance(after)
        assert fleet.users() == population  # sorted; equality = no
        # loss and no duplication
        assert len(fleet) == after
        # Everybody sits where the ring now says they belong.
        for shard_id, adapter in fleet.shards.items():
            for user_id in adapter.users():
                assert fleet.shard_for(user_id) == shard_id

    def test_growth_moves_roughly_the_ideal_fraction(self):
        fleet = self._fleet(8, users=2_000)
        fleet.rebalance(10)
        fraction = fleet.migrated_users / 2_000
        ideal = 2 / 10
        assert fraction < 2.0 * ideal

    def test_written_overrides_survive_migration(self):
        from repro.pxml import element

        fleet = self._fleet(2, users=50)
        # Write an override for every subscriber, then churn the fleet.
        marker = {}
        for index, user_id in enumerate(fleet.users()):
            node = element("address-book", {"marker": str(index)})
            fleet.adapter_for(user_id).apply_component(
                user_id, "address-book", node
            )
            marker[user_id] = str(index)
        for target in (5, 3, 8, 1, 4):
            fleet.rebalance(target)
        for user_id, expected in marker.items():
            view = fleet.adapter_for(user_id).export_user(user_id)
            book = view.child("address-book")
            assert book is not None
            assert book.get("marker") == expected


class TestGoldenPlacement:
    def test_placement_matches_golden_fixture(self):
        """Placement is pinned across processes and Python versions;
        any change to the hash, vnode naming, or tie-break is a
        breaking change and must ship a regenerated fixture."""
        with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        ring = HashRing(golden["shards"], vnodes=golden["vnodes"])
        live = ring.placement_table(sorted(golden["placement"]))
        assert live == golden["placement"]
        plan = ring.rebalance(golden["rebalance"]["target_shards"])
        assert round(plan.moved_fraction, 10) == golden["rebalance"][
            "moved_fraction"
        ]
        moved = {
            key: list(plan.moves(key)) if plan.moves(key) else None
            for key in sorted(golden["placement"])
        }
        assert moved == golden["rebalance"]["moves"]
