"""Unit tests for the XPath fragment parser and Path objects."""

import pytest

from repro.errors import PathSyntaxError, UnsupportedPathError
from repro.pxml import Path, Predicate, Step, parse_path


class TestParsing:
    def test_simple_path(self):
        path = parse_path("/user/address-book")
        assert [s.name for s in path.steps] == ["user", "address-book"]
        assert path.attribute is None

    def test_predicate(self):
        path = parse_path("/user[@id='arnaud']/presence")
        assert path.steps[0].predicates[0] == Predicate("id", "arnaud")

    def test_multiple_predicates(self):
        path = parse_path("/a[@x='1'][@y='2']/b")
        assert len(path.steps[0].predicates) == 2

    def test_predicate_order_canonicalized(self):
        a = parse_path("/a[@x='1'][@y='2']")
        b = parse_path("/a[@y='2'][@x='1']")
        assert a == b
        assert hash(a) == hash(b)

    def test_double_quotes_in_predicate(self):
        path = parse_path('/a[@x="v"]')
        assert path.steps[0].predicates[0].value == "v"

    def test_wildcard_step(self):
        path = parse_path("/user/*/item")
        assert path.steps[1].is_wildcard

    def test_attribute_selector(self):
        path = parse_path("/user/device/@carrier")
        assert path.attribute == "carrier"
        assert path.depth == 2

    def test_path_accepts_path_instance(self):
        path = parse_path("/a/b")
        assert parse_path(path) is path

    def test_duplicate_identical_predicate_collapsed(self):
        path = parse_path("/a[@x='1'][@x='1']")
        assert len(path.steps[0].predicates) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "a/b",            # relative
            "/",              # empty
            "/a/",            # trailing slash
            "/a[@x]",         # predicate without value
            "/a[@x='1'",      # unterminated
            "/a/@x/b",        # attribute not last
            "/a[@x='1'][@x='2']",  # conflicting predicates
            "",
            "/º",             # non-ASCII: outside the PNode name grammar
            "/a[@é='1']",     # non-ASCII predicate attribute
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(PathSyntaxError):
            parse_path(bad)

    @pytest.mark.parametrize(
        "unsupported",
        ["//user", "/a//b", "/a[1]", "/a[position()='1']"],
    )
    def test_fragment_boundaries_rejected(self, unsupported):
        with pytest.raises(UnsupportedPathError):
            parse_path(unsupported)


class TestPathOperations:
    def test_str_round_trips(self):
        text = "/user[@id='arnaud']/address-book/item[@type='personal']"
        assert str(parse_path(text)) == text
        assert parse_path(str(parse_path(text))) == parse_path(text)

    def test_element_path_strips_attribute(self):
        path = parse_path("/a/b/@c")
        assert path.element_path() == parse_path("/a/b")

    def test_prefix(self):
        path = parse_path("/a/b/c")
        assert path.prefix(2) == parse_path("/a/b")
        with pytest.raises(ValueError):
            path.prefix(0)
        with pytest.raises(ValueError):
            path.prefix(4)

    def test_child_extension(self):
        path = parse_path("/a/b").child(Step("c"))
        assert path == parse_path("/a/b/c")

    def test_child_after_attribute_rejected(self):
        with pytest.raises(ValueError):
            parse_path("/a/@x").child(Step("c"))

    def test_with_predicate_narrows(self):
        path = parse_path("/user/address-book/item")
        narrowed = path.with_predicate(2, Predicate("type", "personal"))
        assert narrowed == parse_path(
            "/user/address-book/item[@type='personal']"
        )

    def test_user_id(self):
        assert parse_path("/user[@id='alice']/presence").user_id() == "alice"
        assert parse_path("/user/presence").user_id() is None

    def test_step_matches(self):
        step = parse_path("/item[@type='personal']").steps[0]
        assert step.matches("item", {"type": "personal", "id": "1"})
        assert not step.matches("item", {"type": "corporate"})
        assert not step.matches("entry", {"type": "personal"})

    def test_wildcard_matches_any_tag(self):
        step = parse_path("/*[@x='1']").steps[0]
        assert step.matches("anything", {"x": "1"})
        assert not step.matches("anything", {})

    def test_equality_and_hash(self):
        a = parse_path("/a/b[@t='1']")
        b = parse_path("/a/b[@t='1']")
        c = parse_path("/a/b[@t='2']")
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not a path"

    def test_requires_one_step(self):
        with pytest.raises(PathSyntaxError):
            Path(())
