"""Unit tests for devices: phones, SIM cards, PDAs, and the store
directory that regenerates Figure 5."""

import pytest

from repro.errors import StoreError
from repro.stores import (
    HLR,
    Class5Switch,
    MobilePhone,
    Pda,
    PhoneBookEntry,
    SimCard,
    SipRegistrar,
    StoreDirectory,
    WebPortal,
)


class TestMobilePhone:
    def setup_method(self):
        self.sim = SimCard("imsi-1", "9085551234", capacity=2)
        self.phone = MobilePhone(
            "alice-cell", "alice", "sprintpcs", sim=self.sim
        )

    def test_store_on_phone(self):
        self.phone.store_entry(PhoneBookEntry("1", "Bob", "908-1"))
        assert [e.name for e in self.phone.all_entries()] == ["Bob"]

    def test_store_on_sim(self):
        self.phone.store_entry(
            PhoneBookEntry("1", "Maman", "+33-1"), on_sim=True
        )
        assert "1" in self.sim.phonebook

    def test_sim_capacity_enforced(self):
        self.phone.store_entry(PhoneBookEntry("1", "A", "1"), on_sim=True)
        self.phone.store_entry(PhoneBookEntry("2", "B", "2"), on_sim=True)
        with pytest.raises(StoreError):
            self.phone.store_entry(
                PhoneBookEntry("3", "C", "3"), on_sim=True
            )

    def test_sim_update_in_place_allowed_at_capacity(self):
        self.phone.store_entry(PhoneBookEntry("1", "A", "1"), on_sim=True)
        self.phone.store_entry(PhoneBookEntry("2", "B", "2"), on_sim=True)
        self.phone.store_entry(
            PhoneBookEntry("2", "B2", "22"), on_sim=True
        )
        assert self.sim.phonebook["2"].name == "B2"

    def test_store_on_sim_without_sim(self):
        phone = MobilePhone("bare", "bob", "att")
        with pytest.raises(StoreError):
            phone.store_entry(PhoneBookEntry("1", "A", "1"), on_sim=True)

    def test_sim_swap_carries_phonebook(self):
        # The European scenario: the SIM walks between devices.
        self.phone.store_entry(
            PhoneBookEntry("1", "Maman", "+33-1"), on_sim=True
        )
        sim = self.phone.eject_sim()
        other = MobilePhone("alice-gsm", "alice", "vodafone")
        other.insert_sim(sim)
        assert [e.name for e in other.all_entries()] == ["Maman"]
        assert self.phone.all_entries() == []

    def test_sim_entries_shadow_phone_entries(self):
        self.phone.store_entry(PhoneBookEntry("1", "PhoneCopy", "1"))
        self.phone.store_entry(
            PhoneBookEntry("1", "SimCopy", "1"), on_sim=True
        )
        assert [e.name for e in self.phone.all_entries()] == ["SimCopy"]

    def test_delete_entry(self):
        self.phone.store_entry(PhoneBookEntry("1", "Bob", "908-1"))
        self.phone.delete_entry("1")
        assert self.phone.all_entries() == []
        with pytest.raises(StoreError):
            self.phone.delete_entry("1")

    def test_change_log_for_fast_sync(self):
        self.phone.store_entry(PhoneBookEntry("1", "Bob", "908-1"))
        mark = self.phone.change_counter
        self.phone.store_entry(PhoneBookEntry("2", "Carol", "908-2"))
        self.phone.delete_entry("1")
        changes = self.phone.changes_since(mark)
        assert [(op, eid) for _, op, eid in changes] == [
            ("put", "2"), ("delete", "1"),
        ]

    def test_preferences_and_wap(self):
        self.phone.set_preference("ring-tone", "nokia-tune")
        self.phone.add_wap_bookmark("b1", "wap://news")
        assert self.phone.preferences["ring-tone"] == "nokia-tune"
        assert self.phone.wap_bookmarks["b1"] == "wap://news"

    def test_power_cycle(self):
        self.phone.power_on()
        assert self.phone.powered_on
        self.phone.power_off()
        assert not self.phone.powered_on


class TestPda:
    def test_contacts_and_appointments(self):
        pda = Pda("alice-pda", "alice")
        pda.store_contact(PhoneBookEntry("1", "Bob", "908-1"))
        pda.store_appointment("a1", "2003-01-06T09:00",
                              "2003-01-06T10:00", "CIDR")
        assert "1" in pda.contacts
        assert pda.appointments["a1"][2] == "CIDR"
        assert len(pda.changes_since(0)) == 2


class TestStoreDirectory:
    def test_figure5_placement_table(self):
        directory = StoreDirectory()
        directory.add(Class5Switch("5ess"))
        directory.add(HLR("hlr", carrier="sprintpcs"))
        directory.add(SipRegistrar("registrar"))
        directory.add(WebPortal("yahoo"))
        directory.add(MobilePhone("phone", "alice", "sprintpcs"))
        table = dict(directory.placement_table())
        assert "Class5Switch" in table["PSTN"]
        assert "HLR" in table["Wireless"]
        assert "MobilePhone" in table["Wireless"]
        assert "SipRegistrar" in table["VoIP"]
        assert "WebPortal" in table["Web"]

    def test_duplicate_store_rejected(self):
        directory = StoreDirectory()
        directory.add(WebPortal("yahoo"))
        with pytest.raises(ValueError):
            directory.add(WebPortal("yahoo"))

    def test_by_network(self):
        directory = StoreDirectory()
        directory.add(WebPortal("yahoo"))
        directory.add(HLR("hlr", carrier="x"))
        assert [s.name for s in directory.by_network("Web")] == ["yahoo"]
        assert directory.get("hlr") is not None
        assert directory.get("missing") is None
