"""Property-based tests for signing, the provisioning form gate, and
schema validation of generated profiles."""

import string

from hypothesis import given, settings, strategies as st

from repro.core import QuerySigner
from repro.errors import SignatureError, StaleQueryError, ValidationError
from repro.pxml import GUP_SCHEMA
from repro.provisioning import generate_form


paths = st.sampled_from([
    "/user[@id='a']/presence",
    "/user[@id='a']/address-book",
    "/user[@id='b']/address-book/item[@type='personal']",
    "/user[@id='c']/calendar",
])
requesters = st.text(alphabet=string.ascii_lowercase, min_size=1,
                     max_size=10)
times = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)


class TestSigningProperties:
    @given(paths, requesters, times)
    @settings(max_examples=200)
    def test_sign_verify_round_trip(self, path, requester, now):
        signer = QuerySigner(secret=b"k", freshness_ms=1000.0)
        signed = signer.sign(path, requester, now)
        signer.verifier().verify(signed, now + 500.0)

    @given(paths, requesters, times, st.floats(1001.0, 1e6))
    @settings(max_examples=200)
    def test_always_stale_after_window(self, path, requester, now,
                                       extra):
        signer = QuerySigner(secret=b"k", freshness_ms=1000.0)
        signed = signer.sign(path, requester, now)
        try:
            signer.verifier().verify(signed, now + extra)
        except StaleQueryError:
            return
        raise AssertionError("stale query accepted")

    @given(paths, paths, requesters, times)
    @settings(max_examples=200)
    def test_signature_binds_the_path(self, path, other, requester,
                                      now):
        from repro.pxml import parse_path
        if parse_path(path) == parse_path(other):
            return
        signer = QuerySigner(secret=b"k")
        signed = signer.sign(path, requester, now)
        signed.path = parse_path(other)
        try:
            signer.verifier().verify(signed, now + 1.0)
        except SignatureError:
            return
        raise AssertionError("tampered path accepted")

    @given(paths, requesters, times, st.binary(min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_wrong_key_never_verifies(self, path, requester, now,
                                      other_key):
        if other_key == b"k":
            return
        signer = QuerySigner(secret=b"k")
        impostor = QuerySigner(secret=other_key)
        forged = impostor.sign(path, requester, now)
        try:
            signer.verifier().verify(forged, now + 1.0)
        except SignatureError:
            return
        raise AssertionError("forged signature accepted")


names = st.text(alphabet=string.ascii_letters + " ", min_size=1,
                max_size=20)
digits10 = st.text(alphabet=string.digits, min_size=10, max_size=10)


class TestFormGateProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 99),
                st.sampled_from(["personal", "corporate"]),
                names,
                digits10,
            ),
            max_size=6,
            unique_by=lambda entry: entry[0],
        )
    )
    @settings(max_examples=150)
    def test_valid_input_always_yields_valid_documents(self, entries):
        """Anything the form accepts validates against the schema —
        the requirement-11 'guarantee', as a property."""
        form = generate_form(GUP_SCHEMA, "address-book")
        form_entries = [
            {
                "@id": str(entry_id),
                "@type": kind,
                "name": name.strip() or "x",
                "number": "908%s" % number[:7],
                "number.@type": "cell",
            }
            for entry_id, kind, name, number in entries
        ]
        fragment = form.fill(form_entries)
        from repro.pxml import PNode
        doc = PNode("user", {"id": "u"})
        doc.append(fragment)
        assert GUP_SCHEMA.validate(doc) == []

    @given(st.sampled_from(["", "12", "abc", "999"]))
    def test_bad_phone_never_passes(self, bad_number):
        form = generate_form(GUP_SCHEMA, "address-book")
        try:
            form.fill([{"@id": "1", "number": bad_number}])
        except ValidationError:
            return
        # Empty values are allowed to be omitted; anything else must
        # have been rejected.
        assert bad_number == ""


class TestSyntheticProfilesProperty:
    @given(
        st.text(alphabet=string.ascii_lowercase + string.digits,
                min_size=1, max_size=12),
        st.lists(
            st.sampled_from(
                ["address-book", "presence", "calendar",
                 "game-scores", "devices", "preferences"]
            ),
            min_size=1, max_size=6, unique=True,
        ),
        st.integers(0, 1000),
    )
    @settings(max_examples=150)
    def test_every_generated_profile_is_schema_valid(
        self, user_id, components, seed
    ):
        from repro.workloads import SyntheticAdapter
        store = SyntheticAdapter("gup.s.com", seed=seed)
        store.add_user(user_id, components)
        view = store.export_user(user_id)
        assert GUP_SCHEMA.validate(view) == []
        # And the coverage paths it would register all parse + check.
        for path in store.coverage_paths(user_id):
            assert GUP_SCHEMA.validate_path(path) is None
