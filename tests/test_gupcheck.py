"""gupcheck (repro.analysis): fixture tests per rule, suppression
mechanics, JSON report schema, and the self-check that the shipped
source tree is clean under every rule.

Each rule gets three kinds of fixture: a snippet it must flag, a
snippet it must not flag, and a suppressed snippet (justified
``# gupcheck: ignore[rule] -- why`` comment) it must stay silent on.
"""

import json
import os
import subprocess
import sys
import textwrap

from repro.analysis import (
    ALL_RULES,
    Analyzer,
    check_source,
    default_rules,
)
from repro.analysis.framework import (
    SUPPRESSION_RULE,
    ModuleInfo,
)
from repro.analysis.rules import (
    CacheKeyScopeRule,
    DeterminismRule,
    ExceptionTotalityRule,
    LayeringRule,
    ShieldEgressRule,
    SimBlockingRule,
    SpanBalanceRule,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")


def dedent(source):
    return textwrap.dedent(source).lstrip("\n")


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------

class TestDeterminismRule:
    RELPATH = "repro/simnet/fixture.py"

    def test_flags_wall_clock_time(self):
        found = check_source(
            DeterminismRule(),
            dedent("""
                import time

                def handler():
                    return time.time()
            """),
            self.RELPATH,
        )
        assert len(found) == 1
        assert "time.time()" in found[0].message
        assert found[0].line == 4

    def test_flags_datetime_now_and_utcnow(self):
        found = check_source(
            DeterminismRule(),
            dedent("""
                from datetime import datetime

                def stamp():
                    return datetime.now(), datetime.utcnow()
            """),
            "repro/core/fixture.py",
        )
        assert len(found) == 2

    def test_flags_module_level_random(self):
        found = check_source(
            DeterminismRule(),
            dedent("""
                import random

                def jitter():
                    return random.random() + random.randint(1, 6)
            """),
            "repro/workloads/fixture.py",
        )
        assert len(found) == 2

    def test_flags_from_random_import(self):
        found = check_source(
            DeterminismRule(),
            "from random import randint\n",
            self.RELPATH,
        )
        assert len(found) == 1

    def test_allows_injected_seeded_random(self):
        found = check_source(
            DeterminismRule(),
            dedent("""
                import random

                class Churn:
                    def __init__(self, seed):
                        self._rng = random.Random(seed)

                    def next(self):
                        return self._rng.random()
            """),
            self.RELPATH,
        )
        assert found == []

    def test_out_of_scope_module_not_checked(self):
        found = check_source(
            DeterminismRule(),
            "import time\nNOW = time.time()\n",
            "repro/pxml/fixture.py",
        )
        assert found == []

    def test_suppression_with_justification_silences(self):
        found = check_source(
            DeterminismRule(),
            dedent("""
                import time

                def bench():
                    # gupcheck: ignore[determinism] -- host-time benchmark harness
                    return time.time()
            """),
            self.RELPATH,
        )
        assert found == []


# ---------------------------------------------------------------------------
# layering
# ---------------------------------------------------------------------------

class TestLayeringRule:
    RELPATH = "repro/services/fixture.py"

    def test_flags_direct_store_from_import(self):
        found = check_source(
            LayeringRule(),
            "from repro.stores.hlr import HLR\n",
            self.RELPATH,
        )
        assert len(found) == 1
        assert "repro.adapters" in found[0].message

    def test_flags_direct_store_module_import(self):
        found = check_source(
            LayeringRule(),
            "import repro.stores.hlr\n",
            "repro/core/fixture.py",
        )
        assert len(found) == 1

    def test_flags_relative_store_import(self):
        found = check_source(
            LayeringRule(),
            "from ..stores import hlr\n",
            self.RELPATH,
        )
        assert len(found) == 1

    def test_allows_adapter_import(self):
        found = check_source(
            LayeringRule(),
            "from repro.adapters.hlr_adapter import HlrAdapter\n",
            self.RELPATH,
        )
        assert found == []

    def test_allows_type_checking_import(self):
        found = check_source(
            LayeringRule(),
            dedent("""
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.stores.hlr import HLR
            """),
            self.RELPATH,
        )
        assert found == []

    def test_adapters_layer_may_import_stores(self):
        found = check_source(
            LayeringRule(),
            "from repro.stores.hlr import HLR\n",
            "repro/adapters/fixture.py",
        )
        assert found == []

    def test_suppression(self):
        found = check_source(
            LayeringRule(),
            dedent("""
                # gupcheck: ignore[layering] -- migration shim until PR N
                from repro.stores.hlr import HLR
            """),
            self.RELPATH,
        )
        assert found == []


# ---------------------------------------------------------------------------
# exception-totality
# ---------------------------------------------------------------------------

class TestExceptionTotalityRule:
    RELPATH = "repro/pxml/fixture.py"

    def test_flags_non_gup_raise(self):
        found = check_source(
            ExceptionTotalityRule(),
            dedent("""
                def parse(text):
                    raise ValueError("bad")
            """),
            self.RELPATH,
        )
        assert len(found) == 1
        assert "ValueError" in found[0].message

    def test_flags_bare_except(self):
        found = check_source(
            ExceptionTotalityRule(),
            dedent("""
                def safe(text):
                    try:
                        return int(text)
                    except:
                        return None
            """),
            self.RELPATH,
        )
        assert len(found) == 1

    def test_flags_swallowing_except_exception(self):
        found = check_source(
            ExceptionTotalityRule(),
            dedent("""
                def safe(text):
                    try:
                        return int(text)
                    except Exception:
                        return None
            """),
            self.RELPATH,
        )
        assert len(found) == 1

    def test_allows_gup_raises_and_reraise(self):
        found = check_source(
            ExceptionTotalityRule(),
            dedent("""
                from repro.errors import ParseError, ModelError

                def parse(text):
                    if not text:
                        raise ParseError("empty")
                    try:
                        return int(text)
                    except Exception:
                        raise
            """),
            self.RELPATH,
        )
        assert found == []

    def test_allows_reraising_caught_variable(self):
        found = check_source(
            ExceptionTotalityRule(),
            dedent("""
                def rethrow(err):
                    raise err
            """),
            self.RELPATH,
        )
        assert found == []

    def test_out_of_scope_module_not_checked(self):
        found = check_source(
            ExceptionTotalityRule(),
            "def f():\n    raise ValueError('x')\n",
            "repro/stores/fixture.py",
        )
        assert found == []

    def test_suppression(self):
        found = check_source(
            ExceptionTotalityRule(),
            dedent("""
                def parse(text):
                    # gupcheck: ignore[exception-totality] -- stdlib contract
                    raise KeyError(text)
            """),
            self.RELPATH,
        )
        assert found == []


# ---------------------------------------------------------------------------
# cache-key-scope
# ---------------------------------------------------------------------------

class TestCacheKeyScopeRule:
    RELPATH = "repro/core/fixture.py"

    def test_flags_unscoped_put(self):
        found = check_source(
            CacheKeyScopeRule(),
            dedent("""
                def fill(cache, path, fragment, now):
                    cache.put(path, fragment, now)
            """),
            self.RELPATH,
        )
        assert len(found) == 1
        assert "shield bypass" in found[0].message

    def test_flags_unscoped_get_and_get_stale(self):
        found = check_source(
            CacheKeyScopeRule(),
            dedent("""
                def probe(self, path, now):
                    hit = self.cache.get(path, now)
                    corpse = self.cache.get_stale(path, now)
                    return hit or corpse
            """),
            self.RELPATH,
        )
        assert len(found) == 2

    def test_flags_empty_scope_constant(self):
        found = check_source(
            CacheKeyScopeRule(),
            dedent("""
                def fill(cache, path, fragment, now):
                    cache.put(path, fragment, now, scope="")
            """),
            self.RELPATH,
        )
        assert len(found) == 1
        assert "empty scope" in found[0].message

    def test_allows_scoped_calls(self):
        found = check_source(
            CacheKeyScopeRule(),
            dedent("""
                def fill(self, path, fragment, context, now):
                    self.cache.put(
                        path, fragment, now,
                        scope=context.cache_scope(),
                    )
                    return self.cache.get(
                        path, now, scope=context.cache_scope()
                    )
            """),
            self.RELPATH,
        )
        assert found == []

    def test_allows_positional_scope(self):
        found = check_source(
            CacheKeyScopeRule(),
            dedent("""
                def probe(cache, path, now, scope):
                    return cache.get(path, now, scope)
            """),
            self.RELPATH,
        )
        assert found == []

    def test_ignores_non_cache_receivers_and_invalidate(self):
        found = check_source(
            CacheKeyScopeRule(),
            dedent("""
                def misc(self, mapping, key, cache, path):
                    value = mapping.get(key)
                    adapter = self.adapters.get(key)
                    cache.invalidate(path)
                    return value, adapter
            """),
            self.RELPATH,
        )
        assert found == []

    def test_suppression(self):
        found = check_source(
            CacheKeyScopeRule(),
            dedent("""
                def warm(cache, path, fragment, now):
                    # gupcheck: ignore[cache-key-scope] -- admin warmup, pre-shield
                    cache.put(path, fragment, now)
            """),
            self.RELPATH,
        )
        assert found == []

    def test_flags_unscoped_batch_calls(self):
        # The E19 batch path: one unscoped bulk call leaks a whole
        # batch at once, so get_many/put_many carry the same
        # obligation as their singular forms.
        found = check_source(
            CacheKeyScopeRule(),
            dedent("""
                def warm(self, paths, pairs, now):
                    hits = self.cache.get_many(paths, now)
                    self.cache.put_many(pairs, now)
                    return hits
            """),
            self.RELPATH,
        )
        assert len(found) == 2
        assert all("scope" in violation.message for violation in found)

    def test_allows_scoped_batch_calls(self):
        found = check_source(
            CacheKeyScopeRule(),
            dedent("""
                def warm(self, paths, pairs, context, now):
                    hits = self.cache.get_many(
                        paths, now, scope=context.cache_scope()
                    )
                    self.cache.put_many(
                        pairs, now, context.cache_scope()
                    )
                    return hits
            """),
            self.RELPATH,
        )
        assert found == []


# ---------------------------------------------------------------------------
# sim-blocking
# ---------------------------------------------------------------------------

class TestSimBlockingRule:
    RELPATH = "repro/simnet/fixture.py"

    def test_flags_time_sleep(self):
        found = check_source(
            SimBlockingRule(),
            dedent("""
                import time

                def handler():
                    time.sleep(0.1)
            """),
            self.RELPATH,
        )
        # both the blocking-module import and the sleep call
        assert len(found) == 2

    def test_flags_blocking_io(self):
        found = check_source(
            SimBlockingRule(),
            dedent("""
                def handler(path):
                    with open(path) as handle:
                        return handle.read()
            """),
            self.RELPATH,
        )
        assert len(found) == 1

    def test_flags_socket_import(self):
        found = check_source(
            SimBlockingRule(),
            "import socket\n",
            self.RELPATH,
        )
        assert len(found) == 1

    def test_allows_virtual_time(self):
        found = check_source(
            SimBlockingRule(),
            dedent("""
                def handler(sim, callback):
                    sim.schedule(25.0, callback)
                    return sim.now
            """),
            self.RELPATH,
        )
        assert found == []

    def test_out_of_scope_module_not_checked(self):
        found = check_source(
            SimBlockingRule(),
            "import time\n",
            "repro/workloads/fixture.py",
        )
        assert found == []

    def test_suppression(self):
        found = check_source(
            SimBlockingRule(),
            dedent("""
                def snapshot(path):
                    # gupcheck: ignore[sim-blocking] -- debug dump, not an event handler
                    return open(path)
            """),
            self.RELPATH,
        )
        assert found == []


# ---------------------------------------------------------------------------
# shield-egress
# ---------------------------------------------------------------------------

class TestShieldEgressRule:
    RELPATH = "repro/core/server.py"

    def test_flags_unshielded_cache_egress(self):
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Server:
                    def lookup(self, request, context, now):
                        fragment = self.cache.get(
                            request, now, scope=context.cache_scope()
                        )
                        return fragment
            """),
            self.RELPATH,
        )
        assert len(found) == 1
        assert "privacy-shield" in found[0].message

    def test_flags_unshielded_adapter_egress_via_helper(self):
        # Taint must flow through same-class plumbing (the fixpoint).
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Executor:
                    def _fetch(self, part):
                        adapter = self.adapters[part.store_id]
                        return adapter.get(part.path)

                    def run(self, request, context, now):
                        fragment = self._fetch(request)
                        return fragment, now
            """),
            "repro/core/query.py",
        )
        assert len(found) == 1

    def test_flags_export_user_egress(self):
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Server:
                    def dump(self, store, user_id, context):
                        view = store.export_user(user_id)
                        return view
            """),
            self.RELPATH,
        )
        assert len(found) == 1

    def test_shielded_egress_passes(self):
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Server:
                    def lookup(self, request, context, now):
                        fragment = self.cache.get(
                            request, now, scope=context.cache_scope()
                        )
                        if fragment is None:
                            return None
                        self._shield_cached(request, context)
                        return fragment

                    def _shield_cached(self, parsed, context):
                        decision = self.pep.enforce(parsed, context)
                        if not decision.permit:
                            raise RuntimeError("denied")
            """),
            self.RELPATH,
        )
        assert found == []

    def test_resolve_counts_as_sanitizer(self):
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Executor:
                    def run(self, request, context, now):
                        referral = self.server.resolve(request, context, now)
                        fragments = []
                        for part in referral.parts:
                            adapter = self.server.adapters[part.store_id]
                            fragments.append(adapter.get(part.path))
                        return fragments
            """),
            "repro/core/query.py",
        )
        assert found == []

    def test_flags_unshielded_batch_egress(self):
        # E19: a batch fan-out takes *contexts* (a batch of
        # requesters) — that is an egress surface exactly like a lone
        # ``context`` parameter, and returning adapter data without a
        # sanitizer must be flagged.
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Executor:
                    def execute_batch(self, requests, contexts, now):
                        results = []
                        for request in requests:
                            adapter = self.adapters[request.store_id]
                            results.append(adapter.get(request.path))
                        return results
            """),
            "repro/core/query.py",
        )
        assert len(found) == 1
        assert "execute_batch" in found[0].message

    def test_flags_batch_egress_via_annotation(self):
        # The batch parameter may be named anything as long as it is
        # annotated with a RequestContext container.
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Executor:
                    def fan_out(self, requests,
                                requesters: "Sequence[RequestContext]",
                                now):
                        payload = [
                            self.cache.get(request, now, scope="s")
                            for request in requests
                        ]
                        return payload
            """),
            "repro/core/query.py",
        )
        assert len(found) == 1

    def test_shielded_batch_egress_passes(self):
        # The real batch path: per-item shield recheck via the
        # sanitizing facades keeps the fan-out clean.
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Executor:
                    def execute_batch(self, requests, contexts, now):
                        results = []
                        for request, context in zip(requests, contexts):
                            hit = self.cache_lookup(request, context, now)
                            if hit is not None:
                                results.append(hit)
                                continue
                            referral = self._resolve_tracked(
                                request, context, now
                            )
                            results.append(referral)
                        return results
            """),
            "repro/core/query.py",
        )
        assert found == []

    def test_contextless_plumbing_exempt(self):
        # No requester context = not an egress surface (the cache
        # itself, _fetch_part_from, the deliberately unshielded
        # direct() baseline).
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Cacheish:
                    def get(self, path, now, scope=""):
                        entry = self.entries.get((path, scope))
                        return entry

                    def _fetch(self, part):
                        adapter = self.adapters[part.store_id]
                        return adapter.get(part.path)
            """),
            "repro/core/cache.py",
        )
        assert found == []

    def test_out_of_scope_file_not_checked(self):
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Anything:
                    def lookup(self, request, context):
                        return self.cache.get(request, 0.0)
            """),
            "repro/core/mdm.py",
        )
        assert found == []

    def test_suppression(self):
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Server:
                    def debug_peek(self, request, context, now):
                        fragment = self.cache.get(request, now, scope="x")
                        # gupcheck: ignore[shield-egress] -- operator debug tap, not client-reachable
                        return fragment
            """),
            self.RELPATH,
        )
        assert found == []

    # -- E20: bus delivery callbacks are requester egress -------------------

    BUS_RELPATH = "repro/bus/listeners.py"

    def test_flags_unshielded_bus_delivery(self):
        # A delivery batch is profile data by construction; handing a
        # delta to the subscriber callback without the shield is the
        # push-path twin of an unshielded return.
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Subscriber:
                    def _deliver_records(self, records, now, context):
                        for record in records:
                            self._on_delivery(record.value, record.at, now)
            """),
            self.BUS_RELPATH,
        )
        assert len(found) == 1
        assert "delivery" in found[0].message
        assert "_deliver_records" in found[0].message

    def test_flags_bus_log_replay_egress(self):
        # ``since`` on a log receiver is a source like a cache probe.
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Notifier:
                    def replay_to(self, cursor, context):
                        pending = self.log.since(cursor)
                        return pending
            """),
            "repro/bus/bus.py",
        )
        assert len(found) == 1

    def test_shielded_bus_delivery_passes(self):
        # The real listener: pep.enforce per delta on the path.
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Subscriber:
                    def _deliver_records(self, records, now, memo, context):
                        for record in records:
                            decision = self._pep.enforce(
                                self._request, context
                            )
                            if decision.permit:
                                self._on_delivery(
                                    record.value, record.at, now
                                )
            """),
            self.BUS_RELPATH,
        )
        assert found == []

    def test_contextless_bus_plumbing_exempt(self):
        # The wave flush hands records to listeners but acts for no
        # requester — the shield belongs to the listener's delivery.
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Bus:
                    def _flush(self):
                        for listener in self._listeners:
                            batch = self.log.since(self.cursor[listener.name])
                            listener.deliver(batch, self.now, self, {})
            """),
            "repro/bus/bus.py",
        )
        assert found == []

    def test_bus_delivery_suppression(self):
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Subscriber:
                    def _deliver_records(self, records, now, context):
                        for record in records:
                            # gupcheck: ignore[shield-egress] -- owner-only mirror feed, no third-party requester
                            self._on_delivery(record.value, record.at, now)
            """),
            self.BUS_RELPATH,
        )
        assert found == []

    def test_bus_sink_model_scoped_to_bus_modules(self):
        # Outside repro/bus/, a ``records`` parameter is not
        # pre-tainted and delivery sinks are not egress.
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Hub:
                    def _deliver_records(self, records, now, context):
                        for record in records:
                            self._on_delivery(record.value, record.at, now)
            """),
            self.RELPATH,
        )
        assert found == []

    FED_RELPATH = "repro/federation/reconciler.py"

    def test_flags_unshielded_federation_export(self):
        # An outbound sync write is a disclosure to another
        # administrative domain; skipping the shield on the export
        # path is the E22 twin of an unshielded bus delivery.
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Reconciler:
                    def _push_out(self, user_id, entry, value, at, context):
                        self.foreign.write(
                            user_id, entry.foreign_attr, value,
                            origin=self.tag, at=at,
                        )
            """),
            self.FED_RELPATH,
        )
        assert len(found) == 1
        assert "_push_out" in found[0].message

    def test_shielded_federation_export_passes(self):
        # The real export path: pep.enforce per attribute, withheld
        # values never reach the foreign write.
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Reconciler:
                    def _push_out(self, user_id, entry, value, at, context):
                        decision = self.pep.enforce(
                            entry.gup_path(user_id), context
                        )
                        if not decision.permit:
                            return False
                        self.foreign.write(
                            user_id, entry.foreign_attr, value,
                            origin=self.tag, at=at,
                        )
                        return True
            """),
            self.FED_RELPATH,
        )
        assert found == []

    def test_contextless_federation_import_exempt(self):
        # The pull path writes GUPster's own store for no requester —
        # the shield belongs where data leaves the system.
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Reconciler:
                    def _pull_in(self, user_id, entry, value, at):
                        self._note_tag(user_id, entry.gup_suffix, value)
                        self.gup.write(user_id, entry.gup_suffix, value, at=at)
            """),
            self.FED_RELPATH,
        )
        assert found == []

    def test_fed_sink_model_scoped_to_federation_modules(self):
        # Outside repro/federation/, a ``value`` parameter is not
        # pre-tainted and ``write`` is not an egress sink.
        found = check_source(
            ShieldEgressRule(),
            dedent("""
                class Server:
                    def apply(self, user_id, value, context):
                        self.store.write(user_id, value)
            """),
            self.RELPATH,
        )
        assert found == []

    def test_shipped_reconciler_export_is_shielded(self):
        # The rule holds on the real module, not just fixtures.
        path = os.path.join(
            SRC_ROOT, "repro", "federation", "reconciler.py"
        )
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        found = check_source(
            ShieldEgressRule(), source, self.FED_RELPATH
        )
        assert found == []


# ---------------------------------------------------------------------------
# span-balance
# ---------------------------------------------------------------------------

class TestSpanBalanceRule:
    RELPATH = "repro/core/fixture.py"

    def test_flags_discarded_span_handle(self):
        found = check_source(
            SpanBalanceRule(),
            dedent("""
                def lookup(trace, store):
                    trace.span("query.referral", store=store)
                    trace.hop("a", "b", 100)
            """),
            self.RELPATH,
        )
        assert len(found) == 1
        assert "discarded" in found[0].message
        assert found[0].line == 2

    def test_flags_abandoned_handle(self):
        found = check_source(
            SpanBalanceRule(),
            dedent("""
                def lookup(trace):
                    handle = trace.span("query.referral")
                    trace.hop("a", "b", 100)
            """),
            self.RELPATH,
        )
        assert len(found) == 1
        assert "`handle`" in found[0].message

    def test_flags_abandoned_recorder_start(self):
        found = check_source(
            SpanBalanceRule(),
            dedent("""
                def measure(rec):
                    span = rec.start("op", 0.0)
                    return 1
            """),
            self.RELPATH,
        )
        assert len(found) == 1

    def test_allows_with_statement(self):
        found = check_source(
            SpanBalanceRule(),
            dedent("""
                def lookup(trace, store):
                    with trace.span("query.referral", store=store):
                        trace.hop("a", "b", 100)
            """),
            self.RELPATH,
        )
        assert found == []

    def test_allows_handle_entered_later(self):
        found = check_source(
            SpanBalanceRule(),
            dedent("""
                def lookup(trace):
                    handle = trace.span("query.referral")
                    with handle as span:
                        span.set("status", "ok")
            """),
            self.RELPATH,
        )
        assert found == []

    def test_allows_explicit_finish_and_escapes(self):
        found = check_source(
            SpanBalanceRule(),
            dedent("""
                def measure(rec):
                    span = rec.start("op", 0.0)
                    rec.finish(span, 5.0)

                def direct_close(rec):
                    span = rec.start("op", 0.0)
                    span.end_ms = 5.0

                def escapes(rec):
                    span = rec.start("op", 0.0)
                    return span
            """),
            self.RELPATH,
        )
        assert found == []

    def test_ignores_re_match_span(self):
        found = check_source(
            SpanBalanceRule(),
            dedent("""
                def bounds(match):
                    match.span()
                    start_end = match.span(1)
                    return start_end
            """),
            self.RELPATH,
        )
        assert found == []

    def test_suppression(self):
        found = check_source(
            SpanBalanceRule(),
            dedent("""
                def lookup(trace):
                    # gupcheck: ignore[span-balance] -- handle closed by caller-owned registry
                    handle = trace.span("query.referral")
            """),
            self.RELPATH,
        )
        assert found == []


# ---------------------------------------------------------------------------
# suppression mechanics (Analyzer-level audit)
# ---------------------------------------------------------------------------

class TestSuppressionAudit:
    def _analyze(self, source, relpath="repro/core/fixture.py"):
        module = ModuleInfo.from_source(dedent(source), relpath)
        return Analyzer().analyze_module(module)

    def test_justified_suppression_lands_in_suppressed_report(self):
        active, suppressed = self._analyze("""
            import time

            def bench():
                # gupcheck: ignore[determinism] -- host benchmark only
                return time.time()
        """)
        assert active == []
        assert len(suppressed) == 1
        assert suppressed[0].rule == "determinism"
        assert suppressed[0].justification == "host benchmark only"

    def test_unjustified_suppression_is_a_violation(self):
        active, suppressed = self._analyze("""
            import time

            def bench():
                return time.time()  # gupcheck: ignore[determinism]
        """)
        rules = sorted(v.rule for v in active)
        # The original finding stays active AND the bad suppression is
        # flagged: silencers must say why.
        assert rules == sorted(["determinism", SUPPRESSION_RULE])
        assert suppressed == []

    def test_unknown_rule_name_is_a_violation(self):
        active, _ = self._analyze("""
            x = 1  # gupcheck: ignore[no-such-rule] -- because reasons
        """)
        assert [v.rule for v in active] == [SUPPRESSION_RULE]
        assert "no-such-rule" in active[0].message

    def test_trailing_comment_covers_its_own_line(self):
        active, suppressed = self._analyze("""
            import time

            def bench():
                return time.time()  # gupcheck: ignore[determinism] -- why not
        """)
        assert active == []
        assert len(suppressed) == 1

    def test_standalone_comment_covers_next_line_only(self):
        active, _ = self._analyze("""
            import time

            def bench():
                # gupcheck: ignore[determinism] -- first call only
                first = time.time()
                second = time.time()
                return first - second
        """)
        assert [v.rule for v in active] == ["determinism"]
        assert active[0].line == 6

    def test_suppression_for_other_rule_does_not_apply(self):
        active, _ = self._analyze("""
            import time

            def bench():
                # gupcheck: ignore[sim-blocking] -- wrong rule on purpose
                return time.time()
        """)
        assert "determinism" in [v.rule for v in active]


# ---------------------------------------------------------------------------
# report / JSON schema
# ---------------------------------------------------------------------------

class TestReportSchema:
    def _report(self, tmp_path):
        bad = tmp_path / "repro" / "simnet" / "busy.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import time\n\n\ndef handler():\n"
            "    time.sleep(1)\n    return time.time()\n",
            encoding="utf-8",
        )
        return Analyzer().analyze_paths([str(tmp_path)])

    def test_json_schema(self, tmp_path):
        report = self._report(tmp_path)
        data = json.loads(report.to_json())
        assert data["gupcheck"] == 2
        assert data["ok"] is False
        assert data["files_scanned"] == 1
        assert set(data["rules"]) == {
            rule_class.name for rule_class in ALL_RULES
        }
        assert data["suppressed"] == []
        assert data["baselined"] == []
        assert data["errors"] == []
        assert len(data["violations"]) >= 2
        for violation in data["violations"]:
            assert set(violation) == {
                "rule", "path", "line", "col", "message",
                "severity", "fingerprint",
            }
            assert isinstance(violation["line"], int)
            assert violation["severity"] in ("error", "warning")
            assert violation["path"] == "repro/simnet/busy.py"
        rules_hit = {v["rule"] for v in data["violations"]}
        assert {"determinism", "sim-blocking"} <= rules_hit

    def test_unparseable_file_reported_not_crashing(self, tmp_path):
        broken = tmp_path / "repro" / "core" / "broken.py"
        broken.parent.mkdir(parents=True)
        broken.write_text("def (:\n", encoding="utf-8")
        report = Analyzer().analyze_paths([str(tmp_path)])
        assert not report.ok
        assert len(report.errors) == 1

    def test_rule_names_unique_and_kebab(self):
        names = [rule.name for rule in default_rules()]
        assert len(names) == len(set(names)) == len(ALL_RULES)
        for name in names:
            assert name == name.lower()
            assert " " not in name


# ---------------------------------------------------------------------------
# self-check: the shipped tree is clean; the CLI agrees
# ---------------------------------------------------------------------------

class TestSelfCheck:
    def test_source_tree_is_clean(self):
        report = Analyzer().analyze_paths([SRC_ROOT])
        assert report.errors == []
        assert report.violations == [], "\n".join(
            str(v) for v in report.violations
        )
        # Every scanned file parsed, and the scan actually saw the tree.
        assert report.files_scanned >= 60

    def test_cli_exits_zero_on_clean_tree(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--json", SRC_ROOT],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        data = json.loads(proc.stdout)
        assert data["ok"] is True

    def test_cli_lists_rules(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        )
        assert proc.returncode == 0
        for rule_class in ALL_RULES:
            assert rule_class.name in proc.stdout
