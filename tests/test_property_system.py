"""Property-based tests for system invariants: coverage resolution,
sync convergence, cache correctness, privacy-shield soundness."""

import string

from hypothesis import given, settings, strategies as st

from repro.access import (
    PolicyDecisionPoint,
    PolicyRule,
    RequestContext,
    relationship_in,
)
from repro.core import ComponentCache, CoverageMap
from repro.pxml import PNode, subtree_covers, subtree_overlaps
from repro.sync import Reconciler, SyncEndpoint, SyncSession

components = st.sampled_from(
    ["address-book", "presence", "calendar", "game-scores", "devices"]
)
user_ids = st.sampled_from(["u1", "u2", "u3"])
store_ids = st.sampled_from(["s1", "s2", "s3", "s4"])


@st.composite
def registrations(draw):
    user = draw(user_ids)
    component = draw(components)
    slice_pred = draw(
        st.one_of(
            st.none(),
            st.sampled_from(
                ["/item[@type='personal']", "/item[@type='corporate']"]
            ),
        )
    )
    path = "/user[@id='%s']/%s" % (user, component)
    if component == "address-book" and slice_pred:
        path += slice_pred
    return path, draw(store_ids)


class TestCoverageProperties:
    @given(st.lists(registrations(), max_size=12), user_ids, components)
    @settings(max_examples=200)
    def test_resolution_is_sound_and_complete(
        self, regs, user, component
    ):
        """Every store in `full` covers the request; every registered
        overlapping entry appears in full or partial."""
        cov = CoverageMap()
        for path, store in regs:
            cov.register(path, store)
        request = "/user[@id='%s']/%s" % (user, component)
        resolution = cov.resolve(request)
        for path, _stores in resolution.full:
            assert subtree_covers(path, request)
        for path, _stores in resolution.partial:
            assert subtree_overlaps(path, request)
            assert not subtree_covers(path, request)
        # Completeness: every overlapping registration is reported.
        for path, store in regs:
            if subtree_overlaps(path, request):
                reported = [
                    stores
                    for reported_path, stores in (
                        resolution.full + resolution.partial
                    )
                    if reported_path == cov.resolve(path).request
                ]
                assert any(store in stores for stores in reported)

    @given(st.lists(registrations(), min_size=1, max_size=12))
    @settings(max_examples=100)
    def test_unregister_store_is_total(self, regs):
        cov = CoverageMap()
        for path, store in regs:
            cov.register(path, store)
        victim = regs[0][1]
        cov.unregister_store(victim)
        assert victim not in cov.stores()
        for path, _store in regs:
            assert victim not in cov.stores_for(path)


def item(item_id, name):
    node = PNode("item", {"id": item_id})
    node.append(PNode("name", text=name))
    return node


@st.composite
def edit_scripts(draw):
    """A random interleaving of edits on two replicas."""
    ops = []
    for seq in range(draw(st.integers(0, 10))):
        side = draw(st.sampled_from(["client", "server"]))
        item_id = str(draw(st.integers(0, 4)))
        name = draw(
            st.text(alphabet=string.ascii_lowercase, min_size=1,
                    max_size=6)
        )
        ops.append((side, item_id, name, float(seq)))
    return ops


class TestSyncConvergence:
    @given(
        edit_scripts(),
        st.sampled_from(
            ["client-wins", "server-wins", "last-writer-wins", "merge"]
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_replicas_converge_after_sync(self, script, policy):
        client = SyncEndpoint("client")
        server = SyncEndpoint("server")
        session = SyncSession(client, server, Reconciler(policy))
        session.run(now=0.0)  # establish anchors
        for side, item_id, name, at in script:
            endpoint = client if side == "client" else server
            endpoint.put_item(item(item_id, name), now=at)
        session.run(now=100.0)
        assert client.item_ids() == server.item_ids()
        for item_id in client.item_ids():
            assert client.item(item_id).deep_equal(server.item(item_id))

    @given(edit_scripts())
    @settings(max_examples=100, deadline=None)
    def test_sync_is_quiescent(self, script):
        """A second sync right after the first moves nothing."""
        client = SyncEndpoint("client")
        server = SyncEndpoint("server")
        session = SyncSession(client, server)
        for side, item_id, name, at in script:
            endpoint = client if side == "client" else server
            endpoint.put_item(item(item_id, name), now=at)
        session.run(now=100.0)
        report = session.run(now=101.0)
        assert report.sent_to_client == 0
        assert report.sent_to_server == 0


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(
                user_ids, components, st.floats(0, 1000),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=100)
    def test_cache_never_serves_expired(self, accesses):
        cache = ComponentCache(capacity=8, default_ttl_ms=100)
        stored_at = {}
        for user, component, now in sorted(
            accesses, key=lambda entry: entry[2]
        ):
            path = "/user[@id='%s']/%s" % (user, component)
            hit = cache.get(path, now, scope="prop.test")
            if hit is not None:
                assert now - stored_at[path] <= 100
            fragment = PNode("user", {"id": user})
            fragment.append(PNode(component))
            cache.put(path, fragment, now, scope="prop.test")
            stored_at[path] = now

    @given(st.integers(1, 8), st.integers(1, 30))
    def test_capacity_respected(self, capacity, inserts):
        cache = ComponentCache(capacity=capacity, default_ttl_ms=1e9)
        for index in range(inserts):
            cache.put(
                "/user[@id='u%d']/presence" % index,
                PNode("presence"), now=float(index),
                scope="prop.test",
            )
        assert len(cache) <= capacity


class TestPolicySoundness:
    @given(
        st.sampled_from(
            ["family", "boss", "co-worker", "buddy", "third-party"]
        ),
        st.integers(0, 23),
        st.integers(0, 6),
    )
    @settings(max_examples=200)
    def test_grants_always_within_request(
        self, relationship, hour, weekday
    ):
        """Whatever the context, every permitted path lies inside the
        requested region (the shield can narrow, never widen)."""
        pdp = PolicyDecisionPoint()
        rules = [
            PolicyRule(
                "u", "/user[@id='u']/address-book", "permit",
                relationship_in("family"),
            ),
            PolicyRule(
                "u",
                "/user[@id='u']/address-book/item[@type='personal']",
                "permit", relationship_in("buddy"),
            ),
            PolicyRule(
                "u", "/user[@id='u']/presence", "deny",
                relationship_in("third-party"),
            ),
        ]
        request = "/user[@id='u']/address-book"
        ctx = RequestContext(
            "req", relationship=relationship, hour=hour,
            weekday=weekday,
        )
        decision = pdp.decide(rules, request, ctx)
        for permitted in decision.permitted_paths:
            assert subtree_covers(request, permitted) or (
                subtree_overlaps(request, permitted)
            )

    @given(
        st.sampled_from(
            ["family", "boss", "co-worker", "buddy", "third-party"]
        )
    )
    def test_deny_rule_always_blocks_its_region(self, relationship):
        pdp = PolicyDecisionPoint()
        rules = [
            PolicyRule("u", "/user[@id='u']/presence", "permit"),
            PolicyRule("u", "/user[@id='u']/presence", "deny"),
        ]
        decision = pdp.decide(
            rules, "/user[@id='u']/presence",
            RequestContext("req", relationship=relationship),
        )
        assert not decision.permit
