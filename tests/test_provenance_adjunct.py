"""Unit tests for the Section 7 extensions: data provenance tracking
and the Schema Adjunct Framework."""

import pytest

from repro.access import (
    PolicyRule,
    RequestContext,
    relationship_in,
)
from repro.core import ProvenanceTracker, SourceAnnotator
from repro.errors import AccessDeniedError, PXMLError
from repro.pxml import GUP_ADJUNCT, SchemaAdjunct, parse
from repro.workloads import build_converged_world


BOOK = "/user[@id='arnaud']/address-book"
PRESENCE = "/user[@id='arnaud']/presence"


class TestProvenanceLedger:
    def setup_method(self):
        self.world = build_converged_world(split_address_book=True)
        self.tracker = ProvenanceTracker()
        self.annotator = SourceAnnotator()
        self.world.executor.provenance = self.tracker
        self.world.executor.annotator = self.annotator

    def test_resolve_recorded(self):
        ctx = RequestContext("arnaud", relationship="self")
        self.world.executor.referral("client-app", BOOK, ctx, now=5.0)
        records = self.tracker.disclosures_for("arnaud", "address-book")
        assert len(records) == 1
        record = records[0]
        assert record.requester == "arnaud"
        assert record.granted
        assert record.at == 5.0
        assert "gup.yahoo.com" in record.stores
        assert "gup.lucent.com" in record.stores

    def test_denial_recorded(self):
        with pytest.raises(AccessDeniedError):
            self.world.executor.referral(
                "client-app", PRESENCE, RequestContext("telemarketer")
            )
        denied = self.tracker.denied_attempts("arnaud")
        assert len(denied) == 1
        assert denied[0].requester == "telemarketer"

    def test_requester_counts(self):
        ctx_self = RequestContext("arnaud", relationship="self")
        ctx_mom = RequestContext("mom", relationship="family")
        self.world.executor.referral("client-app", BOOK, ctx_self)
        self.world.executor.referral("client-app", BOOK, ctx_self)
        self.world.executor.referral("client-app", BOOK, ctx_mom)
        counts = self.tracker.requesters_of("arnaud")
        assert counts == {"arnaud": 2, "mom": 1}

    def test_component_filter(self):
        ctx = RequestContext("arnaud", relationship="self")
        self.world.executor.referral("client-app", BOOK, ctx)
        self.world.executor.referral("client-app", PRESENCE, ctx)
        assert len(self.tracker.disclosures_for("arnaud")) == 2
        assert len(
            self.tracker.disclosures_for("arnaud", "presence")
        ) == 1

    def test_update_recorded(self):
        ctx = RequestContext(
            "arnaud", relationship="self", purpose="provision"
        )
        self.world.executor.provision(
            "client-app", BOOK, parse("<address-book/>"), ctx
        )
        records = self.tracker.disclosures_for("arnaud", "address-book")
        assert any(r.operation == "update" for r in records)

    def test_other_users_isolated(self):
        ctx = RequestContext("arnaud", relationship="self")
        self.world.executor.referral("client-app", BOOK, ctx)
        assert self.tracker.disclosures_for("alice") == []


class TestSourceAnnotation:
    def setup_method(self):
        self.world = build_converged_world(split_address_book=True)
        self.annotator = SourceAnnotator()
        self.world.executor.annotator = self.annotator

    def fetch_book(self):
        ctx = RequestContext("arnaud", relationship="self")
        fragment, _trace = self.world.executor.referral(
            "client-app", BOOK, ctx
        )
        return fragment

    def test_merged_items_know_their_store(self):
        fragment = self.fetch_book()
        book = fragment.child("address-book")
        origins = {
            item.attrs["type"]: self.annotator.origin_of(item)
            for item in book.children
        }
        assert origins["personal"] == "gup.yahoo.com"
        assert origins["corporate"] == "gup.lucent.com"

    def test_sources_of_covers_fragment(self):
        fragment = self.fetch_book()
        sources = self.annotator.sources_of(fragment)
        assert any("yahoo" in s for s in sources.values())
        assert any("lucent" in s for s in sources.values())

    def test_redistribution_conflict_detected(self):
        """Corporate items came from Lucent; Lucent's access rules do
        not allow family requesters — redistributing the merged book
        to mom must flag the corporate elements."""
        fragment = self.fetch_book()
        lucent_rules = [
            PolicyRule(
                "arnaud",
                BOOK + "/item[@type='corporate']",
                "permit",
                relationship_in("co-worker", "boss"),
            ),
        ]
        yahoo_rules = [
            PolicyRule(
                "arnaud",
                BOOK + "/item[@type='personal']",
                "permit",
                relationship_in("family", "buddy"),
            ),
        ]
        mom = RequestContext("mom", relationship="family")
        conflicts = self.annotator.redistribution_conflicts(
            fragment.child("address-book"),
            {
                "gup.lucent.com": lucent_rules,
                "gup.yahoo.com": yahoo_rules,
            },
            mom,
        )
        conflict_stores = {store for _loc, store in conflicts}
        assert conflict_stores == {"gup.lucent.com"}
        # A co-worker sees no conflicts on the corporate side.
        coworker = RequestContext(
            "bob", relationship="co-worker", hour=11, weekday=1
        )
        conflicts = self.annotator.redistribution_conflicts(
            fragment.child("address-book"),
            {"gup.lucent.com": lucent_rules},
            coworker,
        )
        assert conflicts == []


class TestSchemaAdjunct:
    def test_most_specific_region_wins(self):
        adjunct = SchemaAdjunct()
        adjunct.attach("/user", "cache-ttl-ms", 60_000.0)
        adjunct.attach("/user/presence", "cache-ttl-ms", 2_000.0)
        assert adjunct.property_for(
            "/user[@id='a']/presence", "cache-ttl-ms"
        ) == 2_000.0
        assert adjunct.property_for(
            "/user[@id='a']/calendar", "cache-ttl-ms"
        ) == 60_000.0

    def test_predicate_specificity(self):
        adjunct = SchemaAdjunct()
        adjunct.attach("/user/address-book", "sensitivity", "normal")
        adjunct.attach(
            "/user/address-book/item[@type='personal']",
            "sensitivity", "private",
        )
        assert adjunct.property_for(
            "/user[@id='a']/address-book/item[@type='personal']",
            "sensitivity",
        ) == "private"
        assert adjunct.property_for(
            "/user[@id='a']/address-book/item[@type='corporate']",
            "sensitivity",
        ) == "normal"

    def test_default_when_no_region_covers(self):
        adjunct = SchemaAdjunct()
        adjunct.attach("/user/wallet", "cache-ttl-ms", 0.0)
        assert adjunct.property_for(
            "/other[@id='a']/thing", "cache-ttl-ms", default=-1
        ) == -1

    def test_attach_rejects_attribute_regions(self):
        with pytest.raises(PXMLError):
            SchemaAdjunct().attach("/user/device/@carrier", "x", 1)

    def test_reattach_replaces(self):
        adjunct = SchemaAdjunct()
        adjunct.attach("/user", "reconcile", "merge")
        adjunct.attach("/user", "reconcile", "server-wins")
        assert adjunct.property_for(
            "/user[@id='a']/presence", "reconcile"
        ) == "server-wins"

    def test_properties_at(self):
        props = GUP_ADJUNCT.properties_at("/user[@id='a']/wallet")
        assert props["cache-ttl-ms"] == 0.0
        assert props["sensitivity"] == "restricted"
        assert props["reconcile"] == "server-wins"

    def test_regions_listing(self):
        assert "/user/presence" in GUP_ADJUNCT.regions("cache-ttl-ms")


class TestAdjunctDrivenCaching:
    def test_volatile_component_gets_short_ttl(self):
        from repro.pxml import build_gup_adjunct

        world = build_converged_world()
        world.server.adjunct = build_gup_adjunct()
        ctx = RequestContext("arnaud", relationship="self")
        # presence TTL is 2s per the adjunct.
        world.executor.cached("client-app", PRESENCE, ctx, now=0.0)
        _f, _t, hit = world.executor.cached(
            "client-app", PRESENCE, ctx, now=1_000.0
        )
        assert hit
        _f, _t, hit = world.executor.cached(
            "client-app", PRESENCE, ctx, now=5_000.0
        )
        assert not hit  # expired at 2s, far before the 60s default

    def test_wallet_never_cached(self):
        from repro.pxml import PNode, build_gup_adjunct
        from repro.core import GupsterServer, QueryExecutor
        from repro.core.cache import ComponentCache
        from repro.simnet import Network
        from repro.workloads import SyntheticAdapter

        network = Network(seed=9)
        network.add_node("gupster")
        network.add_node("client")
        network.add_node("gup.s.com")
        server = GupsterServer(
            "gupster", cache=ComponentCache(),
            enforce_policies=False, adjunct=build_gup_adjunct(),
        )
        store = SyntheticAdapter("gup.s.com")
        store.add_user("u1", ["preferences"])
        # Hand-register a wallet component via a written fragment.
        wallet = PNode("wallet")
        wallet.append(PNode("card", {"id": "c1"}))
        store.apply_component("u1", "preferences", PNode("preferences"))
        server.join(store)
        server.register_component("/user[@id='u1']/wallet", "gup.s.com")
        store._holdings["u1"] = ("preferences", "devices")  # not used
        executor = QueryExecutor(network, server)
        assert server.cache_ttl_for("/user[@id='u1']/wallet") == 0.0
        assert server.cache_ttl_for(
            "/user[@id='u1']/presence"
        ) == 2_000.0
