"""Tests for find_single_source (Section 7) and adjunct-driven
reconciliation defaults."""

from repro.core import GupsterServer
from repro.pxml import build_gup_adjunct
from repro.workloads import SyntheticAdapter, build_converged_world


class TestFindSingleSource:
    def setup_method(self):
        self.server = GupsterServer("g", enforce_policies=False)
        full = SyntheticAdapter("gup.full.com")
        full.add_user("u", ["address-book", "presence", "calendar"])
        partial = SyntheticAdapter("gup.partial.com")
        partial.add_user("u", ["address-book"])
        self.server.join(full)
        self.server.join(partial)

    def test_single_store_covering_all(self):
        source = self.server.find_single_source(
            ["/user[@id='u']/address-book", "/user[@id='u']/presence"]
        )
        assert source == "gup.full.com"

    def test_no_single_source(self):
        other = SyntheticAdapter("gup.other.com")
        other.add_user("u", ["devices"])
        self.server.join(other)
        assert self.server.find_single_source(
            ["/user[@id='u']/devices", "/user[@id='u']/presence"]
        ) == "gup.full.com" or True
        # devices lives only at gup.other.com, presence only at
        # gup.full.com: no single source.
        assert self.server.find_single_source(
            ["/user[@id='u']/devices", "/user[@id='u']/presence"]
        ) is None

    def test_uncovered_path_yields_none(self):
        assert self.server.find_single_source(
            ["/user[@id='u']/wallet"]
        ) is None

    def test_empty_request_list(self):
        assert self.server.find_single_source([]) is None

    def test_reachme_sources_in_paper_world(self):
        world = build_converged_world()
        # No single store holds everything reach-me needs — which is
        # exactly why GUPster exists.
        needed = [
            "/user[@id='alice']/presence",
            "/user[@id='alice']/location",
            "/user[@id='alice']/calendar",
        ]
        assert world.server.find_single_source(needed) is None
        # But presence+location share the carrier.
        assert world.server.find_single_source(
            needed[:2]
        ) == "gup.spcs.com"


class TestAdjunctReconciliationDefault:
    def test_sync_uses_adjunct_policy(self):
        from repro.services import RoamingProfileService

        world = build_converged_world()
        world.server.adjunct = build_gup_adjunct()
        service = RoamingProfileService(world.server, world.executor)
        report, _trace = service.synchronize_address_book(
            "alice", "gup.device.alice"
        )
        session = service._sessions[("alice", "gup.device.alice")]
        # /user address-book falls under the adjunct's default region
        # ('merge' at /user).
        assert session.reconciler.policy == "merge"

    def test_explicit_policy_still_wins(self):
        from repro.services import RoamingProfileService

        world = build_converged_world()
        world.server.adjunct = build_gup_adjunct()
        service = RoamingProfileService(world.server, world.executor)
        service.synchronize_address_book(
            "alice", "gup.device.alice", policy="client-wins"
        )
        session = service._sessions[("alice", "gup.device.alice")]
        assert session.reconciler.policy == "client-wins"
