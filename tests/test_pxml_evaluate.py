"""Unit tests for XPath-fragment evaluation and subtree extraction."""

from repro.pxml import (
    PNode,
    evaluate,
    evaluate_first,
    evaluate_values,
    exists,
    extract,
    parse,
)

DOC = """
<user id='arnaud'>
  <address-book>
    <item id='1' type='personal'><name>Bob</name></item>
    <item id='2' type='corporate'><name>Carol</name></item>
    <item id='3' type='personal'><name>Dave</name></item>
  </address-book>
  <presence><status>available</status></presence>
  <devices>
    <device id='d1' type='cell-phone' carrier='sprintpcs'/>
    <device id='d2' type='gsm-phone' carrier='vodafone'/>
  </devices>
</user>
"""


def doc():
    return parse(DOC)


class TestEvaluate:
    def test_root_step_matches_root(self):
        assert len(evaluate(doc(), "/user")) == 1

    def test_root_predicate(self):
        assert evaluate(doc(), "/user[@id='arnaud']")
        assert evaluate(doc(), "/user[@id='rick']") == []

    def test_child_selection(self):
        items = evaluate(doc(), "/user/address-book/item")
        assert len(items) == 3

    def test_predicate_filters(self):
        items = evaluate(
            doc(), "/user/address-book/item[@type='personal']"
        )
        assert [i.attrs["id"] for i in items] == ["1", "3"]

    def test_wildcard_step(self):
        nodes = evaluate(doc(), "/user/*")
        assert [n.tag for n in nodes] == [
            "address-book", "presence", "devices",
        ]

    def test_no_match_returns_empty(self):
        assert evaluate(doc(), "/user/calendar") == []
        assert evaluate(doc(), "/other") == []

    def test_evaluate_first(self):
        first = evaluate_first(doc(), "/user/address-book/item")
        assert first.attrs["id"] == "1"
        assert evaluate_first(doc(), "/user/nothing") is None


class TestEvaluateValues:
    def test_attribute_values(self):
        carriers = evaluate_values(doc(), "/user/devices/device/@carrier")
        assert carriers == ["sprintpcs", "vodafone"]

    def test_attribute_missing_skipped(self):
        root = parse("<user><device id='1'/><device/></user>")
        assert evaluate_values(root, "/user/device/@id") == ["1"]

    def test_element_path_returns_text(self):
        values = evaluate_values(doc(), "/user/presence/status")
        assert values == ["available"]

    def test_non_text_element_yields_empty_string(self):
        assert evaluate_values(doc(), "/user/presence") == [""]


class TestExists:
    def test_exists_element(self):
        assert exists(doc(), "/user/presence")
        assert not exists(doc(), "/user/wallet")

    def test_exists_attribute(self):
        assert exists(doc(), "/user/devices/device/@carrier")
        assert not exists(doc(), "/user/devices/device/@missing")


class TestExtract:
    def test_extract_preserves_spine_attributes(self):
        fragment = extract(doc(), "/user/presence")
        assert fragment.tag == "user"
        assert fragment.attrs["id"] == "arnaud"
        assert [c.tag for c in fragment.children] == ["presence"]

    def test_extract_subtree_is_complete(self):
        fragment = extract(doc(), "/user/address-book")
        book = fragment.child("address-book")
        assert len(book.children) == 3
        assert book.children[0].child("name").text == "Bob"

    def test_extract_filters_siblings(self):
        fragment = extract(
            doc(), "/user/address-book/item[@type='personal']"
        )
        book = fragment.child("address-book")
        assert [i.attrs["id"] for i in book.children] == ["1", "3"]

    def test_extract_no_match_returns_none(self):
        assert extract(doc(), "/user/calendar") is None

    def test_extract_is_a_copy(self):
        root = doc()
        fragment = extract(root, "/user/presence")
        fragment.child("presence").child("status").text = "changed"
        assert (
            root.child("presence").child("status").text == "available"
        )

    def test_extract_root(self):
        fragment = extract(doc(), "/user")
        assert fragment.deep_equal(doc())
