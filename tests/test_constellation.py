"""Unit tests for the mirrored GUPster constellation with real
asynchronous replication (Section 4.2)."""

import pytest

from repro.access import RequestContext
from repro.core import MirrorConstellation
from repro.errors import GupsterError, NoCoverageError
from repro.simnet import Network
from repro.workloads import SyntheticAdapter


PRESENCE = "/user[@id='u1']/presence"


def ctx():
    return RequestContext("app", relationship="third-party")


def build(n_mirrors=3):
    network = Network(seed=21)
    network.add_node("client", region="internet")
    mirrors = ["mdm.%d" % index for index in range(n_mirrors)]
    for mirror in mirrors:
        network.add_node(mirror, region="core")
    constellation = MirrorConstellation(network, mirrors)
    store = SyntheticAdapter("gup.store.com")
    network.add_node("gup.store.com", region="internet")
    store.add_user("u1", ["presence", "address-book"])
    return network, constellation, store


class TestReplication:
    def test_registration_visible_at_home_mirror_immediately(self):
        _network, constellation, store = build()
        constellation.join_store(store, via="mdm.0")
        referral, _trace, used = constellation.resolve(
            "client", PRESENCE, ctx(), prefer="mdm.0"
        )
        assert referral.parts and used == "mdm.0"

    def test_other_mirrors_stale_until_replication(self):
        _network, constellation, store = build()
        constellation.join_store(store, via="mdm.0")
        assert constellation.stale_mirrors(PRESENCE) == [
            "mdm.1", "mdm.2",
        ]
        with pytest.raises(NoCoverageError):
            constellation.resolve(
                "client", PRESENCE, ctx(), prefer="mdm.1"
            )
        constellation.replicate()
        assert constellation.stale_mirrors(PRESENCE) == []
        referral, _trace, used = constellation.resolve(
            "client", PRESENCE, ctx(), prefer="mdm.1"
        )
        assert referral.parts and used == "mdm.1"

    def test_replication_converges_all_mirrors(self):
        _network, constellation, store = build(n_mirrors=4)
        constellation.join_store(store, via="mdm.2")
        assert not constellation.consistent()
        constellation.replicate()
        assert constellation.consistent()

    def test_replication_idempotent(self):
        _network, constellation, store = build()
        constellation.join_store(store, via="mdm.0")
        first = constellation.replicate()
        second = constellation.replicate()
        assert first > 0
        assert second == 0  # nothing new to ship

    def test_writes_at_different_mirrors_merge(self):
        _network, constellation, store = build()
        other = SyntheticAdapter("gup.other.com")
        other.add_user("u1", ["presence"])
        constellation.join_store(store, via="mdm.0")
        constellation.join_store(other, via="mdm.1")
        constellation.replicate()
        # An echo round may be needed for entries learned second-hand.
        constellation.replicate()
        assert constellation.consistent()
        referral, _trace, _used = constellation.resolve(
            "client", PRESENCE, ctx(), prefer="mdm.2"
        )
        stores = referral.parts[0].store_ids
        assert sorted(stores) == ["gup.other.com", "gup.store.com"]

    def test_unregistration_propagates(self):
        _network, constellation, store = build()
        constellation.join_store(store, via="mdm.0")
        constellation.replicate()
        constellation.servers["mdm.0"].coverage.unregister(
            PRESENCE, "gup.store.com"
        )
        constellation.replicate()
        constellation.replicate()  # settle echoes
        for mirror in constellation.mirror_nodes:
            resolution = constellation.servers[
                mirror
            ].coverage.resolve(PRESENCE)
            assert not resolution.is_covered, mirror

    def test_replication_traffic_accounted(self):
        network, constellation, store = build()
        constellation.join_store(store, via="mdm.0")
        trace = network.trace()
        constellation.replicate(trace)
        assert trace.bytes_total > 0
        assert constellation.replication_messages > 0
        assert constellation.replication_bytes == trace.bytes_total


class TestReads:
    def test_failover_read(self):
        network, constellation, store = build()
        constellation.join_store(store, via="mdm.0")
        constellation.replicate()
        network.fail("mdm.0")
        referral, trace, used = constellation.resolve(
            "client", PRESENCE, ctx(), prefer="mdm.0"
        )
        assert used != "mdm.0"
        assert trace.elapsed_ms > network.detect_timeout_ms

    def test_all_mirrors_down(self):
        network, constellation, store = build()
        constellation.join_store(store, via="mdm.0")
        for mirror in constellation.mirror_nodes:
            network.fail(mirror)
        with pytest.raises(GupsterError):
            constellation.resolve("client", PRESENCE, ctx())

    def test_needs_one_mirror(self):
        with pytest.raises(ValueError):
            MirrorConstellation(Network(seed=1), [])
