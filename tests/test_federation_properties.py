"""Property battery for the E22 federation reconciler (DESIGN.md
§4.10): convergence under arbitrary interleavings of two-sided writes
and crashes, echo suppression as a trace property, and reject-queue
no-loss/no-dup across poison -> crash -> replay.
"""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.access import (
    PolicyEnforcementPoint,
    PolicyRepository,
    PolicyRule,
)
from repro.bus import ChangeBus
from repro.core.provenance import ProvenanceTracker
from repro.federation import (
    FederationListener,
    ForeignDirectory,
    GupAttributeStore,
    MappingEntry,
    MappingTable,
    POLICIES,
    Reconciler,
    RejectQueue,
    policy_named,
)
from repro.simnet import Network, Simulator

USERS = ("u1", "u2", "u3")
#: (gup suffix, foreign attr, direction) — one mapping per direction.
TABLE = (
    ("self/email", "mail", "both"),
    ("self/name", "displayName", "out"),
    ("work/phone", "telephoneNumber", "in"),
)
ATTR_OF = {suffix: attr for suffix, attr, _d in TABLE}
DIRECTION_OF = {suffix: d for suffix, _a, d in TABLE}

INTERVAL = 200.0


def make_world(policy="lww", queue=None):
    sim = Simulator()
    network = Network()
    network.add_node("gupster")
    network.add_node("fed-conn")
    network.add_node("corp-ad")
    bus = ChangeBus(sim, network, "gupster")
    gup = GupAttributeStore(sim, bus=bus)
    foreign = ForeignDirectory("corp-ad", sim)
    table = MappingTable(
        [MappingEntry(s, a, d) for s, a, d in TABLE]
    )
    repo = PolicyRepository()
    for user in USERS:
        repo.store(
            PolicyRule(user, "/user[@id='%s']" % user, "permit")
        )
    rec = Reconciler(
        "fed-conn", gup, foreign, table, network,
        PolicyEnforcementPoint(repo),
        policy=policy_named(policy),
        provenance=ProvenanceTracker(),
        interval_ms=INTERVAL,
        reject_queue=queue,
    )
    bus.attach(FederationListener("fed", rec))
    rec.start()
    return sim, bus, gup, foreign, rec


users_st = st.sampled_from(USERS)
suffixes_st = st.sampled_from([s for s, _a, _d in TABLE])
values_st = st.text(
    alphabet=string.ascii_lowercase, min_size=1, max_size=6
)


@st.composite
def op_sequences(draw, with_crashes=True):
    """Interleavings of GUP writes, foreign writes, and (optionally)
    reconciler crash/resume, each preceded by a virtual-time advance
    (strictly positive, so authored instants are distinct)."""
    kinds = ["gup", "foreign", "gup", "foreign"]
    if with_crashes:
        kinds += ["crash", "resume"]
    count = draw(st.integers(1, 20))
    ops = []
    for _ in range(count):
        kind = draw(st.sampled_from(kinds))
        delay = draw(st.integers(1, 350))
        if kind in ("gup", "foreign"):
            ops.append((
                kind, delay, draw(users_st), draw(suffixes_st),
                draw(values_st),
            ))
        else:
            ops.append((kind, delay))
    return ops


def apply_ops(sim, bus, gup, foreign, rec, ops):
    """Drive one interleaving; returns the per-side last-write maps
    used to compute the expected fixpoint."""
    last_gup, last_foreign, last_any = {}, {}, {}
    for op in ops:
        sim.run(until=sim.now + op[1])
        if op[0] == "gup":
            _kind, _delay, user, suffix, value = op
            gup.write(user, suffix, value)
            last_gup[(user, suffix)] = value
            last_any[(user, suffix)] = ("gup", value)
        elif op[0] == "foreign":
            _kind, _delay, user, suffix, value = op
            foreign.write(user, ATTR_OF[suffix], value)
            last_foreign[(user, suffix)] = value
            last_any[(user, suffix)] = ("foreign", value)
        elif op[0] == "crash":
            if not rec._down:
                rec.crash()
        elif op[0] == "resume":
            if rec._down:
                rec.resume(bus=bus)
    if rec._down:
        rec.resume(bus=bus)
    # Settle: plenty of rounds for resyncs, retries and bus waves.
    sim.run(until=sim.now + 6000)
    return last_gup, last_foreign, last_any


def read_value(store_read, *key):
    state = store_read(*key)
    return None if state is None else state[0]


def assert_converged(gup, foreign, last_gup, last_foreign, last_any,
                     check_lww_winner=False):
    """Both sides hold the direction-appropriate fixpoint for every
    pair that was ever written."""
    for user, suffix in sorted(last_any):
        attr = ATTR_OF[suffix]
        direction = DIRECTION_OF[suffix]
        g = read_value(gup.read, user, suffix)
        f = read_value(foreign.read, user, attr)
        key = (user, suffix)
        if direction == "both":
            assert g == f, (
                "pair %r diverged: gup=%r foreign=%r"
                % (key, g, f)
            )
            if check_lww_winner:
                # Authored instants are strictly increasing across
                # ops, so lww must pick the globally last write.
                assert g == last_any[key][1], (
                    "pair %r: expected last write %r, got %r"
                    % (key, last_any[key][1], g)
                )
        elif direction == "out":
            # GUP authoritative: its last write overwrites any
            # foreign drift; GUP never imports.
            if key in last_gup:
                assert g == last_gup[key]
                assert f == last_gup[key]
            else:
                assert g is None
                assert f == last_foreign.get(key)
        else:  # "in"
            # Foreign authoritative: its last write reasserts over
            # any GUP edit; GUP never exports.
            assert f == last_foreign.get(key)
            if key in last_foreign:
                assert g == last_foreign[key]
            else:
                assert g == last_gup.get(key)


class TestConvergenceProperties:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    @given(ops=op_sequences())
    @settings(max_examples=25, deadline=None)
    def test_interleavings_with_crashes_reach_a_fixpoint(
        self, policy, ops
    ):
        """Any interleaving of two-sided writes and reconciler
        crashes converges: both sides identical for every contested
        pair, authoritative side wins for directional pairs, and the
        fixpoint is write-free (zero oscillation)."""
        sim, bus, gup, foreign, rec = make_world(policy=policy)
        last_gup, last_foreign, last_any = apply_ops(
            sim, bus, gup, foreign, rec, ops
        )
        assert_converged(
            gup, foreign, last_gup, last_foreign, last_any,
            check_lww_winner=(policy == "lww"),
        )
        # Fixpoint stability: further rounds move nothing.
        before = (gup.writes, foreign.writes,
                  rec.synced_in, rec.synced_out)
        sim.run(until=sim.now + 10 * INTERVAL)
        after = (gup.writes, foreign.writes,
                 rec.synced_in, rec.synced_out)
        assert before == after, "fixpoint oscillated: %r -> %r" % (
            before, after,
        )
        # Nothing was parked: no failures were injected.
        assert len(rec.queue) == 0

    @given(ops=op_sequences(with_crashes=False))
    @settings(max_examples=25, deadline=None)
    def test_no_echo_is_a_trace_property(self, ops):
        """A synced write never produces a second sync of itself:
        every export the reconciler journaled on the foreign side is
        suppressed on re-import (origin tag), every import it wrote
        into GUP is absorbed off the bus (origin-tag table), and the
        converged system is quiescent."""
        sim, bus, gup, foreign, rec = make_world(policy="lww")
        apply_ops(sim, bus, gup, foreign, rec, ops)
        # Outbound echo accounting: each of our journal entries came
        # back through the poll exactly once, as a suppression.
        own_entries = sum(
            1 for change in foreign._journal
            if change.origin == rec.tag
        )
        assert own_entries == rec.synced_out
        assert rec.echo_suppressed_in == rec.synced_out
        # Inbound echo accounting: every pull's bus shadow was
        # absorbed, none re-dirtied its own pair.
        assert rec.echo_suppressed_gup == rec.synced_in
        # Trace formulation: from the fixpoint, rounds keep running
        # but no write on either side ever happens again.
        before = (gup.writes, foreign.writes)
        sim.run(until=sim.now + 10 * INTERVAL)
        assert (gup.writes, foreign.writes) == before


class TestRejectQueueProperties:
    @given(values=st.lists(values_st, min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_replay_after_restore_loses_and_duplicates_nothing(
        self, values
    ):
        """A poisoned object's pending writes survive backoff,
        poisoning, and a reconciler crash/restore; one explicit
        replay applies exactly the newest value exactly once."""
        queue = RejectQueue(
            max_attempts=3, base_backoff_ms=100.0,
            max_backoff_ms=400.0,
        )
        sim, bus, gup, foreign, rec = make_world(
            policy="lww", queue=queue
        )
        foreign.reject_writes_for("u1")
        for value in values:
            sim.run(until=sim.now + 50)
            gup.write("u1", "self/email", value)
        # Enough rounds to strike out: 3 attempts with <=400ms gaps.
        sim.run(until=sim.now + 4000)
        parked = queue.get("u1")
        assert parked is not None and parked.poisoned
        assert rec.poisoned >= 1
        # The value never reached the foreign side (no partial write).
        assert foreign.read("u1", "mail") is None
        # Crash and restore: the queue is the connector's persistent
        # sync database, so the parked object survives.
        rec.crash()
        sim.run(until=sim.now + 500)
        rec.resume(bus=bus)
        foreign.clear_rejects()
        sim.run(until=sim.now + 2000)
        # Poisoned means held: even with the fault cleared, no
        # automatic retry happens without an explicit replay.
        assert foreign.read("u1", "mail") is None
        assert queue.get("u1") is not None
        assert rec.replay("u1")
        sim.run(until=sim.now + 2000)
        # No-loss: the newest value arrived; no-dup: applied once.
        assert read_value(foreign.read, "u1", "mail") == values[-1]
        applied = [
            change for change in foreign._journal
            if change.origin == rec.tag
            and (change.user_id, change.attr) == ("u1", "mail")
        ]
        assert len(applied) == 1
        assert queue.get("u1") is None
        # And the healed pair is a quiet fixpoint.
        before = (gup.writes, foreign.writes)
        sim.run(until=sim.now + 10 * INTERVAL)
        assert (gup.writes, foreign.writes) == before
