"""Privacy shield on the federation egress (E22): outbound writes are
enforced per attribute — a denied attribute is counted and ledgered
but its value never enters a foreign wire write. Mirrors the PR 3
shield-mediated sync-session tests for the reconciler's push path.
"""

import pytest

from repro.access import (
    PolicyEnforcementPoint,
    PolicyRepository,
    PolicyRule,
)
from repro.bus import ChangeBus
from repro.core.provenance import ProvenanceTracker
from repro.errors import AdapterError
from repro.adapters import LdapAdapter
from repro.federation import (
    FederationListener,
    ForeignDirectory,
    GupAttributeStore,
    LdapForeignDirectory,
    MappingEntry,
    MappingTable,
    Reconciler,
)
from repro.simnet import Network, Simulator
from repro.stores.directory import DirectoryServer, LdapEntry

USER = "u1"


def make_world(permitted_suffixes, foreign=None):
    """A world whose shield permits only *permitted_suffixes* of
    USER's profile to the foreign directory (default deny)."""
    sim = Simulator()
    network = Network()
    network.add_node("gupster")
    network.add_node("fed-conn")
    network.add_node("corp-ad")
    bus = ChangeBus(sim, network, "gupster")
    gup = GupAttributeStore(sim, bus=bus)
    if foreign is None:
        foreign = ForeignDirectory("corp-ad", sim)
    else:
        foreign.sim = sim
    table = MappingTable([
        MappingEntry("self/email", "mail", "both"),
        MappingEntry("self/name", "displayName", "out"),
    ])
    repo = PolicyRepository()
    for suffix in permitted_suffixes:
        repo.store(PolicyRule(
            USER, "/user[@id='%s']/%s" % (USER, suffix), "permit",
        ))
    prov = ProvenanceTracker()
    rec = Reconciler(
        "fed-conn", gup, foreign, table, network,
        PolicyEnforcementPoint(repo),
        provenance=prov,
        interval_ms=200.0,
    )
    bus.attach(FederationListener("fed", rec))
    rec.start()
    return sim, network, gup, foreign, rec, prov


class TestPerAttributeWithhold:
    def test_denied_attribute_never_in_foreign_wire_writes(self):
        # Only self/name may leave; self/email is denied by default.
        sim, network, gup, foreign, rec, prov = make_world(
            ["self/name"]
        )
        gup.write(USER, "self/name", "User One")
        gup.write(USER, "self/email", "secret@gup.example")
        sim.run(until=5000)
        # The permitted attribute crossed; the denied one did not.
        assert foreign.read(USER, "displayName")[0] == "User One"
        assert foreign.read(USER, "mail") is None
        # Not merely unapplied — never on the wire: no journal entry
        # (journaling happens per received write) and no state.
        assert all(
            change.attr != "mail" for change in foreign._journal
        )
        assert rec.withheld == 1
        assert rec.synced_out == 1

    def test_withhold_is_counted_in_metrics(self):
        sim, network, gup, foreign, rec, prov = make_world([])
        gup.write(USER, "self/email", "secret@gup.example")
        sim.run(until=3000)
        assert rec.withheld == 1
        assert network.metrics.counter("fed.withheld").value == 1
        assert foreign.users() == []

    def test_withhold_is_ledgered_as_denied(self):
        sim, network, gup, foreign, rec, prov = make_world([])
        gup.write(USER, "self/email", "secret@gup.example")
        sim.run(until=3000)
        denied = [r for r in prov._records if not r.granted]
        assert len(denied) == 1
        record = denied[0]
        assert record.operation == "reconcile"
        assert record.requester == "corp-ad"
        assert "withheld" in record.note
        assert str(record.path) == (
            "/user[@id='%s']/self/email" % USER
        )

    def test_withheld_pair_does_not_oscillate(self):
        # A denial is not a failure: the pair goes quiet (no reject
        # queue churn, no repeated enforcement storm), and the
        # withhold count stays at one until the value changes again.
        sim, network, gup, foreign, rec, prov = make_world([])
        gup.write(USER, "self/email", "secret@gup.example")
        sim.run(until=3000)
        assert rec.withheld == 1
        assert len(rec.queue) == 0
        sim.run(until=sim.now + 3000)
        assert rec.withheld == 1
        # A fresh edit re-attempts (and is re-withheld) exactly once.
        gup.write(USER, "self/email", "other@gup.example")
        sim.run(until=sim.now + 3000)
        assert rec.withheld == 2

    def test_privacy_mandated_divergence_is_quiet(self):
        # Foreign holds its own value for a denied attribute; the
        # reconciler may not export GUP's, so the sides stay apart —
        # but without oscillating.
        sim, network, gup, foreign, rec, prov = make_world([])
        foreign.write(USER, "mail", "foreign@corp.example", at=10.0)
        sim.run(until=2000)
        gup.write(USER, "self/email", "newer@gup.example")
        sim.run(until=6000)
        # GUP's newer value won the lww conflict but was withheld, so
        # each side keeps its own view.
        assert gup.read(USER, "self/email")[0] == "newer@gup.example"
        assert foreign.read(USER, "mail")[0] == "foreign@corp.example"
        writes_before = (gup.writes, foreign.writes)
        sim.run(until=sim.now + 3000)
        assert (gup.writes, foreign.writes) == writes_before


class TestLdapBackedFederation:
    def setup_method(self):
        self.server = DirectoryServer("ldap.corp", suffix="o=corp")
        self.server.add(
            LdapEntry("o=corp", ["organization"], {"o": ["corp"]})
        )
        self.server.add(LdapEntry(
            "uid=u1,o=corp",
            ["person", "inetOrgPerson", "organizationalPerson"],
            {"cn": ["User One"], "sn": ["One"], "uid": ["u1"]},
        ))
        self.adapter = LdapAdapter("gup.ldap.corp", self.server)
        self.adapter.map_person(USER, "uid=u1,o=corp")

    def test_exports_land_in_the_directory_server(self):
        sim = Simulator()
        foreign = LdapForeignDirectory(
            "corp-ad", sim, adapter=self.adapter
        )
        sim2, network, gup, foreign, rec, prov = make_world(
            ["self/email", "self/name"], foreign=foreign
        )
        gup.write(USER, "self/email", "u1@corp.example")
        sim2.run(until=3000)
        entry = self.server.entry("uid=u1,o=corp")
        assert entry.values("mail") == ["u1@corp.example"]

    def test_denied_attribute_never_reaches_the_server(self):
        sim = Simulator()
        foreign = LdapForeignDirectory(
            "corp-ad", sim, adapter=self.adapter
        )
        sim2, network, gup, foreign, rec, prov = make_world(
            [], foreign=foreign
        )
        gup.write(USER, "self/email", "secret@gup.example")
        sim2.run(until=3000)
        entry = self.server.entry("uid=u1,o=corp")
        assert entry.values("mail") == []
        assert rec.withheld == 1

    def test_schema_violation_feeds_the_reject_queue(self):
        # displayName is not in the person entry's object classes, so
        # the directory rejects the adapter write; the reconciler
        # parks the object instead of crashing or losing the value.
        sim = Simulator()
        foreign = LdapForeignDirectory(
            "corp-ad", sim, adapter=self.adapter
        )
        with pytest.raises(AdapterError):
            self.adapter.write_attr(USER, "displayName", ["X"])
        sim2, network, gup, foreign, rec, prov = make_world(
            ["self/email", "self/name"], foreign=foreign
        )
        gup.write(USER, "self/name", "User One")
        sim2.run(until=3000)
        assert rec.rejects >= 1
        parked = rec.queue.get(USER)
        assert parked is not None
        assert "self/name" in parked.pending
        # The directory entry stayed exactly as it was (rollback).
        entry = self.server.entry("uid=u1,o=corp")
        assert entry.values("displayname") == []
