"""The typed-core gate (PR 2 satellite).

CI runs mypy over the typed scope (see ``[tool.mypy]`` in
pyproject.toml), but mypy is not available in the dev container — so
this test enforces the *presence* half of the contract locally: every
function in the typed core must carry complete parameter and return
annotations. mypy then checks *consistency* in CI. Either way, an
unannotated def cannot land.

The typed scope matches the mypy ``files`` list:

* ``repro/errors.py`` — the exception contract
* ``repro/core/`` — server, query, cache, coverage, resilience, ...
* ``repro/analysis/`` — gupcheck itself practices what it preaches
* ``repro/obs/`` — spans, metrics registry, exporters (PR 4)
* ``repro/pxml/path.py`` and ``repro/pxml/evaluate.py`` — the
  path fragment and its evaluator, the vocabulary of every API
* ``repro/adapters/base.py`` — the adapter contract stores implement

Also asserts the PEP 561 ``py.typed`` marker is shipped so downstream
type checkers see the annotations at all.
"""

from __future__ import annotations

import ast
import os
import unittest
from typing import Iterator, List, Tuple

HERE = os.path.dirname(os.path.abspath(__file__))
SRC = os.path.join(HERE, os.pardir, "src")
PKG = os.path.join(SRC, "repro")

#: Directories included wholesale (recursively).
TYPED_DIRS = (
    "bus", "core", "analysis", "obs", "sansio", "serve", "sharding",
    "federation",
)
#: Individual modules included.
TYPED_FILES = (
    "errors.py",
    os.path.join("pxml", "path.py"),
    os.path.join("pxml", "evaluate.py"),
    os.path.join("adapters", "base.py"),
    os.path.join("stores", "sharded.py"),
)


def typed_scope() -> List[str]:
    """Absolute paths of every module in the typed core."""
    picked = []
    for sub in TYPED_DIRS:
        for root, dirs, files in os.walk(os.path.join(PKG, sub)):
            dirs[:] = [d for d in dirs if d != "__pycache__"]
            picked.extend(
                os.path.join(root, name)
                for name in files
                if name.endswith(".py")
            )
    picked.extend(os.path.join(PKG, rel) for rel in TYPED_FILES)
    return sorted(picked)


def _functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _missing_annotations(fn: ast.FunctionDef) -> List[str]:
    """Names of unannotated parameters (plus '->return' when the
    return annotation is absent). Dunders other than __init__ are
    exempt — their signatures are fixed by the object protocol."""
    if (
        fn.name.startswith("__")
        and fn.name.endswith("__")
        and fn.name != "__init__"
    ):
        return []
    gaps = []
    arguments = fn.args
    positional = arguments.posonlyargs + arguments.args
    for index, arg in enumerate(positional + arguments.kwonlyargs):
        if index == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            gaps.append(arg.arg)
    if arguments.vararg is not None \
            and arguments.vararg.annotation is None:
        gaps.append("*" + arguments.vararg.arg)
    if arguments.kwarg is not None \
            and arguments.kwarg.annotation is None:
        gaps.append("**" + arguments.kwarg.arg)
    if fn.returns is None:
        gaps.append("->return")
    return gaps


class TestTypedCore(unittest.TestCase):
    def test_scope_is_nonempty(self) -> None:
        scope = typed_scope()
        self.assertGreater(len(scope), 20,
                           "typed scope unexpectedly small: %r" % scope)
        for path in scope:
            self.assertTrue(os.path.isfile(path), path)

    def test_every_def_fully_annotated(self) -> None:
        offenders: List[Tuple[str, int, str, List[str]]] = []
        for path in typed_scope():
            with open(path, "r", encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=path)
            rel = os.path.relpath(path, SRC)
            for fn in _functions(tree):
                gaps = _missing_annotations(fn)
                if gaps:
                    offenders.append((rel, fn.lineno, fn.name, gaps))
        if offenders:
            lines = "\n".join(
                "  %s:%d %s(): missing %s"
                % (rel, lineno, name, ", ".join(gaps))
                for rel, lineno, name, gaps in offenders
            )
            self.fail(
                "typed core has unannotated defs (mypy in CI would "
                "reject these under disallow_untyped_defs):\n" + lines
            )

    def test_py_typed_marker_shipped(self) -> None:
        marker = os.path.join(PKG, "py.typed")
        self.assertTrue(
            os.path.isfile(marker),
            "src/repro/py.typed missing — PEP 561 marker required for "
            "downstream type checkers",
        )

    def test_mypy_config_covers_scope(self) -> None:
        """The pyproject mypy section and this test must not drift
        apart: every entry this test walks appears in [tool.mypy]
        files."""
        pyproject = os.path.join(SRC, os.pardir, "pyproject.toml")
        with open(pyproject, "r", encoding="utf-8") as handle:
            text = handle.read()
        self.assertIn("[tool.mypy]", text)
        for needle in (
            "src/repro/errors.py",
            "src/repro/core",
            "src/repro/analysis",
            "src/repro/pxml/path.py",
            "src/repro/pxml/evaluate.py",
            "src/repro/adapters/base.py",
            "src/repro/sharding",
            "src/repro/stores/sharded.py",
        ):
            self.assertIn(needle, text,
                          "%s missing from [tool.mypy] files" % needle)
        self.assertIn("disallow_untyped_defs = true", text)


if __name__ == "__main__":
    unittest.main()
