"""Unit tests for the PSTN class-5 switch and the SIP registrar/proxy."""

import pytest

from repro.errors import ProvisioningDeniedError, StoreError
from repro.stores import Class5Switch, SipProxy, SipRegistrar


class TestClass5Switch:
    def setup_method(self):
        self.switch = Class5Switch("5ess.murray-hill")
        self.switch.install_line("9085820001", "alice")
        self.switch.install_line("9085820002", "bob")

    def test_duplicate_line_rejected(self):
        with pytest.raises(StoreError):
            self.switch.install_line("9085820001", "carol")

    def test_basic_connect(self):
        assert self.switch.route_call("x", "9085820001") == "connected"

    def test_no_such_line(self):
        assert self.switch.route_call("x", "999") == "no-such-line"

    def test_forwarding(self):
        self.switch.provision("9085820001", "call_forwarding", "9085820002")
        assert (
            self.switch.route_call("x", "9085820001")
            == "forwarded:9085820002"
        )

    def test_busy_without_forwarding(self):
        self.switch.set_busy("9085820001", True)
        assert self.switch.route_call("x", "9085820001") == "busy"
        assert self.switch.call_status("9085820001") == "busy"

    def test_busy_with_forwarding(self):
        self.switch.set_busy("9085820001", True)
        self.switch.provision("9085820001", "call_forwarding", "9085820002")
        assert (
            self.switch.route_call("x", "9085820001")
            == "forwarded:9085820002"
        )

    def test_barring_requires_operator(self):
        # The paper: "Most provisioning must be performed manually by
        # network operators rather than the end-user."
        with pytest.raises(ProvisioningDeniedError):
            self.switch.provision("9085820001", "barred_numbers", ["666"])
        self.switch.provision(
            "9085820001", "barred_numbers", ["666"], by_operator=True
        )
        assert self.switch.route_call("666", "9085820001") == "barred"

    def test_self_provision_forwarding_allowed(self):
        self.switch.provision("9085820001", "call_forwarding", "123")
        assert self.switch.line("9085820001").call_forwarding == "123"

    def test_unknown_feature(self):
        with pytest.raises(StoreError):
            self.switch.provision(
                "9085820001", "warp-drive", True, by_operator=True
            )

    def test_tollfree_resolution(self):
        self.switch.map_tollfree("8005551000", "9085820002")
        assert self.switch.route_call("x", "8005551000") == "connected"

    def test_counters(self):
        self.switch.route_call("x", "9085820001")
        self.switch.route_call("x", "999")
        assert self.switch.calls_routed == 1
        assert self.switch.calls_rejected == 1


class TestSip:
    def setup_method(self):
        self.registrar = SipRegistrar("registrar.example")
        self.proxy = SipProxy("proxy.example", self.registrar)

    def test_register_and_route(self):
        self.registrar.register(
            "sip:alice@example.com", "10.0.0.5", "alice", now=0
        )
        outcome, contact = self.proxy.route("sip:alice@example.com", now=10)
        assert outcome == "proxied"
        assert contact == "10.0.0.5"

    def test_binding_expiry(self):
        self.registrar.register(
            "sip:alice@example.com", "10.0.0.5", "alice",
            now=0, expires_ms=100,
        )
        assert self.registrar.is_registered("sip:alice@example.com", now=50)
        assert not self.registrar.is_registered(
            "sip:alice@example.com", now=150
        )

    def test_reregister_replaces_contact(self):
        aor = "sip:alice@example.com"
        self.registrar.register(aor, "10.0.0.5", "alice", now=0)
        self.registrar.register(aor, "10.0.0.5", "alice", now=10)
        assert len(self.registrar.lookup(aor, now=20)) == 1

    def test_multiple_contacts_latest_preferred(self):
        aor = "sip:alice@example.com"
        self.registrar.register(aor, "10.0.0.5", "alice", now=0)
        self.registrar.register(aor, "10.0.0.9", "alice", now=10)
        outcome, contact = self.proxy.route(aor, now=20)
        assert outcome == "proxied" and contact == "10.0.0.9"

    def test_unregister(self):
        aor = "sip:alice@example.com"
        self.registrar.register(aor, "10.0.0.5", "alice", now=0)
        self.registrar.unregister(aor, "10.0.0.5")
        assert not self.registrar.is_registered(aor)

    def test_routing_hint_fallback(self):
        self.proxy.set_routing_hint("sip:bob@example.com", "voicemail")
        outcome, contact = self.proxy.route("sip:bob@example.com")
        assert outcome == "hinted" and contact == "voicemail"

    def test_unroutable(self):
        outcome, contact = self.proxy.route("sip:nobody@example.com")
        assert outcome == "not-registered" and contact is None
        assert self.proxy.failed == 1

    def test_call_status(self):
        aor = "sip:alice@example.com"
        assert self.proxy.call_status(aor) == "offline"
        self.registrar.register(aor, "10.0.0.5", "alice", now=0)
        assert self.proxy.call_status(aor, now=10) == "online"
