"""Unit tests for signed queries and the component cache."""

import pytest

from repro.errors import SignatureError, StaleQueryError
from repro.core import ComponentCache, QuerySigner
from repro.pxml import PNode


PATH = "/user[@id='arnaud']/presence"
#: Requester scope for the cache-mechanics tests: a single
#: implicit requester, made explicit for cache-key-scope.
SCOPE = "hss.test|self"


class TestSigning:
    def setup_method(self):
        self.signer = QuerySigner(secret=b"k1", freshness_ms=5000)
        self.verifier = self.signer.verifier()

    def test_round_trip(self):
        signed = self.signer.sign(PATH, "bob", now=100.0)
        self.verifier.verify(signed, now=200.0)
        assert self.verifier.verified == 1

    def test_signature_covers_path(self):
        signed = self.signer.sign(PATH, "bob", now=0.0)
        from repro.pxml import parse_path
        signed.path = parse_path("/user[@id='arnaud']/wallet")
        with pytest.raises(SignatureError):
            self.verifier.verify(signed, now=1.0)

    def test_signature_covers_requester(self):
        signed = self.signer.sign(PATH, "bob", now=0.0)
        signed.requester = "mallory"
        with pytest.raises(SignatureError):
            self.verifier.verify(signed, now=1.0)

    def test_stale_query_rejected(self):
        signed = self.signer.sign(PATH, "bob", now=0.0)
        with pytest.raises(StaleQueryError):
            self.verifier.verify(signed, now=6000.0)
        assert self.verifier.rejected == 1

    def test_query_from_the_future_rejected(self):
        signed = self.signer.sign(PATH, "bob", now=1000.0)
        with pytest.raises(StaleQueryError):
            self.verifier.verify(signed, now=500.0)

    def test_wrong_key_rejected(self):
        other = QuerySigner(secret=b"k2")
        signed = other.sign(PATH, "bob", now=0.0)
        with pytest.raises(SignatureError):
            self.verifier.verify(signed, now=1.0)

    def test_byte_size_positive(self):
        signed = self.signer.sign(PATH, "bob", now=0.0)
        assert signed.byte_size() > len(PATH)


def fragment(text="available"):
    root = PNode("user", {"id": "arnaud"})
    presence = root.append(PNode("presence"))
    presence.append(PNode("status", text=text))
    return root


class TestComponentCache:
    def test_miss_then_hit(self):
        cache = ComponentCache(capacity=4, default_ttl_ms=1000)
        assert cache.get(PATH, now=0, scope=SCOPE) is None
        cache.put(PATH, fragment(), now=0, scope=SCOPE)
        hit = cache.get(PATH, now=500, scope=SCOPE)
        assert hit is not None
        assert cache.hits == 1 and cache.misses == 1

    def test_ttl_expiry(self):
        cache = ComponentCache(capacity=4, default_ttl_ms=1000)
        cache.put(PATH, fragment(), now=0, scope=SCOPE)
        assert cache.get(PATH, now=999, scope=SCOPE) is not None
        assert cache.get(PATH, now=2000, scope=SCOPE) is None
        assert cache.expirations == 1

    def test_per_entry_ttl_overrides_default(self):
        cache = ComponentCache(capacity=4, default_ttl_ms=1000)
        cache.put(PATH, fragment(), now=0, ttl_ms=10, scope=SCOPE)
        assert cache.get(PATH, now=50, scope=SCOPE) is None

    def test_lru_eviction(self):
        cache = ComponentCache(capacity=2, default_ttl_ms=1e9)
        cache.put("/user[@id='a']/presence", fragment(), now=0, scope=SCOPE)
        cache.put("/user[@id='b']/presence", fragment(), now=1, scope=SCOPE)
        cache.get("/user[@id='a']/presence", now=2, scope=SCOPE)  # refresh a
        cache.put("/user[@id='c']/presence", fragment(), now=3, scope=SCOPE)
        assert cache.get("/user[@id='b']/presence", now=4, scope=SCOPE) is None
        assert cache.get("/user[@id='a']/presence", now=4, scope=SCOPE) is not None
        assert cache.evictions == 1

    def test_returned_fragment_is_a_copy(self):
        cache = ComponentCache()
        cache.put(PATH, fragment(), now=0, scope=SCOPE)
        first = cache.get(PATH, now=1, scope=SCOPE)
        first.child("presence").child("status").text = "tampered"
        second = cache.get(PATH, now=2, scope=SCOPE)
        assert second.child("presence").child("status").text == (
            "available"
        )

    def test_invalidation_trigger_drops_overlapping(self):
        cache = ComponentCache()
        cache.put(PATH, fragment(), now=0, scope=SCOPE)
        cache.put("/user[@id='arnaud']/calendar", fragment(), now=0, scope=SCOPE)
        dropped = cache.invalidate("/user[@id='arnaud']/presence/status")
        assert dropped == 1
        assert cache.get(PATH, now=1, scope=SCOPE) is None
        assert cache.get("/user[@id='arnaud']/calendar", now=1, scope=SCOPE) is not None

    def test_invalidation_respects_users(self):
        cache = ComponentCache()
        cache.put("/user[@id='a']/presence", fragment(), now=0, scope=SCOPE)
        cache.put("/user[@id='b']/presence", fragment(), now=0, scope=SCOPE)
        cache.invalidate("/user[@id='a']/presence")
        assert cache.get("/user[@id='b']/presence", now=1, scope=SCOPE) is not None

    def test_hit_rate(self):
        cache = ComponentCache()
        cache.put(PATH, fragment(), now=0, scope=SCOPE)
        cache.get(PATH, now=1, scope=SCOPE)
        cache.get("/user[@id='x']/presence", now=1, scope=SCOPE)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ComponentCache(capacity=0)

    def test_clear_and_len(self):
        cache = ComponentCache()
        cache.put(PATH, fragment(), now=0, scope=SCOPE)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
