"""Unit tests for workload generation: synthetic stores, Zipf
sampling, population spreading, and the scenario builder."""

import pytest

from repro.pxml import GUP_SCHEMA, parse
from repro.workloads import (
    SyntheticAdapter,
    ZipfSampler,
    build_converged_world,
    spread_users,
)


class TestSyntheticAdapter:
    def setup_method(self):
        self.store = SyntheticAdapter("gup.synth.com", book_entries=5)
        self.store.add_user("u1", ["address-book", "presence"])

    def test_holdings(self):
        assert self.store.holdings("u1") == ("address-book", "presence")
        assert self.store.holdings("ghost") == ()
        assert self.store.users() == ["u1"]

    def test_unsupported_component_rejected(self):
        with pytest.raises(ValueError):
            self.store.add_user("u2", ["wallet"])

    def test_export_is_deterministic(self):
        first = self.store.export_user("u1")
        second = self.store.export_user("u1")
        assert first.deep_equal(second)

    def test_export_validates_against_schema(self):
        self.store.add_user(
            "u2",
            ["address-book", "presence", "calendar", "game-scores",
             "devices", "preferences"],
        )
        view = self.store.export_user("u2")
        assert GUP_SCHEMA.validate(view) == []

    def test_different_stores_differ(self):
        other = SyntheticAdapter("gup.other.com", book_entries=5)
        other.add_user("u1", ["address-book"])
        mine = self.store.export_user("u1").child("address-book")
        theirs = other.export_user("u1").child("address-book")
        # Same ids (mergeable replicas) but different generated phone
        # numbers (store-seeded).
        assert [i.attrs["id"] for i in mine.children] == [
            i.attrs["id"] for i in theirs.children
        ]
        assert not mine.deep_equal(theirs)

    def test_book_entries_config(self):
        view = self.store.export_user("u1")
        assert len(view.child("address-book").children) == 5

    def test_write_overrides_generation(self):
        fragment = parse(
            "<address-book><item id='only'><name>Zoe</name></item>"
            "</address-book>"
        )
        self.store.apply_component("u1", "address-book", fragment)
        view = self.store.export_user("u1")
        book = view.child("address-book")
        assert [i.attrs["id"] for i in book.children] == ["only"]

    def test_write_to_new_user_creates_holding(self):
        self.store.apply_component(
            "new", "presence",
            parse("<presence><status>busy</status></presence>"),
        )
        assert "presence" in self.store.holdings("new")

    def test_unknown_user_exports_none(self):
        assert self.store.export_user("ghost") is None


class TestZipfSampler:
    def test_deterministic(self):
        a = ZipfSampler(range(100), seed=5).sequence(50)
        b = ZipfSampler(range(100), seed=5).sequence(50)
        assert a == b

    def test_skew_favors_head(self):
        sampler = ZipfSampler(list(range(1000)), alpha=1.0, seed=1)
        draws = sampler.sequence(5000)
        head = sum(1 for d in draws if d < 10)
        tail = sum(1 for d in draws if d >= 990)
        assert head > 10 * max(tail, 1)

    def test_alpha_zero_roughly_uniform(self):
        sampler = ZipfSampler(list(range(10)), alpha=0.0, seed=1)
        draws = sampler.sequence(5000)
        counts = [draws.count(i) for i in range(10)]
        assert max(counts) < 2 * min(counts)

    def test_empty_items_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler([])


class TestSpreadUsers:
    def test_population_spread(self):
        stores = [
            SyntheticAdapter("gup.s%d.com" % i, seed=i)
            for i in range(4)
        ]
        users = spread_users(
            50, stores, components_per_user=3, replicas=2, seed=1
        )
        assert len(users) == 50
        # Every user got components on some store.
        for user in users:
            holdings = [
                c for store in stores for c in store.holdings(user)
            ]
            assert len(holdings) >= 3
        # Replication: each (user, component) appears on 2 stores.
        user = users[0]
        component_counts = {}
        for store in stores:
            for component in store.holdings(user):
                component_counts[component] = (
                    component_counts.get(component, 0) + 1
                )
        assert all(count == 2 for count in component_counts.values())

    def test_replicas_bounded_by_stores(self):
        stores = [SyntheticAdapter("gup.s.com")]
        with pytest.raises(ValueError):
            spread_users(5, stores, replicas=2)


class TestConvergedWorld:
    def test_world_builds_cleanly(self):
        world = build_converged_world()
        assert world.server is not None
        assert world.executor is not None
        stats = world.server.stats()
        assert stats["users"] >= 2
        assert stats["stores"] >= 5

    def test_every_registered_component_is_fetchable(self):
        from repro.access import RequestContext

        world = build_converged_world()
        for user in ("alice", "arnaud"):
            ctx = RequestContext(user, relationship="self")
            for path, _stores in (
                world.server.coverage.component_graph(user)
            ):
                fragment, _trace = world.executor.referral(
                    "client-app", path, ctx
                )
                assert fragment is not None, path

    def test_split_variant_changes_coverage_only_for_arnaud(self):
        plain = build_converged_world()
        split = build_converged_world(split_address_book=True)
        assert (
            plain.server.coverage.component_graph("alice")
            == split.server.coverage.component_graph("alice")
        )
        assert (
            plain.server.coverage.component_graph("arnaud")
            != split.server.coverage.component_graph("arnaud")
        )

    def test_policies_optional(self):
        world = build_converged_world(with_policies=False)
        assert world.server.policy_repository.rule_count() == 0

    def test_exports_validate_against_schema(self):
        world = build_converged_world()
        for adapter in world.adapters.values():
            for user in adapter.users():
                view = adapter.export_user(user)
                assert GUP_SCHEMA.validate(view) == [], (
                    adapter.store_id, user,
                )
