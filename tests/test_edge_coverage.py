"""Edge-case tests for code paths the main suites don't reach."""

import pytest

from repro.access import RequestContext
from repro.core import CoverageMap, ProvenanceTracker
from repro.errors import StoreError
from repro.pxml import (
    GUP_SCHEMA,
    PNode,
    build_gup_schema,
    parse_path,
)
from repro.pxml.adjunct import SchemaAdjunct
from repro.simnet import Network
from repro.workloads import build_converged_world


class TestSchemaValidatePath:
    def test_valid_paths(self):
        assert GUP_SCHEMA.validate_path("/user/address-book") is None
        assert GUP_SCHEMA.validate_path(
            "/user[@id='a']/address-book/item/name"
        ) is None

    def test_wrong_root(self):
        assert "start at" in GUP_SCHEMA.validate_path("/profile/x")

    def test_unknown_child(self):
        problem = GUP_SCHEMA.validate_path("/user/mp3-playlist")
        assert "no child" in problem

    def test_unknown_attribute(self):
        problem = GUP_SCHEMA.validate_path("/user/presence/@bogus")
        assert "no attribute" in problem

    def test_known_attribute_ok(self):
        assert GUP_SCHEMA.validate_path(
            "/user/devices/device/@carrier"
        ) is None

    def test_wildcard_disables_tracking(self):
        assert GUP_SCHEMA.validate_path("/user/*/whatever") is None
        assert GUP_SCHEMA.validate_path("/*") is None

    def test_tolerant_schema_accepts_unknowns(self):
        tolerant = build_gup_schema(strict=False)
        assert tolerant.validate_path("/user/mp3-playlist") is None


class TestCoverageReplicationFeed:
    def test_apply_changes_directly(self):
        master = CoverageMap()
        replica = CoverageMap()
        master.register("/user[@id='a']/presence", "s1")
        master.register("/user[@id='a']/calendar", "s1")
        master.unregister("/user[@id='a']/calendar", "s1")
        applied = replica.apply_changes(master.changes_since(0))
        assert applied == 3
        assert replica.stores_for("/user[@id='a']/presence") == ["s1"]
        assert replica.stores_for("/user[@id='a']/calendar") == []
        # Replays are idempotent.
        assert replica.apply_changes(master.changes_since(0)) == 0

    def test_unregister_store_logs_changes(self):
        master = CoverageMap()
        master.register("/user[@id='a']/presence", "s1")
        master.register("/user[@id='b']/presence", "s1")
        mark = master.revision
        master.unregister_store("s1")
        unregisters = [
            c for c in master.changes_since(mark)
            if c[1] == "unregister"
        ]
        assert len(unregisters) == 2

    def test_users_listing(self):
        cov = CoverageMap()
        cov.register("/user[@id='b']/presence", "s1")
        cov.register("/user[@id='a']/presence", "s1")
        assert cov.users() == ["a", "b"]
        cov.unregister("/user[@id='a']/presence", "s1")
        assert cov.users() == ["b"]


class TestNetworkDefaults:
    def test_unknown_region_pair_falls_back(self):
        net = Network(seed=1)
        net.add_node("a", region="mars")
        net.add_node("b", region="venus")
        trace = net.trace()
        trace.hop("a", "b", 10)  # default 20ms-ish link applies
        assert trace.elapsed_ms > 0

    def test_region_latency_override(self):
        from repro.simnet import LinkSpec
        net = Network(seed=1)
        net.add_node("a", region="lab")
        net.add_node("b", region="lab")
        net.set_region_latency("lab", "lab", LinkSpec(0.5, 0.0))
        trace = net.trace()
        trace.hop("a", "b", 0)
        assert trace.elapsed_ms < 1.0

    def test_node_listing_and_repr(self):
        net = Network(seed=1)
        node = net.add_node("x")
        assert net.has_node("x") and not net.has_node("y")
        assert "x" in repr(node)


class TestFormsNestedPlacement:
    def test_dotted_keys_build_nested_elements(self):
        from repro.provisioning import generate_form
        form = generate_form(GUP_SCHEMA, "buddy-list")
        fragment = form.fill(
            [{"@id": "b1", "alias": "bobby", "im-address": "bob@im"}]
        )
        buddy = fragment.children[0]
        assert buddy.child("alias").text == "bobby"
        assert buddy.child("im-address").text == "bob@im"
        doc = PNode("user", {"id": "u"})
        doc.append(fragment)
        assert GUP_SCHEMA.validate(doc) == []


class TestPortabilityKeepSource:
    def test_drop_source_false_keeps_old_registration(self):
        from repro.services import CarrierPortabilityService
        from repro.workloads import SyntheticAdapter
        world = build_converged_world()
        porter = CarrierPortabilityService(world.server)
        att = SyntheticAdapter("gup.att.com")
        world.network.add_node("gup.att.com", region="core")
        porter.port_user(
            "arnaud", "gup.spcs.com", att, drop_source=False
        )
        stores = world.server.coverage.stores_for(
            "/user[@id='arnaud']/game-scores"
        )
        assert "gup.spcs.com" in stores
        assert "gup.att.com" in stores

    def test_unknown_source_store(self):
        from repro.services import CarrierPortabilityService
        from repro.workloads import SyntheticAdapter
        world = build_converged_world()
        porter = CarrierPortabilityService(world.server)
        with pytest.raises(KeyError):
            porter.port_user(
                "arnaud", "gup.nowhere.com",
                SyntheticAdapter("gup.att.com"),
            )


class TestMiscSmall:
    def test_provenance_len(self):
        tracker = ProvenanceTracker()
        assert len(tracker) == 0
        tracker.record(
            0.0, RequestContext("a"),
            "/user[@id='u']/presence", ["s1"],
        )
        assert len(tracker) == 1

    def test_adjunct_regions_empty_property(self):
        assert SchemaAdjunct().regions("nothing") == []

    def test_sim_card_swap_identity(self):
        from repro.stores import SimCard
        sim = SimCard("imsi-9", "447700900999")
        assert sim.imsi == "imsi-9"
        assert sim.msisdn == "447700900999"

    def test_ldap_referral_none_without_delegation(self):
        from repro.stores import DirectoryServer, LdapEntry
        server = DirectoryServer("ldap", suffix="o=x")
        server.add(LdapEntry("o=x", ["organization"], {"o": ["x"]}))
        assert server.referral_for("uid=a,o=x") is None
        assert server.entry_count == 1

    def test_path_repr_stable(self):
        path = parse_path("/user[@id='a']/presence/@x")
        assert repr(path) == "/user[@id='a']/presence/@x"

    def test_enterprise_filtering_write(self):
        from repro.pxml import parse
        world = build_converged_world()
        adapter = world.adapter("gup.lucent.com")
        adapter.put(
            "/user[@id='alice']/address-book",
            parse(
                "<address-book>"
                "<item id='p9' type='personal'><name>P</name></item>"
                "<item id='c9' type='corporate'><name>C</name></item>"
                "</address-book>"
            ),
        )
        names = [
            c.display_name for c in world.lucent.contacts("alice")
        ]
        assert names == ["C"]  # personal item filtered at the firewall

    def test_contact_record_validation(self):
        from repro.stores import ContactRecord
        with pytest.raises(StoreError):
            ContactRecord("1", "X", kind="extraterrestrial")
