"""Integration tests for the converged services: selective reach-me,
roaming profile, carrier portability (the paper's Section 2 examples)."""

import pytest

from repro.access import RequestContext
from repro.pxml import evaluate_values
from repro.services import (
    CarrierPortabilityService,
    ReachMeService,
    RoamingProfileService,
)
from repro.workloads import SyntheticAdapter, build_converged_world


@pytest.fixture()
def world():
    return build_converged_world()


@pytest.fixture()
def reachme(world):
    return ReachMeService(world.server, world.executor)


class TestReachMe:
    def test_office_hours_available_routes_to_office(self, world,
                                                     reachme):
        # Alice: presence available, office line idle, softphone online.
        decision = reachme.decide("alice", hour=11, weekday=1)
        assert decision.rule_name == "office-when-available"
        assert decision.first_target == "office-phone"
        assert "softphone" in decision.targets

    def test_busy_office_line_skipped(self, world, reachme):
        world.switch.set_busy("9085820001", True)
        decision = reachme.decide("alice", hour=11, weekday=1)
        assert decision.first_target == "softphone"

    def test_offline_softphone_skipped(self, world, reachme):
        world.switch.set_busy("9085820001", True)
        world.registrar.unregister(
            "sip:alice@lucent.com", "135.104.3.7"
        )
        decision = reachme.decide("alice", hour=11, weekday=1)
        # Neither office (busy) nor softphone (offline) survive.
        assert decision.first_target not in ("office-phone", "softphone")

    def test_meeting_goes_to_voicemail(self, world, reachme):
        # The Lucent calendar has a 9-10am staff meeting on Monday.
        decision = reachme.decide("alice", hour=9, weekday=0)
        assert decision.state.in_meeting
        assert decision.rule_name == "meeting-or-busy"
        assert decision.first_target == "voicemail"

    def test_commute_routes_to_cell_when_on_air(self, world, reachme):
        world.msc.handle_power_on("9085551111", "nj-1")
        decision = reachme.decide("alice", hour=8, weekday=2)
        assert decision.rule_name == "commute-cell"
        assert decision.first_target == "cell-phone"

    def test_commute_off_air_falls_through(self, world, reachme):
        decision = reachme.decide("alice", hour=8, weekday=2)
        assert decision.rule_name != "commute-cell"

    def test_friday_work_from_home(self, world, reachme):
        decision = reachme.decide("alice", hour=11, weekday=4)
        assert decision.rule_name == "friday-home"
        assert decision.first_target == "home-phone"

    def test_away_presence_not_office(self, world, reachme):
        world.presence.set_status("alice", "busy")
        decision = reachme.decide("alice", hour=14, weekday=1)
        assert decision.rule_name == "meeting-or-busy"

    def test_aggregation_uses_multiple_sources(self, world, reachme):
        decision = reachme.decide("alice", hour=11, weekday=1)
        assert decision.sources_used >= 4
        assert decision.trace.elapsed_ms > 0

    def test_decision_latency_under_paper_bound(self, world, reachme):
        # "rendered in just a few seconds" — simulated end-to-end.
        decision = reachme.decide("alice", hour=11, weekday=1)
        assert decision.trace.elapsed_ms < 3_000

    def test_cached_decisions_faster(self, world, reachme):
        cold = reachme.decide("alice", hour=11, weekday=1, now=0.0)
        warm = reachme.decide(
            "alice", hour=11, weekday=1, now=10.0, use_cache=True
        )
        warm2 = reachme.decide(
            "alice", hour=11, weekday=1, now=20.0, use_cache=True
        )
        assert warm2.trace.elapsed_ms < cold.trace.elapsed_ms


class TestRoaming:
    def test_fetch_corporate_calendar_from_europe(self, world):
        service = RoamingProfileService(world.server, world.executor)
        fragment, trace = service.fetch_while_roaming(
            "alice", "calendar", roaming_node="gup.device.alice"
        )
        subjects = evaluate_values(
            fragment, "/user/calendar/appointment/subject"
        )
        assert "Staff meeting" in subjects
        # The wireless leg is paid, but the data arrives.
        assert trace.elapsed_ms > 100

    def test_synchronize_address_book_merges_both_ways(self, world):
        service = RoamingProfileService(world.server, world.executor)
        report, trace = service.synchronize_address_book(
            "alice", "gup.device.alice"
        )
        assert report.mode == "slow"  # first-ever sync
        # Device now carries the network's entry and vice versa.
        device_names = [
            e.name for e in world.phones["alice-cell"].all_entries()
        ]
        assert any("Mom" in n for n in device_names)
        network_names = [
            c.display_name for c in world.yahoo.contacts("alice")
        ]
        assert any("Bob Cell" in n for n in network_names)

    def test_repeated_syncs_stable_and_lossless(self, world):
        # The bridge rebuilds endpoints per call, so every bridge sync
        # is a slow (snapshot) sync. The phone cannot store emails, so
        # its copy of a corporate contact is forever a projection of
        # the network copy — each sync re-reconciles that one item —
        # but the outcome must be STABLE (no growth sync over sync)
        # and LOSSLESS (the email survives on the network side).
        service = RoamingProfileService(world.server, world.executor)
        service.synchronize_address_book(
            "alice", "gup.device.alice", now=0.0
        )
        second, _ = service.synchronize_address_book(
            "alice", "gup.device.alice", now=100.0
        )
        third, _ = service.synchronize_address_book(
            "alice", "gup.device.alice", now=200.0
        )
        fourth, _ = service.synchronize_address_book(
            "alice", "gup.device.alice", now=300.0
        )
        assert fourth.bytes == third.bytes  # fixed point reached
        assert len(third.conflicts) == len(second.conflicts) <= 1
        rick = [
            c for c in world.yahoo.contacts("alice")
            if c.contact_id == "l1"
        ]
        assert rick and rick[0].emails  # email never lost


class TestPortability:
    def test_port_user_moves_components(self, world):
        service = CarrierPortabilityService(world.server)
        att = SyntheticAdapter("gup.att.com", region="core")
        world.network.add_node("gup.att.com", region="core")
        report = service.port_user("arnaud", "gup.spcs.com", att)
        assert report.moved  # address-book, game-scores, presence...
        # New carrier now serves what it supports.
        for path in report.moved:
            assert "gup.att.com" in world.server.coverage.stores_for(
                path
            )
            assert (
                "gup.spcs.com"
                not in world.server.coverage.stores_for(path)
            )

    def test_unsupported_components_reported(self, world):
        service = CarrierPortabilityService(world.server)
        att = SyntheticAdapter("gup.att.com", region="core")
        world.network.add_node("gup.att.com", region="core")
        report = service.port_user("arnaud", "gup.spcs.com", att)
        # The HLR-ish components (self/location/services) have no home
        # in the synthetic AT&T store.
        assert any("location" in p for p in report.unsupported)

    def test_data_still_resolvable_after_port(self, world):
        service = CarrierPortabilityService(world.server)
        att = SyntheticAdapter("gup.att.com", region="core")
        world.network.add_node("gup.att.com", region="core")
        service.port_user("arnaud", "gup.spcs.com", att)
        referral = world.server.resolve(
            "/user[@id='arnaud']/address-book",
            RequestContext("arnaud", relationship="self"),
        )
        stores = referral.parts[0].store_ids
        assert "gup.att.com" in stores
        assert "gup.spcs.com" not in stores


class TestWifiHotspotRouting:
    """Section 2.2: 'near a WiFi hot-spot she can be reached on her
    laptop via email, IM, and VoIP'."""

    def test_online_evening_routes_to_im(self, world):
        service = ReachMeService(world.server, world.executor)
        world.isp.connect("alice", "135.104.9.1")
        decision = service.decide("alice", hour=21, weekday=2)
        assert decision.rule_name == "online-off-hours"
        assert decision.first_target == "im"

    def test_offline_evening_falls_back(self, world):
        service = ReachMeService(world.server, world.executor)
        decision = service.decide("alice", hour=21, weekday=2)
        assert decision.rule_name != "online-off-hours"

    def test_working_hours_still_prefer_office(self, world):
        service = ReachMeService(world.server, world.executor)
        world.isp.connect("alice", "135.104.9.1")
        decision = service.decide("alice", hour=11, weekday=1)
        assert decision.first_target == "office-phone"

    def test_call_status_aggregates_three_networks(self, world):
        from repro.access import RequestContext
        from repro.pxml import evaluate
        world.isp.connect("alice", "135.104.9.1")
        fragment, _trace = world.executor.referral(
            "client-app", "/user[@id='alice']/call-status",
            RequestContext("alice", relationship="self"),
        )
        networks = sorted(
            node.attrs["network"]
            for node in evaluate(fragment, "/user/call-status")
        )
        assert networks == ["internet", "pstn", "voip"]
