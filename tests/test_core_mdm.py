"""Unit tests for the MDM topology variants (paper Section 5.1)."""

import pytest

from repro.errors import GupsterError
from repro.access import RequestContext
from repro.core import (
    CentralizedMdm,
    GupsterServer,
    HierarchicalMdm,
    UserDistributedMdm,
)
from repro.simnet import Network
from repro.workloads import SyntheticAdapter


PRESENCE = "/user[@id='u1']/presence"
WALLET_CARD = "/user[@id='u1']/wallet"


def ctx():
    return RequestContext("u1", relationship="self")


def make_server(name, components=("presence",), user="u1"):
    server = GupsterServer(name)
    store = SyntheticAdapter("store.%s" % name)
    store.add_user(user, list(components))
    server.join(store)
    return server


class TestCentralizedMdm:
    def setup_method(self):
        self.network = Network(seed=5)
        self.network.add_node("client", region="internet")
        for mirror in ("mdm.us", "mdm.eu"):
            self.network.add_node(mirror, region="core")
        self.server = make_server("central")
        self.mdm = CentralizedMdm(
            self.network, self.server, ["mdm.us", "mdm.eu"]
        )

    def test_resolves_via_first_mirror(self):
        referral, trace = self.mdm.resolve("client", PRESENCE, ctx())
        assert referral.parts
        assert trace.hops == 2

    def test_fails_over_to_second_mirror(self):
        self.network.fail("mdm.us")
        referral, trace = self.mdm.resolve("client", PRESENCE, ctx())
        assert referral.parts
        # Timeout charged for the dead mirror, then success via mdm.eu.
        assert trace.elapsed_ms > self.network.detect_timeout_ms

    def test_all_mirrors_down(self):
        self.network.fail("mdm.us")
        self.network.fail("mdm.eu")
        with pytest.raises(GupsterError):
            self.mdm.resolve("client", PRESENCE, ctx())

    def test_needs_a_mirror(self):
        with pytest.raises(ValueError):
            CentralizedMdm(self.network, self.server, [])

    def test_exposure_every_mirror_sees_all(self):
        exposure = self.mdm.meta_data_exposure()
        assert set(exposure) == {"mdm.us", "mdm.eu"}
        assert len(set(exposure.values())) == 1


class TestUserDistributedMdm:
    def setup_method(self):
        self.network = Network(seed=5)
        for node in ("client", "whitepages", "mdm.carrier", "mdm.bank"):
            self.network.add_node(node)
        self.mdm = UserDistributedMdm(self.network, "whitepages")
        self.carrier_server = make_server("carrier")
        self.mdm.assign("u1", "mdm.carrier", self.carrier_server)

    def test_listed_user_via_whitepages(self):
        referral, trace = self.mdm.resolve("client", PRESENCE, ctx())
        assert referral.parts
        # White pages RT + MDM RT.
        assert trace.hops == 4

    def test_unknown_user(self):
        with pytest.raises(GupsterError):
            self.mdm.resolve(
                "client", "/user[@id='ghost']/presence",
                RequestContext("ghost", relationship="self"),
            )

    def test_unlisted_user_needs_hint(self):
        unlisted_server = make_server("private", user="u2")
        self.mdm.assign(
            "u2", "mdm.bank", unlisted_server, unlisted=True
        )
        request = "/user[@id='u2']/presence"
        u2 = RequestContext("u2", relationship="self")
        with pytest.raises(GupsterError) as excinfo:
            self.mdm.resolve("client", request, u2)
        assert "unlisted" in str(excinfo.value)
        referral, trace = self.mdm.resolve(
            "client", request, u2, hint="mdm.bank"
        )
        assert referral.parts
        assert trace.hops == 2  # no white-pages hop with a hint

    def test_wrong_hint_rejected(self):
        with pytest.raises(GupsterError):
            self.mdm.resolve("client", PRESENCE, ctx(),
                             hint="mdm.wrong")

    def test_exposure_split_by_organization(self):
        other = make_server("other", user="u3")
        self.mdm.assign("u3", "mdm.bank", other)
        exposure = self.mdm.meta_data_exposure()
        assert exposure["mdm.carrier"] == (
            self.carrier_server.coverage.entry_count()
        )
        assert exposure["mdm.bank"] == other.coverage.entry_count()


class TestHierarchicalMdm:
    def setup_method(self):
        self.network = Network(seed=5)
        for node in ("client", "mdm.carrier", "mdm.bank"):
            self.network.add_node(node)
        self.mdm = HierarchicalMdm(self.network)
        self.primary = make_server("primary", components=("presence",))
        self.bank = GupsterServer("bank")
        bank_store = SyntheticAdapter("store.bank")
        bank_store.add_user("u1", ["preferences"])
        self.bank.join(bank_store)
        self.bank.register_component(WALLET_CARD, "store.bank")
        self.mdm.set_primary("u1", "mdm.carrier", self.primary)
        self.mdm.delegate("u1", WALLET_CARD, "mdm.bank", self.bank)

    def test_primary_handles_undelegated(self):
        referral, trace = self.mdm.resolve("client", PRESENCE, ctx())
        assert referral.parts
        assert trace.hops == 2

    def test_delegated_subtree_adds_a_hop(self):
        referral, trace = self.mdm.resolve("client", WALLET_CARD, ctx())
        assert referral.parts[0].store_ids == ["store.bank"]
        assert trace.hops == 4  # primary RT + delegate RT

    def test_delegation_must_belong_to_user(self):
        with pytest.raises(GupsterError):
            self.mdm.delegate(
                "u1", "/user[@id='other']/wallet", "mdm.bank", self.bank
            )

    def test_no_primary(self):
        with pytest.raises(GupsterError):
            self.mdm.resolve(
                "client", "/user[@id='nobody']/presence",
                RequestContext("nobody", relationship="self"),
            )

    def test_exposure_primary_sees_pointer_not_contents(self):
        exposure = self.mdm.meta_data_exposure()
        # Primary: its own entries + 1 opaque delegation pointer.
        assert exposure["mdm.carrier"] == (
            self.primary.coverage.entry_count() + 1
        )
        assert exposure["mdm.bank"] == self.bank.coverage.entry_count()
