"""Tests for region intersection and its use in policy narrowing."""

import string

from hypothesis import given, settings, strategies as st

from repro.access import (
    PolicyDecisionPoint,
    PolicyRule,
    RequestContext,
)
from repro.pxml import (
    Path,
    Predicate,
    Step,
    intersect_regions,
    parse_path,
    subtree_covers,
    subtree_overlaps,
)


class TestIntersectRegions:
    def test_disjoint_is_none(self):
        assert intersect_regions(
            "/user[@id='a']/presence", "/user[@id='b']/presence"
        ) is None
        assert intersect_regions(
            "/user[@id='a']/presence", "/user[@id='a']/calendar"
        ) is None

    def test_containment_returns_inner(self):
        inner = "/user[@id='a']/address-book/item[@id='7']"
        outer = "/user[@id='a']/address-book"
        assert intersect_regions(outer, inner) == parse_path(inner)
        assert intersect_regions(inner, outer) == parse_path(inner)

    def test_predicates_merge(self):
        a = "/user[@id='u']/address-book/item[@type='personal']"
        b = "/user[@id='u']/address-book/item[@id='7']"
        expected = parse_path(
            "/user[@id='u']/address-book/item[@type='personal'][@id='7']"
        )
        assert intersect_regions(a, b) == expected

    def test_wildcard_resolves_to_concrete(self):
        a = "/user[@id='u']/*"
        b = "/user[@id='u']/presence/status"
        assert intersect_regions(a, b) == parse_path(
            "/user[@id='u']/presence/status"
        )

    def test_attribute_selector_narrows(self):
        a = "/user[@id='u']/devices/device"
        b = "/user[@id='u']/devices/device/@carrier"
        assert intersect_regions(a, b) == parse_path(
            "/user[@id='u']/devices/device/@carrier"
        )

    @given(
        st.sampled_from([
            "/user[@id='u']/address-book",
            "/user[@id='u']/address-book/item[@type='personal']",
            "/user[@id='u']/address-book/item[@id='1']",
            "/user[@id='u']/*",
            "/user[@id='u']/presence",
            "/user[@id='u']/address-book/item",
        ]),
        st.sampled_from([
            "/user[@id='u']/address-book",
            "/user[@id='u']/address-book/item[@type='corporate']",
            "/user[@id='u']/address-book/item[@id='1']",
            "/user[@id='u']/presence/status",
            "/user[@id='u']/address-book/item[@id='1'][@type='personal']",
        ]),
    )
    @settings(max_examples=100)
    def test_intersection_contained_in_both(self, a, b):
        inter = intersect_regions(a, b)
        if inter is None:
            assert not subtree_overlaps(a, b)
        else:
            assert subtree_covers(a, inter)
            assert subtree_covers(b, inter)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["item", "*"]),
                st.dictionaries(
                    st.sampled_from(["id", "type"]),
                    st.text(alphabet=string.ascii_lowercase,
                            min_size=1, max_size=3),
                    max_size=2,
                ),
            ),
            min_size=1, max_size=3,
        )
    )
    @settings(max_examples=100)
    def test_idempotent(self, raw_steps):
        steps = tuple(
            Step(name, tuple(
                Predicate(k, v) for k, v in preds.items()
            ))
            for name, preds in raw_steps
        )
        path = Path(steps)
        assert intersect_regions(path, path) == path


class TestNarrowingUsesIntersection:
    def test_partial_overlap_grant_is_exact(self):
        pdp = PolicyDecisionPoint()
        rules = [
            PolicyRule(
                "u",
                "/user[@id='u']/address-book/item[@type='personal']",
                "permit",
            ),
        ]
        decision = pdp.decide(
            rules,
            "/user[@id='u']/address-book/item[@id='7']",
            RequestContext("r"),
        )
        assert decision.permit
        granted = decision.permitted_paths[0]
        # The grant carries BOTH constraints: the rule's type AND the
        # request's id — never more than either side allows.
        preds = granted.steps[-1].predicate_map()
        assert preds == {"type": "personal", "id": "7"}

    def test_grant_never_exceeds_request(self):
        pdp = PolicyDecisionPoint()
        rules = [
            PolicyRule("u", "/user[@id='u']/address-book", "permit"),
        ]
        request = "/user[@id='u']/address-book/item[@id='9']"
        decision = pdp.decide(rules, request, RequestContext("r"))
        for granted in decision.permitted_paths:
            assert subtree_covers(request, granted)
