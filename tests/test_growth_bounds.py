"""Runtime regressions for the container bounds gupcheck v4 pinned.

Every fix the resource-bound analysis drove — the recording
listener's record window, the span recorder's retention cap, the
provenance ledger window, the coverage replication-log window, the
subscription hub's delivery list and poller state, and the
``parse_path`` memo's clear-when-full cap — gets a test that fills
past the bound and asserts the container stays capped (and that the
truncation is *accounted*, never silent).
"""

import math

import pytest

from repro.access import RequestContext
from repro.bus.listeners import RecordingListener
from repro.bus.log import ChangeRecord
from repro.core import SubscriptionHub
from repro.core.coverage import CoverageError, CoverageMap
from repro.core.provenance import ProvenanceTracker
from repro.core.subscription import Delivery
from repro.obs.spans import SpanRecorder
from repro.pxml.path import (
    _PARSE_CACHE, _PARSE_CACHE_MAX, parse_path,
)
from repro.workloads import build_converged_world


def records(n, start=1):
    return [
        ChangeRecord(
            start + i, float(start + i),
            "/user[@id='u%d']/im" % (start + i), "v%d" % (start + i),
            "u%d" % (start + i), "main",
        )
        for i in range(n)
    ]


class TestRecordingListenerWindow:
    def test_sustained_load_stays_at_the_cap(self):
        listener = RecordingListener("tap", max_records=8)
        for wave in range(5):
            listener.deliver(
                records(4, start=1 + wave * 4), float(wave),
                bus=None, memo=None,
            )
        assert len(listener.received) == 8
        assert len(listener.delivered_at) == 8
        assert listener.dropped == 12
        # The window keeps the *newest* records, in arrival order.
        assert [r.seq for r in listener.received] == list(
            range(13, 21)
        )

    def test_lists_stay_in_lockstep(self):
        listener = RecordingListener("tap", max_records=3)
        listener.deliver(records(5), 7.0, bus=None, memo=None)
        assert len(listener.received) == len(listener.delivered_at)
        assert listener.delivered_at == [7.0, 7.0, 7.0]

    def test_under_the_cap_nothing_is_dropped(self):
        listener = RecordingListener("tap")
        listener.deliver(records(10), 1.0, bus=None, memo=None)
        assert len(listener.received) == 10
        assert listener.dropped == 0

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            RecordingListener("tap", max_records=0)


class TestSpanRecorderRetention:
    def test_finished_spans_evict_oldest_first(self):
        recorder = SpanRecorder(max_spans=4)
        for i in range(10):
            recorder.leaf("hop%d" % i, float(i), float(i) + 0.5)
        assert len(recorder.spans) == 4
        assert recorder.dropped == 6
        assert [s.name for s in recorder.spans] == [
            "hop6", "hop7", "hop8", "hop9",
        ]

    def test_open_spans_are_never_evicted(self):
        recorder = SpanRecorder(max_spans=3)
        root = recorder.start("query", 0.0)
        for i in range(8):
            recorder.leaf(
                "hop%d" % i, float(i), float(i) + 0.5,
                parent_id=root.span_id,
            )
        assert root in recorder.spans
        assert root in recorder.open_spans()
        # The cap holds overall: the open root plus the newest leaves.
        assert len(recorder.spans) == 3

    def test_all_open_spans_may_exceed_the_cap(self):
        # Eviction never drops an open span, even over the cap —
        # span-balance guarantees they finish in bounded time.
        recorder = SpanRecorder(max_spans=2)
        spans = [recorder.start("s%d" % i, float(i)) for i in range(5)]
        assert len(recorder.spans) == 5
        assert recorder.dropped == 0
        for i, span in enumerate(spans):
            recorder.finish(span, 10.0 + i)

    def test_default_cap_is_finite(self):
        recorder = SpanRecorder()
        assert recorder.max_spans > 0
        assert math.isfinite(recorder.max_spans)

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanRecorder(max_spans=0)


class TestProvenanceLedgerWindow:
    def _fill(self, tracker, n):
        for i in range(n):
            tracker.record(
                float(i),
                RequestContext("app%d" % i, purpose="query"),
                "/user[@id='arnaud']/im", ["store-im"],
            )

    def test_window_holds_and_truncation_is_accounted(self):
        tracker = ProvenanceTracker(max_records=5)
        self._fill(tracker, 12)
        assert len(tracker) == 5
        assert tracker.dropped == 7

    def test_audit_still_works_over_the_window(self):
        tracker = ProvenanceTracker(max_records=5)
        self._fill(tracker, 12)
        disclosures = tracker.disclosures_for("arnaud")
        assert [r.requester for r in disclosures] == [
            "app7", "app8", "app9", "app10", "app11",
        ]

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            ProvenanceTracker(max_records=0)


class TestCoverageChangelogWindow:
    def test_log_stays_at_the_cap(self):
        coverage = CoverageMap(max_changelog=8)
        for i in range(20):
            coverage.register(
                "/user[@id='u%d']/im" % i, "store-im"
            )
        assert len(coverage._changelog) == 8
        assert coverage.revision == 20

    def test_fallen_behind_mirror_fails_loudly(self):
        coverage = CoverageMap(max_changelog=8)
        for i in range(20):
            coverage.register(
                "/user[@id='u%d']/im" % i, "store-im"
            )
        with pytest.raises(CoverageError, match="full resync"):
            coverage.changes_since(0)

    def test_mirror_inside_the_window_replicates(self):
        coverage = CoverageMap(max_changelog=8)
        for i in range(20):
            coverage.register(
                "/user[@id='u%d']/im" % i, "store-im"
            )
        feed = coverage.changes_since(15)
        assert [c[0] for c in feed] == [16, 17, 18, 19, 20]
        mirror = CoverageMap()
        mirror.revision = 15
        assert mirror.apply_changes(feed) == 5
        assert mirror.revision == 20

    def test_within_window_history_is_complete(self):
        coverage = CoverageMap(max_changelog=100)
        for i in range(20):
            coverage.register(
                "/user[@id='u%d']/im" % i, "store-im"
            )
        assert len(coverage.changes_since(0)) == 20


class TestSubscriptionHubBounds:
    def test_delivery_list_stays_at_the_cap(self):
        world = build_converged_world()
        hub = SubscriptionHub(
            world.sim, world.network, world.server, world.executor,
            max_deliveries=3,
        )
        for i in range(9):
            hub._record_delivery(
                Delivery("poll", "v%d" % i, None, float(i))
            )
        assert len(hub.deliveries) == 3
        assert hub.dropped_deliveries == 6
        assert [d.value for d in hub.deliveries] == [
            "v6", "v7", "v8",
        ]

    def test_poll_state_is_swept_after_until(self):
        world = build_converged_world()
        hub = SubscriptionHub(
            world.sim, world.network, world.server, world.executor
        )
        hub.start_polling(
            "client-app", "/user[@id='arnaud']/presence",
            "/user/presence/status",
            RequestContext("mom", relationship="family",
                           purpose="query"),
            interval_ms=1000, until=5_000,
        )
        world.sim.run(until=4_000)
        assert len(hub._poll_state) == 1
        world.sim.run(until=10_000)
        assert hub._poll_state == {}

    def test_denied_poller_state_is_dropped_immediately(self):
        world = build_converged_world()
        hub = SubscriptionHub(
            world.sim, world.network, world.server, world.executor
        )
        hub.start_polling(
            "client-app", "/user[@id='arnaud']/presence",
            "/user/presence/status",
            RequestContext("telemarketer"),
            interval_ms=1000, until=50_000,
        )
        assert len(hub._poll_state) == 1
        world.sim.run(until=2_000)
        assert hub._poll_state == {}


class TestParsePathMemo:
    def test_memo_clears_when_full(self):
        parse_path("/user[@id='warm']/im")  # ensure non-empty
        _PARSE_CACHE.clear()
        for i in range(_PARSE_CACHE_MAX):
            parse_path("/user[@id='u%d']/im" % i)
        assert len(_PARSE_CACHE) == _PARSE_CACHE_MAX
        # The next *distinct* parse crosses the cap: clear-when-full.
        parse_path("/user[@id='overflow']/im")
        assert len(_PARSE_CACHE) == 1
        # And it keeps serving parses correctly afterwards.
        parsed = parse_path("/user[@id='u1']/im")
        assert parsed.user_id() == "u1"
        assert len(_PARSE_CACHE) == 2

    def test_memo_never_exceeds_the_cap_under_churn(self):
        _PARSE_CACHE.clear()
        for i in range(_PARSE_CACHE_MAX * 2 + 17):
            parse_path("/user[@id='churn%d']/a" % i)
            assert len(_PARSE_CACHE) <= _PARSE_CACHE_MAX
