"""The sim ≡ real equivalence gate (ISSUE 9 satellite + tentpole
deliverable).

One sans-io program, two drivers: :class:`SimnetDriver` (virtual
time) and :class:`WallTransport` (asyncio, ``time_scale=0``). For any
request trace and any fault schedule, both drivers must walk the
program through the *same* decision sequence — same values, same
shield outcomes, same degraded parts, same error classes. Hypothesis
draws the traces and the faults.

Worlds are twins: same :class:`SyntheticAdapter` seeds, same node
names, same retry policy. The ``now`` per request is supplied
explicitly on both sides so cache-TTL decisions can't diverge.

A constraint this test leans on (also documented in DESIGN.md §4.9):
the two referral parts have *disjoint* store sets (personal on
alpha∥beta, corporate only on corp). Wall fork legs run concurrently
while sim legs run sequentially, so legs touching a *shared* endpoint
could observe its health ledger in different orders. With disjoint
sets per part, each endpoint's health is driven by exactly one leg
and the interleaving cannot matter.
"""

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access import RequestContext
from repro.core import ComponentCache, GupsterServer, RetryPolicy
from repro.pxml import parse_path
from repro.sansio import (
    SansIoQueryEngine,
    StandaloneQueryHost,
    decision_of,
)
from repro.serve import FaultPlan, WallTransport
from repro.simnet import Network
from repro.simnet.driver import SimnetDriver
from repro.workloads import SyntheticAdapter

BOOK = "/user[@id='u1']/address-book"
PERSONAL = BOOK + "/item[@type='personal']"
CORPORATE = BOOK + "/item[@type='corporate']"

STORES = ("gup.alpha.com", "gup.beta.com", "gup.corp.com")
SERVER = "gupster"
CLIENT = "client"

#: Links whose forced-drop budgets the fault schedule may charge.
DROPPABLE_LINKS = tuple(
    (SERVER, store) for store in STORES
) + ((CLIENT, SERVER),)


def build_server():
    server = GupsterServer(
        SERVER,
        cache=ComponentCache(
            capacity=16, default_ttl_ms=60_000.0,
            stale_grace_ms=120_000.0,
        ),
        enforce_policies=False,
    )
    for store_id, seed in (
        ("gup.alpha.com", 5), ("gup.beta.com", 5), ("gup.corp.com", 9),
    ):
        adapter = SyntheticAdapter(store_id, seed=seed)
        adapter.add_user("u1", ["address-book"])
        server.join(adapter, user_ids=[])
    server.register_component(PERSONAL, "gup.alpha.com")
    server.register_component(PERSONAL, "gup.beta.com")
    server.register_component(CORPORATE, "gup.corp.com")
    return server


def build_sim_side(failed, drops, retry_policy):
    network = Network(seed=16)
    network.add_node(SERVER, region="core")
    network.add_node(CLIENT, region="internet")
    network.add_node("gup.alpha.com", region="internet")
    network.add_node("gup.beta.com", region="core")
    network.add_node("gup.corp.com", region="enterprise")
    for node in failed:
        network.fail(node)
    for (a, b), count in drops.items():
        network.force_drops(a, b, count)
    server = build_server()
    host = StandaloneQueryHost(
        server, server_node=SERVER, retry_policy=retry_policy
    )
    return network, server, SansIoQueryEngine(host)


def build_wall_side(failed, drops, retry_policy):
    faults = FaultPlan()
    for node in failed:
        faults.fail(node)
    for (a, b), count in drops.items():
        faults.force_drops(a, b, count)
    server = build_server()
    host = StandaloneQueryHost(
        server, server_node=SERVER, retry_policy=retry_policy
    )
    engine = SansIoQueryEngine(host)
    transport = WallTransport(server.adapters, faults=faults)
    return transport, engine


def run_request(pattern, path, context, now, runner, engine):
    if pattern == "cached":
        program = engine.cached(CLIENT, parse_path(path), context, now)
    else:
        program = engine.chain(CLIENT, parse_path(path), context, now)
    try:
        return decision_of(runner(program))
    except Exception as err:  # noqa: BLE001 - the decision IS the record
        return decision_of(err)


requests_strategy = st.lists(
    st.tuples(
        st.sampled_from(["chaining", "cached"]),
        st.sampled_from([BOOK, PERSONAL, CORPORATE]),
    ),
    min_size=1, max_size=6,
)

faults_strategy = st.fixed_dictionaries({
    "failed": st.sets(st.sampled_from(STORES)),
    "drops": st.dictionaries(
        st.sampled_from(DROPPABLE_LINKS),
        st.integers(min_value=1, max_value=3),
        max_size=len(DROPPABLE_LINKS),
    ),
    "max_attempts": st.integers(min_value=1, max_value=3),
})


@settings(max_examples=40, deadline=None)
@given(requests=requests_strategy, faults=faults_strategy)
def test_sim_and_wall_drivers_agree(requests, faults):
    retry_policy = RetryPolicy(
        max_attempts=faults["max_attempts"], base_backoff_ms=10.0
    )
    network, sim_server, sim_engine = build_sim_side(
        faults["failed"], faults["drops"], retry_policy
    )
    transport, wall_engine = build_wall_side(
        faults["failed"], faults["drops"], retry_policy
    )

    sim_decisions = []
    wall_decisions = []
    for index, (pattern, path) in enumerate(requests):
        context = RequestContext("app")
        now = float(index) * 1000.0
        sim_decisions.append(run_request(
            pattern, path, context, now,
            lambda p: SimnetDriver(sim_server.adapters).run(
                p, network.trace()
            ),
            sim_engine,
        ))
        wall_decisions.append(run_request(
            pattern, path, context, now,
            lambda p: asyncio.run(transport.run(p)),
            wall_engine,
        ))

    assert sim_decisions == wall_decisions


@settings(max_examples=15, deadline=None)
@given(
    requests=requests_strategy,
    slow=st.dictionaries(
        st.sampled_from(DROPPABLE_LINKS),
        st.floats(min_value=1.0, max_value=50.0),
        max_size=2,
    ),
)
def test_slow_links_never_change_decisions(requests, slow):
    """Wall-side latency faults (slow replies) change *timing*, never
    values: the decisions match a fault-free sim baseline."""
    retry_policy = RetryPolicy(max_attempts=2, base_backoff_ms=10.0)
    network, sim_server, sim_engine = build_sim_side(
        set(), {}, retry_policy
    )
    faults = FaultPlan()
    for (a, b), extra in slow.items():
        faults.slow_link(a, b, extra)
    server = build_server()
    host = StandaloneQueryHost(
        server, server_node=SERVER, retry_policy=retry_policy
    )
    wall_engine = SansIoQueryEngine(host)
    transport = WallTransport(server.adapters, faults=faults)

    for index, (pattern, path) in enumerate(requests):
        context = RequestContext("app")
        now = float(index) * 1000.0
        sim_record = run_request(
            pattern, path, context, now,
            lambda p: SimnetDriver(sim_server.adapters).run(
                p, network.trace()
            ),
            sim_engine,
        )
        wall_record = run_request(
            pattern, path, context, now,
            lambda p: asyncio.run(transport.run(p)),
            wall_engine,
        )
        assert sim_record == wall_record
        assert sim_record["ok"]
