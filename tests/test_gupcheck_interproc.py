"""gupcheck v2 (whole-program) tests: project IR + call graph
construction (adapter dispatch, SCC cycles), interprocedural taint
summaries (sanitizer kill, guard idiom, transitive egress), the
simulator soundness rules (sim-race, iter-order, handler-reentrancy),
the incremental cache (invalidation on edit, <30%% re-analysis after a
one-file change), SARIF output shape, and baseline round-trips."""

import json
import os
import subprocess
import sys
import textwrap

from repro.analysis import Analyzer, check_source, default_rules
from repro.analysis.baseline import (
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.analysis.cache import AnalysisCache
from repro.analysis.interproc.summaries import Summary
from repro.analysis.ir.callgraph import CallGraph
from repro.analysis.ir.project import (
    Project,
    module_name_for,
    tarjan_sccs,
)
from repro.analysis.rules import (
    HandlerReentrancyRule,
    IterOrderRule,
    ShieldEgressInterprocRule,
    SimRaceRule,
)
from repro.analysis.sarif import to_sarif, to_sarif_json

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")


def dedent(source):
    return textwrap.dedent(source).lstrip("\n")


# ---------------------------------------------------------------------------
# shared fixture project: an adapter family + services over it
# ---------------------------------------------------------------------------

ADAPTER_BASE = dedent(
    """
    class GupAdapter:
        def get(self, path, context=None):
            raise NotImplementedError

        def export_user(self, user):
            raise NotImplementedError
    """
)

ADAPTER_HLR = dedent(
    """
    from repro.adapters.base import GupAdapter


    class HlrAdapter(GupAdapter):
        def get(self, path, context=None):
            return {"msisdn": path}
    """
)

SERVICES = dedent(
    """
    from repro.adapters.base import GupAdapter
    from repro.adapters.hlr import HlrAdapter


    class Pep:
        def enforce(self, path, context):
            return True


    def fetch_raw(adapter: GupAdapter, path):
        return adapter.get(path)


    class LeakyService:
        def __init__(self):
            self.adapter = HlrAdapter()

        def lookup(self, path, context):
            data = self.adapter.get(path)
            return data


    class SafeService:
        def __init__(self):
            self.adapter = HlrAdapter()
            self.pep = Pep()

        def lookup(self, path, context):
            data = self.adapter.get(path)
            self.pep.enforce(path, context)
            return data


    class ChainedService:
        def __init__(self):
            self.adapter = HlrAdapter()

        def lookup(self, path, context):
            return fetch_raw(self.adapter, path)
    """
)


def project():
    return Project.from_sources({
        "repro/adapters/base.py": ADAPTER_BASE,
        "repro/adapters/hlr.py": ADAPTER_HLR,
        "repro/services/mix.py": SERVICES,
    })


# ---------------------------------------------------------------------------
# project IR: module naming, import SCCs, deep hashes
# ---------------------------------------------------------------------------

class TestProjectIR:
    def test_module_name_for(self):
        assert module_name_for("repro/core/server.py") == (
            "repro.core.server"
        )
        assert module_name_for("repro/core/__init__.py") == "repro.core"

    def test_tarjan_orders_dependencies_first(self):
        graph = {"a": ["b"], "b": ["c"], "c": []}
        sccs = tarjan_sccs(sorted(graph), lambda n: graph[n])
        assert sccs == [("c",), ("b",), ("a",)]

    def test_import_cycle_lands_in_one_scc(self):
        proj = Project.from_sources({
            "repro/a.py": "import repro.b\nX = 1\n",
            "repro/b.py": "import repro.a\nY = 2\n",
            "repro/c.py": "Z = 3\n",
        })
        cycles = [scc for scc in proj.import_sccs if len(scc) > 1]
        assert cycles == [("repro.a", "repro.b")]

    def test_deep_sha_tracks_dependencies(self):
        before = project().deep_sha("repro/services/mix.py")
        changed = Project.from_sources({
            "repro/adapters/base.py": ADAPTER_BASE,
            "repro/adapters/hlr.py": ADAPTER_HLR.replace(
                '"msisdn"', '"imsi"'
            ),
            "repro/services/mix.py": SERVICES,
        })
        assert changed.deep_sha("repro/services/mix.py") != before
        # Its own source is unchanged, only the import closure moved.
        assert (
            changed.by_relpath["repro/services/mix.py"].info.sha
            == project().by_relpath["repro/services/mix.py"].info.sha
        )

    def test_body_edit_does_not_dirty_unrelated_modules(self):
        sources = {
            "repro/a.py": "def f():\n    return 1\n",
            "repro/b.py": "def g():\n    return 2\n",
        }
        before = Project.from_sources(sources).deep_sha("repro/b.py")
        sources["repro/a.py"] = "def f():\n    return 99\n"
        after = Project.from_sources(sources).deep_sha("repro/b.py")
        assert after == before

    def test_signature_edit_dirties_every_module(self):
        # The global interface fingerprint folds into every deep sha:
        # changing a *signature* anywhere invalidates the world.
        sources = {
            "repro/a.py": "def f():\n    return 1\n",
            "repro/b.py": "def g():\n    return 2\n",
        }
        before = Project.from_sources(sources).deep_sha("repro/b.py")
        sources["repro/a.py"] = "def f(x):\n    return 1\n"
        after = Project.from_sources(sources).deep_sha("repro/b.py")
        assert after != before

    def test_class_index_subclasses_and_dispatch(self):
        proj = project()
        subs = proj.subclasses_of("repro.adapters.base.GupAdapter")
        assert "repro.adapters.hlr.HlrAdapter" in subs
        impls = proj.implementations_of(
            "repro.adapters.base.GupAdapter", "get"
        )
        names = {fn.qualname for fn in impls}
        assert names == {
            "repro.adapters.base.GupAdapter.get",
            "repro.adapters.hlr.HlrAdapter.get",
        }


# ---------------------------------------------------------------------------
# call graph: adapter dispatch, constructor edges, SCC cycles
# ---------------------------------------------------------------------------

class TestCallGraph:
    def test_interface_dispatch_reaches_overrides(self):
        proj = project()
        graph = CallGraph(proj)
        callees = graph.callees("repro.services.mix.fetch_raw")
        # adapter.get on a GupAdapter-annotated param fans out to the
        # base *and* every project override.
        assert "repro.adapters.base.GupAdapter.get" in callees
        assert "repro.adapters.hlr.HlrAdapter.get" in callees

    def test_self_attribute_type_inference(self):
        proj = project()
        graph = CallGraph(proj)
        callees = graph.callees("repro.services.mix.LeakyService.lookup")
        # self.adapter was assigned HlrAdapter() in __init__.
        assert "repro.adapters.hlr.HlrAdapter.get" in callees

    def test_constructor_edge(self):
        proj = Project.from_sources({
            "repro/m.py": dedent(
                """
                class Widget:
                    def __init__(self):
                        self.size = 1


                def build():
                    return Widget()
                """
            ),
        })
        graph = CallGraph(proj)
        assert "repro.m.Widget.__init__" in graph.callees("repro.m.build")

    def test_mutual_recursion_in_one_scc(self):
        proj = Project.from_sources({
            "repro/m.py": dedent(
                """
                def even(n):
                    return n == 0 or odd(n - 1)


                def odd(n):
                    return n != 0 and even(n - 1)
                """
            ),
        })
        graph = CallGraph(proj)
        cycles = [scc for scc in graph.sccs if len(scc) > 1]
        assert ("repro.m.even", "repro.m.odd") in cycles


# ---------------------------------------------------------------------------
# interprocedural summaries
# ---------------------------------------------------------------------------

class TestSummaries:
    def test_adapter_read_taints_return(self):
        engine = project().taint
        engine.compute(dirty_relpaths=list(project().by_relpath))
        summary = engine.summary_of(
            "repro.services.mix.LeakyService.lookup"
        )
        assert summary is not None
        assert summary.returns_source
        assert summary.tainted_return_lines

    def test_guard_call_kills_taint(self):
        proj = project()
        engine = proj.taint
        engine.compute(dirty_relpaths=list(proj.by_relpath))
        summary = engine.summary_of(
            "repro.services.mix.SafeService.lookup"
        )
        assert summary is not None
        assert summary.guards
        assert not summary.returns_source

    def test_transitive_egress_through_helper(self):
        proj = project()
        engine = proj.taint
        engine.compute(dirty_relpaths=list(proj.by_relpath))
        helper = engine.summary_of("repro.services.mix.fetch_raw")
        assert helper is not None and helper.returns_source
        chained = engine.summary_of(
            "repro.services.mix.ChainedService.lookup"
        )
        assert chained is not None
        assert chained.returns_source

    def test_param_flow_identity(self):
        proj = Project.from_sources({
            "repro/m.py": (
                "def ident(value):\n"
                "    return value\n"
            ),
        })
        engine = proj.taint
        engine.compute(dirty_relpaths=["repro/m.py"])
        summary = engine.summary_of("repro.m.ident")
        assert summary is not None
        assert summary.param_flows == frozenset({0})
        assert not summary.returns_source

    def test_summary_dict_round_trip(self):
        original = Summary(
            qualname="repro.m.f",
            relpath="repro/m.py",
            returns_source=True,
            param_flows=frozenset({0, 2}),
            sanitizes=False,
            guards=True,
            tainted_return_lines=(7, 12),
            egress_sends=((9, 4, "send"),),
            reaches_sim_run=True,
        )
        clone = Summary.from_dict(original.to_dict())
        assert clone == original
        assert hash(clone) == hash(original)


# ---------------------------------------------------------------------------
# the interprocedural shield-egress rule, end to end
# ---------------------------------------------------------------------------

class TestShieldEgressInterproc:
    def analyze(self, tmp_path, service_source):
        (tmp_path / "repro" / "adapters").mkdir(parents=True)
        (tmp_path / "repro" / "services").mkdir(parents=True)
        (tmp_path / "repro" / "adapters" / "base.py").write_text(
            ADAPTER_BASE, encoding="utf-8"
        )
        (tmp_path / "repro" / "adapters" / "hlr.py").write_text(
            ADAPTER_HLR, encoding="utf-8"
        )
        (tmp_path / "repro" / "services" / "svc.py").write_text(
            service_source, encoding="utf-8"
        )
        return Analyzer().analyze_paths([str(tmp_path)])

    def test_seeded_leak_is_flagged(self, tmp_path):
        report = self.analyze(tmp_path, SERVICES)
        hits = [
            v for v in report.violations
            if v.rule == ShieldEgressInterprocRule.name
        ]
        assert hits, [str(v) for v in report.violations]
        assert all(v.path == "repro/services/svc.py" for v in hits)
        # The leak is LeakyService.lookup's and ChainedService.lookup's
        # `return` lines; SafeService's guarded return stays quiet.
        flagged_lines = {v.line for v in hits}
        leak_line = SERVICES.splitlines().index(
            "        return data"
        ) + 1
        assert leak_line in flagged_lines
        safe_return = [
            index + 1
            for index, line in enumerate(SERVICES.splitlines())
            if line.strip() == "return data"
        ][1]  # SafeService's return, after the enforce guard
        assert safe_return not in flagged_lines

    def test_shielded_project_is_clean(self, tmp_path):
        safe_only = dedent(
            """
            from repro.adapters.hlr import HlrAdapter


            class Pep:
                def enforce(self, path, context):
                    return True


            class SafeService:
                def __init__(self):
                    self.adapter = HlrAdapter()
                    self.pep = Pep()

                def lookup(self, path, context):
                    data = self.adapter.get(path)
                    self.pep.enforce(path, context)
                    return data
            """
        )
        report = self.analyze(tmp_path, safe_only)
        assert [
            v for v in report.violations
            if v.rule == ShieldEgressInterprocRule.name
        ] == []

    def test_send_sink_is_flagged_without_context(self, tmp_path):
        sender = dedent(
            """
            from repro.adapters.hlr import HlrAdapter


            class Pusher:
                def __init__(self, transport):
                    self.adapter = HlrAdapter()
                    self.transport = transport

                def push(self, path):
                    data = self.adapter.get(path)
                    self.transport.send(data)
            """
        )
        report = self.analyze(tmp_path, sender)
        hits = [
            v for v in report.violations
            if v.rule == ShieldEgressInterprocRule.name
        ]
        assert len(hits) == 1
        assert "send" in hits[0].message


# ---------------------------------------------------------------------------
# simulator soundness rules
# ---------------------------------------------------------------------------

class TestSimRace:
    def test_same_timestamp_same_attribute_flagged(self):
        found = check_source(SimRaceRule(), dedent(
            """
            def wire(sim, node):
                def arm():
                    node.state = "armed"

                def fire():
                    node.state = "fired"

                sim.schedule_at(5.0, arm)
                sim.schedule_at(5.0, fire)
            """
        ), "repro/simnet/fixture.py")
        assert len(found) == 1
        assert "state" in found[0].message

    def test_different_timestamps_clean(self):
        found = check_source(SimRaceRule(), dedent(
            """
            def wire(sim, node):
                def arm():
                    node.state = "armed"

                def fire():
                    node.state = "fired"

                sim.schedule_at(5.0, arm)
                sim.schedule_at(6.0, fire)
            """
        ), "repro/simnet/fixture.py")
        assert found == []

    def test_disjoint_attributes_clean(self):
        found = check_source(SimRaceRule(), dedent(
            """
            def wire(sim, node):
                def arm():
                    node.armed = True

                def fire():
                    node.fired = True

                sim.schedule_at(5.0, arm)
                sim.schedule_at(5.0, fire)
            """
        ), "repro/simnet/fixture.py")
        assert found == []


class TestIterOrder:
    def test_set_iteration_feeding_scheduler_warns(self):
        found = check_source(IterOrderRule(), dedent(
            """
            def kick(sim, nodes):
                pending = set(nodes)
                for node in pending:
                    sim.schedule(0.1, node.wake)
            """
        ), "repro/simnet/fixture.py")
        assert len(found) == 1
        assert found[0].severity == "warning"

    def test_sorted_set_iteration_clean(self):
        found = check_source(IterOrderRule(), dedent(
            """
            def kick(sim, nodes):
                pending = set(nodes)
                for node in sorted(pending):
                    sim.schedule(0.1, node.wake)
            """
        ), "repro/simnet/fixture.py")
        assert found == []

    def test_set_iteration_without_order_sensitive_sink_clean(self):
        found = check_source(IterOrderRule(), dedent(
            """
            def total(sizes):
                seen = set(sizes)
                count = 0
                for size in seen:
                    count += size
                return count
            """
        ), "repro/simnet/fixture.py")
        assert found == []


class TestHandlerReentrancy:
    def analyze(self, tmp_path, source):
        target = tmp_path / "repro" / "simnet" / "pump.py"
        target.parent.mkdir(parents=True)
        target.write_text(source, encoding="utf-8")
        report = Analyzer().analyze_paths([str(tmp_path)])
        return [
            v for v in report.violations
            if v.rule == HandlerReentrancyRule.name
        ]

    def test_callback_reentering_run_flagged(self, tmp_path):
        hits = self.analyze(tmp_path, dedent(
            """
            class Pump:
                def __init__(self, sim):
                    self.sim = sim

                def drain(self):
                    self.sim.run()

                def arm(self):
                    self.sim.schedule_at(1.0, self.drain)
            """
        ))
        assert len(hits) == 1
        assert "drain" in hits[0].message

    def test_transitive_reentry_flagged(self, tmp_path):
        hits = self.analyze(tmp_path, dedent(
            """
            class Pump:
                def __init__(self, sim):
                    self.sim = sim

                def deep(self):
                    self.sim.step()

                def middle(self):
                    self.deep()

                def arm(self):
                    self.sim.schedule_at(1.0, self.middle)
            """
        ))
        assert len(hits) == 1

    def test_benign_callback_clean(self, tmp_path):
        hits = self.analyze(tmp_path, dedent(
            """
            class Pump:
                def __init__(self, sim):
                    self.sim = sim
                    self.ticks = 0

                def tick(self):
                    self.ticks += 1

                def arm(self):
                    self.sim.schedule_at(1.0, self.tick)
            """
        ))
        assert hits == []


# ---------------------------------------------------------------------------
# incremental cache
# ---------------------------------------------------------------------------

def write_fixture_tree(root, leaf_count=9):
    """A base module + *leaf_count* independent services over it."""
    pkg = root / "repro"
    (pkg / "adapters").mkdir(parents=True)
    (pkg / "services").mkdir(parents=True)
    (pkg / "adapters" / "base.py").write_text(
        ADAPTER_BASE, encoding="utf-8"
    )
    for index in range(leaf_count):
        (pkg / "services" / ("svc%d.py" % index)).write_text(
            dedent(
                """
                from repro.adapters.base import GupAdapter


                class Pep%(i)d:
                    def enforce(self, path, context):
                        return True


                class Service%(i)d:
                    def __init__(self, adapter: GupAdapter):
                        self.adapter = adapter
                        self.pep = Pep%(i)d()

                    def lookup(self, path, context):
                        data = self.adapter.get(path)
                        self.pep.enforce(path, context)
                        return data
                """
            ) % {"i": index},
            encoding="utf-8",
        )


class TestIncrementalCache:
    def run(self, root, cache):
        report = Analyzer().analyze_paths(
            [str(root)], cache=cache, collect_stats=True
        )
        assert report.stats is not None
        return report

    def test_warm_cache_replays_everything(self, tmp_path):
        write_fixture_tree(tmp_path)
        cache = AnalysisCache()
        cold = self.run(tmp_path, cache)
        assert cold.stats.modules_analyzed == cold.stats.modules_total
        warm = self.run(tmp_path, cache)
        assert warm.stats.modules_analyzed == 0
        assert warm.stats.cache_hit_rate == 1.0
        assert warm.stats.summaries_computed == 0
        # Replayed results match the cold run.
        assert (
            [str(v) for v in warm.violations]
            == [str(v) for v in cold.violations]
        )

    def test_one_file_edit_reanalyzes_under_30_percent(self, tmp_path):
        write_fixture_tree(tmp_path)
        cache = AnalysisCache()
        self.run(tmp_path, cache)
        leaf = tmp_path / "repro" / "services" / "svc0.py"
        leaf.write_text(
            leaf.read_text(encoding="utf-8") + "\n# touched\n",
            encoding="utf-8",
        )
        warm = self.run(tmp_path, cache)
        ratio = (
            warm.stats.modules_analyzed
            / float(warm.stats.modules_total)
        )
        assert warm.stats.modules_analyzed >= 1
        assert ratio < 0.30, warm.stats.render()

    def test_dependency_edit_invalidates_dependents(self, tmp_path):
        write_fixture_tree(tmp_path, leaf_count=3)
        cache = AnalysisCache()
        self.run(tmp_path, cache)
        base = tmp_path / "repro" / "adapters" / "base.py"
        base.write_text(
            ADAPTER_BASE.replace(
                "def export_user(self, user):",
                "def export_user(self, user, depth=0):",
            ),
            encoding="utf-8",
        )
        warm = self.run(tmp_path, cache)
        # Signature change in the shared base: every importer is dirty.
        assert warm.stats.modules_analyzed == warm.stats.modules_total

    def test_cache_file_round_trip(self, tmp_path):
        write_fixture_tree(tmp_path, leaf_count=3)
        cache_path = str(tmp_path / "cache.json")
        cache = AnalysisCache()
        self.run(tmp_path, cache)
        cache.save(cache_path)
        reloaded = AnalysisCache.load(cache_path)
        warm = self.run(tmp_path, reloaded)
        assert warm.stats.modules_analyzed == 0

    def test_corrupt_cache_degrades_to_cold_run(self, tmp_path):
        cache_path = str(tmp_path / "cache.json")
        with open(cache_path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        cache = AnalysisCache.load(cache_path)
        write_fixture_tree(tmp_path, leaf_count=2)
        report = self.run(tmp_path, cache)
        assert report.stats.modules_analyzed == report.stats.modules_total


# ---------------------------------------------------------------------------
# SARIF
# ---------------------------------------------------------------------------

class TestSarif:
    def report(self, tmp_path):
        bad = tmp_path / "repro" / "simnet" / "busy.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import time\n\n\ndef handler():\n"
            "    time.sleep(1)\n"
            "    return time.time()"
            "  # gupcheck: ignore[determinism] -- fixture\n",
            encoding="utf-8",
        )
        return Analyzer().analyze_paths([str(tmp_path)])

    def test_sarif_shape(self, tmp_path):
        report = self.report(tmp_path)
        log = to_sarif(report, default_rules())
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert len(rule_ids) == len(set(rule_ids))
        assert {r.name for r in default_rules()} <= set(rule_ids)
        assert run["results"], "expected findings"
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert result["level"] in ("error", "warning", "note")
            location = result["locations"][0]["physicalLocation"]
            uri = location["artifactLocation"]["uri"]
            assert uri.endswith("busy.py")
            assert location["region"]["startLine"] >= 1
            assert "partialFingerprints" in result
            # ruleIndex must agree with the rules array.
            assert (
                driver["rules"][result["ruleIndex"]]["id"]
                == result["ruleId"]
            )

    def test_suppressed_findings_carry_suppressions(self, tmp_path):
        report = self.report(tmp_path)
        assert report.suppressed, "fixture should suppress determinism"
        log = to_sarif(report, default_rules())
        suppressed_results = [
            result for result in log["runs"][0]["results"]
            if result.get("suppressions")
        ]
        assert suppressed_results
        kinds = {
            supp["kind"]
            for result in suppressed_results
            for supp in result["suppressions"]
        }
        assert kinds == {"inSource"}

    def test_sarif_json_serializes(self, tmp_path):
        text = to_sarif_json(self.report(tmp_path), default_rules())
        parsed = json.loads(text)
        assert parsed["version"] == "2.1.0"

    def test_clean_report_has_no_results(self, tmp_path):
        clean = tmp_path / "repro" / "ok.py"
        clean.parent.mkdir(parents=True)
        clean.write_text("VALUE = 1\n", encoding="utf-8")
        report = Analyzer().analyze_paths([str(tmp_path)])
        log = to_sarif(report, default_rules())
        assert log["runs"][0]["results"] == []
        invocation = log["runs"][0]["invocations"][0]
        assert invocation["executionSuccessful"] is True


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

class TestBaseline:
    def dirty_tree(self, tmp_path):
        bad = tmp_path / "repro" / "simnet" / "busy.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import time\n\n\ndef handler():\n"
            "    time.sleep(1)\n    return time.time()\n",
            encoding="utf-8",
        )

    def test_round_trip_accepts_current_findings(self, tmp_path):
        self.dirty_tree(tmp_path)
        report = Analyzer().analyze_paths([str(tmp_path)])
        assert report.failing
        baseline_path = str(tmp_path / "baseline.json")
        count = write_baseline(baseline_path, report)
        assert count == len(report.violations)

        fresh = Analyzer().analyze_paths([str(tmp_path)])
        fresh.apply_baseline(load_baseline(baseline_path))
        assert not fresh.failing
        assert fresh.violations == []
        assert len(fresh.baselined) == count

    def test_new_findings_still_fail_over_a_baseline(self, tmp_path):
        self.dirty_tree(tmp_path)
        report = Analyzer().analyze_paths([str(tmp_path)])
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(baseline_path, report)

        worse = tmp_path / "repro" / "simnet" / "worse.py"
        worse.write_text(
            "import time\n\n\ndef other():\n    return time.time()\n",
            encoding="utf-8",
        )
        fresh = Analyzer().analyze_paths([str(tmp_path)])
        fresh.apply_baseline(load_baseline(baseline_path))
        assert fresh.failing
        assert all(
            v.path == "repro/simnet/worse.py" for v in fresh.violations
        )

    def test_render_is_idempotent(self, tmp_path):
        self.dirty_tree(tmp_path)
        report = Analyzer().analyze_paths([str(tmp_path)])
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(baseline_path, report)
        rebaselined = Analyzer().analyze_paths([str(tmp_path)])
        rebaselined.apply_baseline(load_baseline(baseline_path))
        assert render_baseline(rebaselined) == render_baseline(report)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) == []

    def test_shipped_baseline_is_empty_for_src(self):
        shipped = os.path.join(REPO_ROOT, ".gupcheck-baseline.json")
        assert os.path.exists(shipped)
        assert load_baseline(shipped) == []


# ---------------------------------------------------------------------------
# CLI: exit codes, --changed-only, --stats, --sarif
# ---------------------------------------------------------------------------

class TestCli:
    def run_cli(self, args, cwd):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis"] + args,
            capture_output=True, text=True, env=env, cwd=str(cwd),
        )

    def test_exit_1_on_violations(self, tmp_path):
        bad = tmp_path / "repro" / "simnet" / "busy.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import time\nNOW = time.time()\n", encoding="utf-8"
        )
        proc = self.run_cli(
            ["--no-cache", "--no-baseline", str(tmp_path)], REPO_ROOT
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr

    def test_exit_2_on_parse_error(self, tmp_path):
        bad = tmp_path / "repro" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def (:\n", encoding="utf-8")
        proc = self.run_cli(
            ["--no-cache", "--no-baseline", str(tmp_path)], REPO_ROOT
        )
        assert proc.returncode == 2, proc.stdout + proc.stderr

    def test_exit_0_clean_with_stats(self, tmp_path):
        ok = tmp_path / "repro" / "ok.py"
        ok.parent.mkdir(parents=True)
        ok.write_text("VALUE = 1\n", encoding="utf-8")
        proc = self.run_cli(
            ["--no-cache", "--no-baseline", "--stats", str(tmp_path)],
            REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "gupcheck stats:" in proc.stderr
        assert "module(s) analyzed" in proc.stderr

    def test_sarif_file_output(self, tmp_path):
        ok = tmp_path / "repro" / "ok.py"
        ok.parent.mkdir(parents=True)
        ok.write_text("VALUE = 1\n", encoding="utf-8")
        out = tmp_path / "out.sarif"
        proc = self.run_cli(
            ["--no-cache", "--no-baseline", "--sarif", str(out),
             str(tmp_path / "repro")],
            REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        parsed = json.loads(out.read_text(encoding="utf-8"))
        assert parsed["version"] == "2.1.0"

    def test_changed_only_without_git_falls_back(self, tmp_path):
        ok = tmp_path / "repro" / "ok.py"
        ok.parent.mkdir(parents=True)
        ok.write_text("VALUE = 1\n", encoding="utf-8")
        # Run *inside* tmp_path (not a git repo): the CLI warns and
        # falls back to a full scan rather than erroring out.
        proc = self.run_cli(
            ["--no-cache", "--no-baseline", "--changed-only", "HEAD",
             "repro"],
            tmp_path,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_changed_only_clean_when_nothing_changed(self):
        proc = self.run_cli(
            ["--no-cache", "--no-baseline", "--changed-only", "HEAD",
             "does-not-exist-anywhere"],
            REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "no python files changed" in proc.stdout
