"""Unit tests for HLR/VLR/MSC: registration, mobility, call delivery
(the Figure 3 interactions)."""

import pytest

from repro.errors import StoreError, UnknownSubscriberError
from repro.stores import HLR, MSC, VLR


def wireless_world():
    hlr = HLR("hlr.sprintpcs", carrier="sprintpcs")
    vlr_east = VLR("vlr.east", served_cells=["nj-1", "nj-2"])
    vlr_west = VLR("vlr.west", served_cells=["ca-1"])
    hlr.attach_vlr(vlr_east)
    hlr.attach_vlr(vlr_west)
    msc_east = MSC("msc.east", hlr, vlr_east)
    msc_west = MSC("msc.west", hlr, vlr_west)
    hlr.provision_subscriber("9085551234", "imsi-1", "alice")
    return hlr, vlr_east, vlr_west, msc_east, msc_west


class TestProvisioning:
    def test_duplicate_msisdn_rejected(self):
        hlr, *_ = wireless_world()
        with pytest.raises(StoreError):
            hlr.provision_subscriber("9085551234", "imsi-2", "bob")

    def test_unknown_msisdn(self):
        hlr, *_ = wireless_world()
        with pytest.raises(UnknownSubscriberError):
            hlr.subscriber("0000000000")

    def test_lookup_by_user_id(self):
        hlr, *_ = wireless_world()
        assert hlr.subscriber_by_user("alice").msisdn == "9085551234"
        with pytest.raises(UnknownSubscriberError):
            hlr.subscriber_by_user("nobody")

    def test_remove_subscriber(self):
        hlr, *_ = wireless_world()
        hlr.remove_subscriber("9085551234")
        assert not hlr.has_subscriber("9085551234")


class TestMobility:
    def test_power_on_registers_location(self):
        hlr, vlr_east, _, msc_east, _ = wireless_world()
        msc_east.handle_power_on("9085551234", "nj-1")
        record = hlr.subscriber("9085551234")
        assert record.on_air
        assert record.current_vlr == "vlr.east"
        assert vlr_east.visitor("9085551234") is not None

    def test_msc_rejects_unserved_cell(self):
        _, _, _, msc_east, _ = wireless_world()
        with pytest.raises(StoreError):
            msc_east.handle_power_on("9085551234", "ca-1")

    def test_moving_cancels_old_vlr(self):
        hlr, vlr_east, vlr_west, msc_east, msc_west = wireless_world()
        msc_east.handle_power_on("9085551234", "nj-1")
        msc_west.handle_power_on("9085551234", "ca-1")
        # Paper: "The HLR will cancel the location information in the
        # old VLR after it receives new location information."
        assert vlr_east.visitor("9085551234") is None
        assert vlr_west.visitor("9085551234") is not None
        assert hlr.subscriber("9085551234").current_vlr == "vlr.west"

    def test_detach_clears_location(self):
        hlr, vlr_east, _, msc_east, _ = wireless_world()
        msc_east.handle_power_on("9085551234", "nj-1")
        hlr.detach("9085551234")
        assert not hlr.subscriber("9085551234").on_air
        assert vlr_east.visitor("9085551234") is None

    def test_unknown_vlr_rejected(self):
        hlr, *_ = wireless_world()
        with pytest.raises(StoreError):
            hlr.location_update("9085551234", "vlr.mars", "m-1")

    def test_profile_edit_refreshes_vlr_snapshot(self):
        hlr, vlr_east, _, msc_east, _ = wireless_world()
        msc_east.handle_power_on("9085551234", "nj-1")
        hlr.set_call_forwarding("9085551234", "9085559999")
        assert (
            vlr_east.visitor("9085551234").call_forwarding == "9085559999"
        )

    def test_vlr_snapshot_is_a_copy(self):
        hlr, vlr_east, _, msc_east, _ = wireless_world()
        msc_east.handle_power_on("9085551234", "nj-1")
        snapshot = vlr_east.visitor("9085551234")
        snapshot.call_forwarding = "tampered"
        assert hlr.subscriber("9085551234").call_forwarding is None


class TestCallDelivery:
    def test_call_to_attached_subscriber(self):
        hlr, _, _, msc_east, _ = wireless_world()
        msc_east.handle_power_on("9085551234", "nj-1")
        assert msc_east.deliver_call("2125550000", "9085551234") == (
            "vlr:vlr.east"
        )

    def test_call_to_detached_forwards(self):
        hlr, _, _, msc_east, _ = wireless_world()
        hlr.set_call_forwarding("9085551234", "9085550000")
        assert msc_east.deliver_call("2125550000", "9085551234") == (
            "forwarded:9085550000"
        )

    def test_call_to_detached_without_forwarding(self):
        _, _, _, msc_east, _ = wireless_world()
        assert (
            msc_east.deliver_call("2125550000", "9085551234")
            == "unavailable"
        )

    def test_barring_screens_caller(self):
        hlr, _, _, msc_east, _ = wireless_world()
        msc_east.handle_power_on("9085551234", "nj-1")
        hlr.set_barring("9085551234", ["2125550000"])
        assert msc_east.deliver_call("2125550000", "9085551234") == "barred"
        assert msc_east.deliver_call("7185550000", "9085551234") == (
            "vlr:vlr.east"
        )

    def test_counters(self):
        hlr, _, _, msc_east, _ = wireless_world()
        msc_east.handle_power_on("9085551234", "nj-1")
        msc_east.deliver_call("1", "9085551234")
        assert msc_east.delivered == 1
        assert hlr.lookups > 0
