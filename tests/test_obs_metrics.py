"""The metrics registry: counters, gauges, histograms, views."""

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.metrics import CounterView


# -- Counter ----------------------------------------------------------------

def test_counter_inc_set_reset():
    counter = Counter("c", help="h")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    counter.set(2)
    assert counter.value == 2
    counter.reset()
    assert counter.value == 0


# -- Gauge ------------------------------------------------------------------

def test_gauge_set_inc_dec():
    gauge = Gauge("g")
    gauge.set(3.0)
    gauge.inc(2.0)
    gauge.dec(1.0)
    assert gauge.value == 4.0
    gauge.reset()
    assert gauge.value == 0.0


def test_callback_gauge_reads_live_value_and_rejects_set():
    state = {"n": 7}
    gauge = Gauge("g", fn=lambda: state["n"])
    assert gauge.value == 7.0
    state["n"] = 9
    assert gauge.value == 9.0
    with pytest.raises(ValueError):
        gauge.set(1.0)
    # reset leaves callback gauges alone — the callback is the truth.
    gauge.reset()
    assert gauge.value == 9.0


def test_gauge_bind_repoints_callback():
    gauge = Gauge("g")
    gauge.set(5.0)
    gauge.bind(lambda: 42.0)
    assert gauge.value == 42.0
    gauge.bind(None)
    assert gauge.value == 5.0


# -- Histogram --------------------------------------------------------------

def test_histogram_buckets_are_cumulative_with_inf_tail():
    hist = Histogram("h", buckets=(10.0, 100.0))
    for value in (1.0, 5.0, 50.0, 500.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.sum == 556.0
    assert hist.bucket_counts() == [
        (10.0, 2), (100.0, 3), (float("inf"), 4),
    ]


def test_histogram_bucket_bounds_are_inclusive():
    hist = Histogram("h", buckets=(10.0,))
    hist.observe(10.0)
    assert hist.bucket_counts()[0] == (10.0, 1)


def test_histogram_quantile_is_bucket_upper_bound():
    hist = Histogram("h", buckets=(10.0, 100.0))
    for value in (1.0, 2.0, 3.0, 50.0):
        hist.observe(value)
    assert hist.quantile(0.5) == 10.0
    assert hist.quantile(1.0) == 100.0
    assert Histogram("e", buckets=(1.0,)).quantile(0.9) == 0.0
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_histogram_window_reset_snapshots_and_zeroes():
    hist = Histogram("h", buckets=(10.0,))
    hist.observe(5.0, now=100.0)
    assert hist.last_observed_at_ms == 100.0
    window = hist.reset_window(now=250.0)
    assert window["count"] == 1
    assert window["window_start_ms"] == 0.0
    assert window["window_end_ms"] == 250.0
    assert hist.count == 0
    assert hist.window_start_ms == 250.0


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram("h", buckets=())
    with pytest.raises(ValueError):
        Histogram("h", buckets=(1.0, 1.0))


def test_default_latency_buckets_are_sorted():
    assert list(DEFAULT_LATENCY_BUCKETS_MS) == sorted(
        DEFAULT_LATENCY_BUCKETS_MS
    )


# -- Registry ---------------------------------------------------------------

def test_registry_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    first = registry.counter("net.retries", help="h")
    second = registry.counter("net.retries")
    assert first is second
    assert "net.retries" in registry
    assert len(registry) == 1


def test_registry_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")
    with pytest.raises(ValueError):
        registry.histogram("x")


def test_registry_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("a").inc(3)
    registry.gauge("b").set(1.5)
    registry.histogram("c", buckets=(10.0,)).observe(2.0)
    snap = registry.snapshot()
    assert snap["counters"] == {"a": 3}
    assert snap["gauges"] == {"b": 1.5}
    assert snap["histograms"]["c"]["count"] == 1


def test_registry_reset_zeroes_everything_resettable():
    registry = MetricsRegistry()
    registry.counter("a").inc(3)
    registry.histogram("c", buckets=(10.0,)).observe(2.0)
    registry.reset()
    assert registry.counter("a").value == 0
    assert registry.histogram("c", buckets=(10.0,)).count == 0


# -- CounterView ------------------------------------------------------------

class _Host:
    """Minimal host exposing a registry under the default attr."""

    hits = CounterView("demo.hits")

    def __init__(self):
        self.metrics = MetricsRegistry()
        self.metrics.counter("demo.hits")


def test_counter_view_reads_and_writes_through_registry():
    host = _Host()
    assert host.hits == 0
    host.hits += 3
    assert host.metrics.counter("demo.hits").value == 3
    host.metrics.counter("demo.hits").inc(2)
    assert host.hits == 5
    host.hits = 0  # legacy reset idiom
    assert host.metrics.counter("demo.hits").value == 0


def test_counter_view_on_class_raises():
    with pytest.raises(AttributeError):
        _Host.hits
