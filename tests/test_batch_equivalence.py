"""Batched execution is observably equivalent to sequential execution.

The E19 batching layer (:meth:`~repro.core.QueryExecutor.execute_batch`
and the per-topology ``resolve_batch`` methods) reshapes the *cost
model* — one simulated round trip per (endpoint, batch) instead of one
per query — but must not change a single observable **decision**:

* results are bit-identical (serialized fragments compare equal);
* the privacy shield allows/denies exactly the same items (the PR 1
  cache invariant — scoped keys, shield re-check per hit — holds
  item-wise inside a batch);
* degradation is identical: the same parts fail against the same
  stores with the same error types, stale serves happen for the same
  items, and total failures raise/capture the same errors.

Equivalence is asserted under sunny-day runs and under deterministic
fault injection (``Network.fail``/``restore``). Probabilistic loss is
deliberately out of scope: batches consume fewer seeded RNG samples,
so loss dice land on different messages — the contract (documented on
``execute_batch``) only covers deterministic topologies.
"""

import random

from repro.access import PolicyRule, RequestContext, relationship_in
from repro.core import ComponentCache, GupsterServer, QueryBatch, QueryExecutor
from repro.errors import ReproError
from repro.simnet import Network
from repro.workloads import SyntheticAdapter

BOOK = "/user[@id='u1']/address-book"
PERSONAL = "/user[@id='u1']/address-book/item[@type='personal']"
CORPORATE = "/user[@id='u1']/address-book/item[@type='corporate']"
PRESENCE = "/user[@id='u1']/presence"
NOWHERE = "/user[@id='u1']/calendar"  # registered by nobody


def build_world(
    enforce=False, stale_grace_ms=0.0, seed=16
):
    """The E16 split world: personal slice replicated (alpha || beta),
    corporate slice only at the enterprise store, plus presence at
    alpha — with an optional shield for the denial regimes."""
    network = Network(seed=seed)
    network.add_node("gupster", region="core")
    network.add_node("client", region="internet")
    network.add_node("gup.alpha.com", region="internet")
    network.add_node("gup.beta.com", region="core")
    network.add_node("gup.corp.com", region="enterprise")
    server = GupsterServer(
        "gupster",
        cache=ComponentCache(
            capacity=64,
            default_ttl_ms=60_000.0,
            stale_grace_ms=stale_grace_ms,
        ),
        enforce_policies=enforce,
    )
    for store_id, store_seed, components in (
        ("gup.alpha.com", 5, ["address-book", "presence"]),
        ("gup.beta.com", 5, ["address-book"]),
        ("gup.corp.com", 9, ["address-book"]),
    ):
        adapter = SyntheticAdapter(store_id, seed=store_seed)
        adapter.add_user("u1", components)
        server.join(adapter, user_ids=[])
    server.register_component(PERSONAL, "gup.alpha.com")
    server.register_component(PERSONAL, "gup.beta.com")
    server.register_component(CORPORATE, "gup.corp.com")
    server.register_component(PRESENCE, "gup.alpha.com")
    if enforce:
        for rule in (
            PolicyRule(
                "u1", PERSONAL, "permit", relationship_in("family"),
                rule_id="family-personal",
            ),
            PolicyRule(
                "u1", PRESENCE, "permit",
                relationship_in("family", "co-worker"),
                rule_id="presence-known",
            ),
        ):
            server.policy_repository.store(rule)
    executor = QueryExecutor(network, server)
    return network, server, executor


FAMILY = RequestContext("mom", relationship="family")
COWORKER = RequestContext("colleague", relationship="co-worker")
STRANGER = RequestContext("app", relationship="third-party")


def _norm_statuses(statuses):
    return sorted(
        (
            str(status.path),
            status.store,
            status.ok,
            type(status.error).__name__ if status.error else None,
        )
        for status in statuses
    )


def run_sequential(executor, queries, use_cache, now=0.0):
    """One observation tuple per query: (kind, payload, hit, statuses)."""
    observed = []
    for request, context in queries:
        try:
            if use_cache:
                fragment, trace, hit = executor.cached(
                    "client", request, context, now=now
                )
            else:
                fragment, trace = executor.chaining(
                    "client", request, context, now=now
                )
                hit = False
        except ReproError as err:
            observed.append(
                ("error:" + type(err).__name__, str(err), False, ())
            )
            continue
        observed.append(
            (
                "ok",
                fragment.serialize() if fragment is not None else None,
                hit,
                _norm_statuses(trace.part_status),
            )
        )
    return observed


def run_batched(executor, queries, use_cache, batch_size=None, now=0.0):
    observed = []
    size = batch_size or len(queries)
    for start in range(0, len(queries), size):
        chunk = queries[start : start + size]
        requests = [request for request, _context in chunk]
        contexts = [context for _request, context in chunk]
        results, _trace = executor.execute_batch(
            "client", requests, contexts, now=now, use_cache=use_cache
        )
        for item in results:
            if not item.ok:
                observed.append(
                    (
                        "error:" + type(item.error).__name__,
                        str(item.error),
                        False,
                        (),
                    )
                )
                continue
            observed.append(
                (
                    "ok",
                    item.fragment.serialize()
                    if item.fragment is not None else None,
                    item.hit,
                    _norm_statuses(item.statuses),
                )
            )
    return observed


def random_queries(rng, count, with_denials=False):
    """A seeded mixed workload: split/replicated/uncovered paths,
    duplicates guaranteed by the small pool."""
    pool = [
        (BOOK, STRANGER),
        (PERSONAL, STRANGER),
        (CORPORATE, STRANGER),
        (PRESENCE, STRANGER),
        (NOWHERE, STRANGER),
    ]
    if with_denials:
        pool = [
            (BOOK, FAMILY),
            (PERSONAL, FAMILY),
            (PERSONAL, STRANGER),   # denied: family-only
            (PRESENCE, COWORKER),
            (PRESENCE, STRANGER),   # denied: known relations only
            (NOWHERE, FAMILY),
        ]
    return [pool[rng.randrange(len(pool))] for _ in range(count)]


def assert_equivalent(queries, fault=(), use_cache=False,
                      enforce=False, stale_grace_ms=0.0,
                      batch_size=None, warmup=()):
    """Build two identical worlds, apply the same deterministic faults,
    run the same queries sequentially and batched, compare."""
    runs = {}
    for label, runner in (
        ("sequential", run_sequential),
        ("batched", lambda ex, q, c: run_batched(
            ex, q, c, batch_size=batch_size
        )),
    ):
        network, _server, executor = build_world(
            enforce=enforce, stale_grace_ms=stale_grace_ms
        )
        for request, context in warmup:
            executor.cached("client", request, context, now=0.0)
        for node in fault:
            network.fail(node)
        runs[label] = runner(executor, queries, use_cache)
    assert runs["batched"] == runs["sequential"]
    return runs["sequential"]


class TestSunnyDayEquivalence:
    def test_randomized_chaining(self):
        rng = random.Random(190)
        for trial in range(6):
            queries = random_queries(rng, rng.randrange(3, 18))
            assert_equivalent(
                queries,
                batch_size=rng.choice([None, 3, 5]),
            )

    def test_randomized_cached_with_duplicates(self):
        """Duplicates inside one batch must observe the same hit/miss
        sequence as sequential execution (the wave deferral): first
        occurrence misses and fills, the rest hit."""
        rng = random.Random(191)
        for trial in range(6):
            queries = random_queries(rng, rng.randrange(4, 20))
            observed = assert_equivalent(
                queries, use_cache=True,
                batch_size=rng.choice([None, 4]),
            )
            kinds = [entry[0] for entry in observed]
            assert "ok" in kinds  # the regime actually exercised hits

    def test_cache_hits_follow_first_occurrence(self):
        queries = [(BOOK, STRANGER)] * 4
        observed = assert_equivalent(queries, use_cache=True)
        hits = [entry[2] for entry in observed]
        assert hits == [False, True, True, True]


class TestShieldEquivalence:
    def test_allow_deny_decisions_identical(self):
        rng = random.Random(192)
        for trial in range(6):
            queries = random_queries(
                rng, rng.randrange(4, 16), with_denials=True
            )
            observed = assert_equivalent(
                queries, enforce=True,
                batch_size=rng.choice([None, 3]),
            )
            denied = [e for e in observed if e[0].startswith("error:Access")]
            granted = [e for e in observed if e[0] == "ok"]
            # The pool guarantees both outcomes appear over the run.
            if any(ctx is STRANGER for _p, ctx in queries):
                assert denied
            if any(ctx is FAMILY for _p, ctx in queries):
                assert granted

    def test_cached_denials_stay_denied_per_item(self):
        """Scoped cache keys + per-hit shield recheck, item-wise: a
        family member's cached slice never leaks to the stranger who
        shares its batch."""
        queries = [
            (PERSONAL, FAMILY),
            (PERSONAL, STRANGER),
            (PERSONAL, FAMILY),
            (PERSONAL, STRANGER),
        ]
        observed = assert_equivalent(
            queries, use_cache=True, enforce=True
        )
        assert observed[0][0] == "ok"
        assert observed[1][0].startswith("error:AccessDenied")
        assert observed[2][0] == "ok"
        assert observed[2][2] is True  # second family read hits
        assert observed[2][1] == observed[0][1]  # same permitted slice
        assert observed[3][0].startswith("error:AccessDenied")


class TestFaultEquivalence:
    def test_single_point_of_failure_down(self):
        """Corporate store dead: the split BOOK degrades identically
        (same surviving parts, same failed stores)."""
        rng = random.Random(193)
        for trial in range(4):
            queries = random_queries(rng, rng.randrange(4, 14))
            observed = assert_equivalent(
                queries, fault=("gup.corp.com",),
                batch_size=rng.choice([None, 4]),
            )
            degraded = [e for e in observed if e[0] == "ok" and any(
                not ok for _p, _s, ok, _e in e[3]
            )]
            if any(request == BOOK for request, _c in queries):
                assert degraded

    def test_replica_failover(self):
        """One personal replica dead: failover serves from the other,
        bit-identically in both modes."""
        rng = random.Random(194)
        queries = random_queries(rng, 10)
        assert_equivalent(queries, fault=("gup.alpha.com",))

    def test_total_failure_raises_identically(self):
        queries = [(CORPORATE, STRANGER), (BOOK, STRANGER)]
        observed = assert_equivalent(
            queries,
            fault=("gup.alpha.com", "gup.beta.com", "gup.corp.com"),
        )
        assert observed[0][0] == "error:PartialResultError"

    def test_stale_serve_from_cache_identical(self):
        """Warm the cache, kill every store: both modes serve the
        requester's own stale entry for the warmed path and fail the
        cold one."""
        warmup = [(BOOK, STRANGER)]
        queries = [(BOOK, STRANGER), (PRESENCE, STRANGER)]
        observed = assert_equivalent(
            queries, use_cache=True, stale_grace_ms=120_000.0,
            warmup=warmup,
            fault=("gup.alpha.com", "gup.beta.com", "gup.corp.com"),
        )
        assert observed[0][0] == "ok" and observed[0][2] is True
        assert observed[1][0] == "error:PartialResultError"


class TestQueryBatchApi:
    def test_batch_matches_direct_execute(self):
        network, _server, executor = build_world()
        batch = QueryBatch(executor, "client")
        for request in (BOOK, PERSONAL, PRESENCE):
            batch.add(request, STRANGER)
        assert len(batch) == 3
        results, trace = batch.execute()
        assert len(batch) == 0  # consumed
        network2, _server2, executor2 = build_world()
        direct, _trace2 = executor2.execute_batch(
            "client",
            [BOOK, PERSONAL, PRESENCE],
            [STRANGER, STRANGER, STRANGER],
        )
        assert [
            item.fragment.serialize() for item in results
        ] == [item.fragment.serialize() for item in direct]
        assert trace.elapsed_ms > 0

    def test_empty_batch_rejected(self):
        _network, _server, executor = build_world()
        import pytest

        with pytest.raises(ValueError):
            QueryBatch(executor, "client").execute()

    def test_parse_error_is_captured_not_raised(self):
        _network, _server, executor = build_world()
        results, _trace = executor.execute_batch(
            "client",
            ["not-a-path", BOOK],
            [STRANGER, STRANGER],
        )
        assert not results[0].ok
        assert type(results[0].error).__name__ == "PathSyntaxError"
        assert results[1].ok


class TestBatchingActuallyBatches:
    def test_fewer_messages_and_less_virtual_time(self):
        """The point of the exercise: same answers, fewer frames."""
        queries = [(BOOK, STRANGER)] * 0 + [
            (PERSONAL, STRANGER), (CORPORATE, STRANGER),
            (PRESENCE, STRANGER), (BOOK, STRANGER),
        ] * 4
        network_seq, _s1, executor_seq = build_world()
        seq_hops = 0
        seq_elapsed = 0.0
        sequential = []
        for request, context in queries:
            _fragment, t = executor_seq.chaining(
                "client", request, context
            )
            sequential.append(_fragment.serialize())
            seq_hops += t.hops
            seq_elapsed += t.elapsed_ms
        network_bat, _s2, executor_bat = build_world()
        requests = [request for request, _context in queries]
        contexts = [context for _request, context in queries]
        results, trace = executor_bat.execute_batch(
            "client", requests, contexts
        )
        assert [
            item.fragment.serialize() for item in results
        ] == sequential
        assert trace.hops < seq_hops  # fewer frames on the wire
        assert trace.elapsed_ms < seq_elapsed / 2.0  # the >=2x gate


# ---------------------------------------------------------------------------
# MDM topologies: resolve_batch vs sequential resolve
# ---------------------------------------------------------------------------

def _mdm_server(name, components=("presence",), user="u1"):
    server = GupsterServer(name)
    store = SyntheticAdapter("store.%s" % name)
    store.add_user(user, list(components))
    server.join(store)
    return server


def _mdm_sequential(mdm, requests, contexts, **kwargs):
    outcomes = []
    for request, context in zip(requests, contexts):
        try:
            referral, _trace = mdm.resolve(
                "client", request, context, **kwargs
            )
            outcomes.append(("ok", referral.render()))
        except Exception as err:  # noqa: BLE001 - equivalence capture
            outcomes.append((type(err).__name__, str(err)))
    return outcomes


def _mdm_batched(mdm, requests, contexts, **kwargs):
    outcomes, _trace = mdm.resolve_batch(
        "client", requests, contexts, **kwargs
    )
    normalized = []
    for referral, error in outcomes:
        if error is not None:
            normalized.append((type(error).__name__, str(error)))
        else:
            normalized.append(("ok", referral.render()))
    return normalized


class TestMdmBatchEquivalence:
    PRESENCE = "/user[@id='u1']/presence"
    GHOST = "/user[@id='ghost']/presence"

    def _requests(self):
        ghost = RequestContext("ghost", relationship="self")
        u1 = RequestContext("u1", relationship="self")
        return (
            [self.PRESENCE, self.GHOST, self.PRESENCE],
            [u1, ghost, u1],
        )

    def _centralized(self):
        from repro.core import CentralizedMdm

        network = Network(seed=5)
        network.add_node("client", region="internet")
        for mirror in ("mdm.us", "mdm.eu"):
            network.add_node(mirror, region="core")
        return network, CentralizedMdm(
            network, _mdm_server("central"), ["mdm.us", "mdm.eu"]
        )

    def test_centralized_sunny_and_failover(self):
        requests, contexts = self._requests()
        for dead in ((), ("mdm.us",), ("mdm.us", "mdm.eu")):
            network, mdm = self._centralized()
            for node in dead:
                network.fail(node)
            sequential = _mdm_sequential(mdm, requests, contexts)
            network2, mdm2 = self._centralized()
            for node in dead:
                network2.fail(node)
            assert _mdm_batched(mdm2, requests, contexts) == sequential

    def _distributed(self):
        from repro.core import UserDistributedMdm

        network = Network(seed=5)
        for node in ("client", "whitepages", "mdm.carrier"):
            network.add_node(node)
        mdm = UserDistributedMdm(network, "whitepages")
        mdm.assign("u1", "mdm.carrier", _mdm_server("carrier"))
        return network, mdm

    def test_user_distributed(self):
        requests, contexts = self._requests()
        for dead in ((), ("mdm.carrier",)):
            network, mdm = self._distributed()
            for node in dead:
                network.fail(node)
            sequential = _mdm_sequential(mdm, requests, contexts)
            network2, mdm2 = self._distributed()
            for node in dead:
                network2.fail(node)
            assert _mdm_batched(mdm2, requests, contexts) == sequential

    def _hierarchical(self):
        from repro.core import HierarchicalMdm

        wallet = "/user[@id='u1']/wallet"
        network = Network(seed=5)
        for node in ("client", "mdm.carrier", "mdm.bank"):
            network.add_node(node)
        mdm = HierarchicalMdm(network)
        bank = GupsterServer("bank")
        bank_store = SyntheticAdapter("store.bank")
        bank_store.add_user("u1", ["preferences"])
        bank.join(bank_store)
        bank.register_component(wallet, "store.bank")
        mdm.set_primary("u1", "mdm.carrier", _mdm_server("primary"))
        mdm.delegate("u1", wallet, "mdm.bank", bank)
        return network, mdm, wallet

    def test_hierarchical_with_delegation(self):
        ghost = RequestContext("ghost", relationship="self")
        u1 = RequestContext("u1", relationship="self")
        for dead in ((), ("mdm.bank",), ("mdm.carrier",)):
            network, mdm, wallet = self._hierarchical()
            requests = [self.PRESENCE, wallet, self.GHOST, wallet]
            contexts = [u1, u1, ghost, u1]
            for node in dead:
                network.fail(node)
            sequential = _mdm_sequential(mdm, requests, contexts)
            network2, mdm2, _wallet = self._hierarchical()
            for node in dead:
                network2.fail(node)
            assert _mdm_batched(mdm2, requests, contexts) == sequential
