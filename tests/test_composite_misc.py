"""Unit tests for the composite adapter, referral rendering, executor
edge cases, and the error hierarchy."""

import pytest

from repro.access import RequestContext
from repro.adapters import (
    CompositeAdapter,
    PortalAdapter,
    PresenceAdapter,
)
from repro.core import GupsterServer, QueryExecutor
from repro.core.referral import Referral, ReferralPart
from repro.errors import (
    AccessDeniedError,
    AdapterError,
    GupsterError,
    NodeUnreachableError,
    NoCoverageError,
    ReproError,
    StoreError,
)
from repro.pxml import evaluate_values, parse, parse_path
from repro.simnet import Network
from repro.stores import ContactRecord, PresenceServer, WebPortal
from repro.workloads import SyntheticAdapter, build_converged_world


class TestCompositeAdapter:
    def setup_method(self):
        self.portal = WebPortal("portal")
        self.portal.create_account("u1")
        self.portal.put_contact("u1", ContactRecord("1", "Bob"))
        self.presence = PresenceServer("im")
        self.presence.set_status("u1", "busy")
        presence_adapter = PresenceAdapter("x#p", self.presence)
        presence_adapter.track_user("u1")
        self.composite = CompositeAdapter(
            "gup.op.com",
            [PortalAdapter("x#portal", self.portal), presence_adapter],
        )

    def test_needs_children(self):
        with pytest.raises(ValueError):
            CompositeAdapter("x", [])

    def test_components_union(self):
        assert "address-book" in self.composite.COMPONENTS
        assert "presence" in self.composite.COMPONENTS

    def test_users_union(self):
        assert self.composite.users() == ["u1"]

    def test_export_merges_child_views(self):
        view = self.composite.export_user("u1")
        assert view.child("address-book") is not None
        assert evaluate_values(view, "/user/presence/status") == ["busy"]

    def test_export_unknown_user_none(self):
        assert self.composite.export_user("ghost") is None

    def test_write_routed_to_right_child(self):
        self.composite.put(
            "/user[@id='u1']/presence",
            parse("<presence><status>away</status></presence>"),
        )
        assert self.presence.status("u1") == "away"

    def test_write_unsupported_component(self):
        with pytest.raises(AdapterError):
            self.composite.put(
                "/user[@id='u1']/wallet", parse("<wallet/>")
            )


class TestReferralObjects:
    def test_part_requires_store(self):
        with pytest.raises(ValueError):
            ReferralPart(parse_path("/user[@id='a']/presence"), [])

    def test_referral_requires_parts(self):
        with pytest.raises(ValueError):
            Referral(parse_path("/user[@id='a']/presence"), [])

    def test_render_matches_paper_notation(self):
        path = parse_path("/user[@id='arnaud']/address-book")
        part = ReferralPart(path, ["gup.yahoo.com", "gup.spcs.com"])
        assert part.render() == (
            "gup.yahoo.com/user[@id='arnaud']/address-book || "
            "gup.spcs.com/user[@id='arnaud']/address-book"
        )

    def test_byte_size_counts_parts(self):
        path = parse_path("/user[@id='a']/presence")
        one = Referral(path, [ReferralPart(path, ["s1"])])
        two = Referral(
            path,
            [ReferralPart(path, ["s1"]), ReferralPart(path, ["s2"])],
        )
        assert two.byte_size() > one.byte_size()


class TestExecutorEdgeCases:
    def test_all_replicas_down_raises_with_timeouts(self):
        world = build_converged_world()
        world.network.fail("gup.yahoo.com")
        world.network.fail("gup.spcs.com")
        ctx = RequestContext("arnaud", relationship="self")
        with pytest.raises(NodeUnreachableError):
            world.executor.referral(
                "client-app", "/user[@id='arnaud']/address-book", ctx
            )

    def test_cached_without_cache_rejected(self):
        network = Network(seed=1)
        network.add_node("gupster")
        network.add_node("client")
        server = GupsterServer("gupster", enforce_policies=False)
        executor = QueryExecutor(network, server)
        with pytest.raises(ValueError):
            executor.cached(
                "client", "/user[@id='u']/presence",
                RequestContext("x"),
            )

    def test_referral_part_without_adapter(self):
        network = Network(seed=1)
        network.add_node("gupster")
        network.add_node("client")
        network.add_node("gup.ghost.com")
        server = GupsterServer("gupster", enforce_policies=False)
        store = SyntheticAdapter("gup.real.com")
        store.add_user("u", ["presence"])
        server.join(store, user_ids=[])
        server.register_component(
            "/user[@id='u']/presence", "gup.ghost.com"
        )
        executor = QueryExecutor(network, server)
        with pytest.raises(NoCoverageError):
            executor.referral(
                "client", "/user[@id='u']/presence",
                RequestContext("x"),
            )

    def test_sequential_flag_fetches_all_parts(self):
        world = build_converged_world(split_address_book=True)
        ctx = RequestContext("arnaud", relationship="self")
        fragment, trace = world.executor.referral(
            "client-app", "/user[@id='arnaud']/address-book",
            ctx, parallel=False,
        )
        types = set(
            evaluate_values(fragment, "/user/address-book/item/@type")
        )
        assert types == {"personal", "corporate"}


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [AccessDeniedError, AdapterError, GupsterError,
         NoCoverageError, NodeUnreachableError, StoreError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_catching_the_base_class_works(self):
        world = build_converged_world()
        with pytest.raises(ReproError):
            world.server.resolve(
                "/user[@id='arnaud']/presence",
                RequestContext("telemarketer"),
            )
