"""Smoke tests: every shipped example runs to completion and prints
its headline output (the examples are part of the public API surface,
so they are guarded like code)."""

import contextlib
import importlib.util
import io
import os

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples",
)

CASES = [
    ("quickstart", "Referral returned to the client"),
    ("selective_reach_me", "office-phone"),
    ("roaming_profile", "Corporate calendar"),
    ("privacy_shield", "rejected (signature)"),
    ("enter_once", "replica divergence: 0"),
    ("provenance_audit", "disclosure ledger"),
]


def run_example(name):
    path = os.path.join(EXAMPLES_DIR, name + ".py")
    spec = importlib.util.spec_from_file_location(
        "example_" + name, path
    )
    module = importlib.util.module_from_spec(spec)
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        spec.loader.exec_module(module)
        module.main()
    return buffer.getvalue()


@pytest.mark.parametrize("name,expected", CASES)
def test_example_runs(name, expected):
    output = run_example(name)
    assert expected in output
    assert "Traceback" not in output


def test_every_example_has_a_test():
    shipped = {
        fn[:-3]
        for fn in os.listdir(EXAMPLES_DIR)
        if fn.endswith(".py")
    }
    covered = {name for name, _expected in CASES}
    assert shipped == covered


def test_examples_reimport_cleanly():
    # Running twice must not trip on module-level state.
    run_example("quickstart")
    run_example("quickstart")
