"""The interprocedural resource-bound analysis (gupcheck v4).

Covers the verdict lattice fixture by fixture (bounded / evicting /
unbounded / declared), the long-lived-root discovery and reachability
closure, the helper-mediated interprocedural attribution, the
declared-bound audit, the ``--growth`` CLI artifact and exit codes,
the SARIF round-trip for a growth finding, the rules-fingerprint
invalidation hook, and — on the real tree — the verdicts the issue
pins (the ``parse_path`` memo is *evicting*, the tree is clean).
"""

import json
import os
import subprocess
import sys
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Analyzer, default_rules
from repro.analysis.cache import rules_fingerprint
from repro.analysis.framework import ModuleInfo, _relpath
from repro.analysis.growth_report import (
    GROWTH_FILENAME, SCHEMA, growth_payload,
)
from repro.analysis.interproc.growth import (
    BOUNDED_RE,
    VERDICT_BOUNDED,
    VERDICT_DECLARED,
    VERDICT_EVICTING,
    VERDICT_UNBOUNDED,
    VERDICTS,
)
from repro.analysis.ir.project import Project
from repro.analysis.rules import ContainerGrowthRule
from repro.analysis.sarif import to_sarif

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))
)
SRC_ROOT = os.path.join(REPO_ROOT, "src")

FIXTURE = "repro/core/fixture.py"


def dedent(source):
    return textwrap.dedent(source).lstrip("\n")


def growth_of(sources):
    return Project.from_sources(sources).growth


def field_of(sources, owner, name):
    growth = growth_of(sources)
    return growth.owners[owner].fields[name]


def hub_fixture(body):
    """A class the root-marker heuristic always picks up."""
    return {FIXTURE: dedent(
        """
        class WaveHub:
        %s
        """
    ) % textwrap.indent(dedent(body), "    ")}


HUB = "repro.core.fixture.WaveHub"


# ---------------------------------------------------------------------------
# the verdict lattice, fixture by fixture
# ---------------------------------------------------------------------------

class TestVerdicts:
    def test_no_grow_sites_is_bounded(self):
        field = field_of(hub_fixture(
            """
            def __init__(self):
                self._slots = []

            def read(self):
                return list(self._slots)
            """
        ), HUB, "_slots")
        assert field.verdict == VERDICT_BOUNDED
        assert field.reason == "no-grow-sites"

    def test_deque_maxlen_is_bounded_despite_growth(self):
        field = field_of(hub_fixture(
            """
            def __init__(self):
                from collections import deque
                self._recent = deque(maxlen=16)

            def push(self, item):
                self._recent.append(item)
            """
        ), HUB, "_recent")
        assert field.verdict == VERDICT_BOUNDED
        assert field.reason == "deque-maxlen"

    def test_len_guarded_grow_is_bounded(self):
        field = field_of(hub_fixture(
            """
            def __init__(self):
                self._queue = []

            def push(self, item):
                if len(self._queue) < 100:
                    self._queue.append(item)
            """
        ), HUB, "_queue")
        assert field.verdict == VERDICT_BOUNDED
        assert field.reason == "cap-guard"
        assert all(s.guarded for s in field.grow_sites)

    def test_shrink_in_the_grow_function_is_evicting(self):
        field = field_of(hub_fixture(
            """
            def __init__(self):
                self._queue = []

            def push(self, item):
                self._queue.append(item)
                if len(self._queue) > 100:
                    del self._queue[:50]
            """
        ), HUB, "_queue")
        assert field.verdict == VERDICT_EVICTING
        assert field.reason == "shrink-on-grow-path"

    def test_shrink_reachable_through_a_common_caller_counts(self):
        # push grows, sweep shrinks; cycle() reaches both, so the
        # grow path *can* trigger the eviction.
        field = field_of(hub_fixture(
            """
            def __init__(self):
                self._queue = []

            def push(self, item):
                self._queue.append(item)

            def sweep(self):
                self._queue.clear()

            def cycle(self, item):
                self.push(item)
                self.sweep()
            """
        ), HUB, "_queue")
        assert field.verdict == VERDICT_EVICTING

    def test_test_only_clear_does_not_count(self):
        # The SpanRecorder trap: a clear() nothing on the grow path
        # ever calls is not an eviction.
        field = field_of(hub_fixture(
            """
            def __init__(self):
                self._queue = []

            def push(self, item):
                self._queue.append(item)

            def clear(self):
                self._queue.clear()
            """
        ), HUB, "_queue")
        assert field.verdict == VERDICT_UNBOUNDED
        assert field.reason == "grow-without-eviction"
        assert field.shrink_sites  # the clear() was seen, and rejected

    def test_filter_rebind_sweep_is_a_shrink(self):
        field = field_of(hub_fixture(
            """
            def __init__(self):
                self._queue = []

            def push(self, item):
                self._queue.append(item)
                self._queue = [q for q in self._queue if q.live]
            """
        ), HUB, "_queue")
        assert field.verdict == VERDICT_EVICTING
        assert any(
            s.op == "filter-rebind" for s in field.shrink_sites
        )

    def test_setitem_on_dict_grows(self):
        field = field_of(hub_fixture(
            """
            def __init__(self):
                self._index = {}

            def put(self, key, value):
                self._index[key] = value
            """
        ), HUB, "_index")
        assert field.verdict == VERDICT_UNBOUNDED
        assert field.kind == "dict"

    def test_module_level_clear_when_full_memo_is_evicting(self):
        # The parse_path shape: unguarded grow + guarded clear in the
        # same function.
        sources = {"repro/core/memo.py": dedent(
            """
            MEMO = {}

            def lookup(key):
                cached = MEMO.get(key)
                if cached is not None:
                    return cached
                value = key.upper()
                if len(MEMO) >= 4096:
                    MEMO.clear()
                MEMO[key] = value
                return value
            """
        )}
        field = field_of(sources, "repro.core.memo", "MEMO")
        assert field.verdict == VERDICT_EVICTING

    def test_module_level_growth_without_shrink_is_unbounded(self):
        sources = {"repro/core/registry.py": dedent(
            """
            SEEN = []

            def note(item):
                SEEN.append(item)
            """
        )}
        field = field_of(sources, "repro.core.registry", "SEEN")
        assert field.verdict == VERDICT_UNBOUNDED

    def test_reachability_closure_pulls_in_held_classes(self):
        # Leaf is long-lived *because* the hub holds one.
        sources = {FIXTURE: dedent(
            """
            class Leaf:
                def __init__(self):
                    self._items = []

                def push(self, item):
                    self._items.append(item)


            class WaveHub:
                def __init__(self):
                    self._leaf = Leaf()
            """
        )}
        growth = growth_of(sources)
        owner = growth.owners["repro.core.fixture.Leaf"]
        assert owner.root_via.startswith("reachable:")
        field = owner.fields["_items"]
        assert field.verdict == VERDICT_UNBOUNDED

    def test_annotation_element_types_drive_the_closure(self):
        # Dict[str, Leaf] reaches Leaf even with no constructor call.
        sources = {FIXTURE: dedent(
            """
            from typing import Dict


            class Leaf:
                def __init__(self):
                    self._items = []

                def push(self, item):
                    self._items.append(item)


            class WaveHub:
                def __init__(self):
                    self._leaves: Dict[str, Leaf] = {}
            """
        )}
        growth = growth_of(sources)
        assert "repro.core.fixture.Leaf" in growth.owners

    def test_short_lived_classes_are_not_owners(self):
        sources = {FIXTURE: dedent(
            """
            class RequestScratch:
                def __init__(self):
                    self._parts = []

                def push(self, part):
                    self._parts.append(part)
            """
        )}
        growth = growth_of(sources)
        assert "repro.core.fixture.RequestScratch" not in growth.owners

    def test_analysis_package_is_exempt(self):
        sources = {"repro/analysis/scratch.py": dedent(
            """
            CACHE = {}

            def put(key, value):
                CACHE[key] = value
            """
        )}
        growth = growth_of(sources)
        assert growth.owners == {}


# ---------------------------------------------------------------------------
# declared bounds
# ---------------------------------------------------------------------------

class TestDeclaredBounds:
    def test_declaration_above_the_defining_line_attaches(self):
        field = field_of(hub_fixture(
            """
            def __init__(self):
                # gupcheck: bounded[shard-vocab] -- one entry per shard
                self._logs = {}

            def log_for(self, shard):
                self._logs[shard] = shard
            """
        ), HUB, "_logs")
        assert field.verdict == VERDICT_DECLARED
        assert field.reason == "declared[shard-vocab]"
        assert field.declaration.justification == (
            "one entry per shard"
        )

    def test_trailing_declaration_attaches(self):
        field = field_of(hub_fixture(
            """
            def __init__(self):
                self._logs = {}  # gupcheck: bounded[shard-vocab] -- fixed at wiring

            def log_for(self, shard):
                self._logs[shard] = shard
            """
        ), HUB, "_logs")
        assert field.verdict == VERDICT_DECLARED

    def test_regex_accepts_colon_separator(self):
        match = BOUNDED_RE.search(
            "# gupcheck: bounded[topology]: fixed per run"
        )
        assert match.group("reason") == "topology"
        assert match.group("why") == "fixed per run"

    def test_unattached_declaration_is_audited(self):
        project = Project.from_sources(hub_fixture(
            """
            def __init__(self):
                # gupcheck: bounded[nothing] -- floats in space
                self._scalar = 0
            """
        ))
        found = ContainerGrowthRule().check_project(project)
        assert any(
            "attaches to no tracked container" in v.message
            for v in found
        )

    def test_empty_reason_is_audited(self):
        project = Project.from_sources(hub_fixture(
            """
            def __init__(self):
                # gupcheck: bounded[] -- trust me
                self._logs = {}

            def log_for(self, shard):
                self._logs[shard] = shard
            """
        ))
        found = ContainerGrowthRule().check_project(project)
        assert any("names no bound" in v.message for v in found)

    def test_missing_justification_is_audited(self):
        project = Project.from_sources(hub_fixture(
            """
            def __init__(self):
                # gupcheck: bounded[shard-vocab]
                self._logs = {}

            def log_for(self, shard):
                self._logs[shard] = shard
            """
        ))
        found = ContainerGrowthRule().check_project(project)
        assert any(
            "requires a justification" in v.message for v in found
        )

    def test_justified_declaration_produces_no_findings(self):
        project = Project.from_sources(hub_fixture(
            """
            def __init__(self):
                # gupcheck: bounded[shard-vocab] -- one log per shard
                self._logs = {}

            def log_for(self, shard):
                self._logs[shard] = shard
            """
        ))
        assert ContainerGrowthRule().check_project(project) == []


# ---------------------------------------------------------------------------
# interprocedural attribution
# ---------------------------------------------------------------------------

class TestInterprocAttribution:
    def test_helper_in_another_module_attributes_the_grow(self):
        sources = {
            "repro/core/util.py": dedent(
                """
                def stash(items, value):
                    items.append(value)
                """
            ),
            FIXTURE: dedent(
                """
                from repro.core.util import stash


                class WaveHub:
                    def __init__(self):
                        self._backlog = []

                    def push(self, value):
                        stash(self._backlog, value)
                """
            ),
        }
        field = field_of(sources, HUB, "_backlog")
        assert field.verdict == VERDICT_UNBOUNDED
        (site,) = field.grow_sites
        assert site.op == "helper"
        assert site.via == "repro.core.util.stash"
        assert site.fn == "repro.core.fixture.WaveHub.push"

    def test_bound_method_helper_offsets_self(self):
        field = field_of(hub_fixture(
            """
            def __init__(self):
                self._queue = []

            def _push(self, items, value):
                items.append(value)

            def push(self, value):
                self._push(self._queue, value)
            """
        ), HUB, "_queue")
        assert field.verdict == VERDICT_UNBOUNDED
        assert any(s.op == "helper" for s in field.grow_sites)

    def test_transitive_helper_chain_propagates(self):
        sources = {
            "repro/core/util.py": dedent(
                """
                def raw_append(items, value):
                    items.append(value)


                def stash(items, value):
                    raw_append(items, value)
                """
            ),
            FIXTURE: dedent(
                """
                from repro.core.util import stash


                class WaveHub:
                    def __init__(self):
                        self._backlog = []

                    def push(self, value):
                        stash(self._backlog, value)
                """
            ),
        }
        field = field_of(sources, HUB, "_backlog")
        assert field.verdict == VERDICT_UNBOUNDED

    def test_heap_intrinsics_with_reachable_drain_is_evicting(self):
        field = field_of(hub_fixture(
            """
            def __init__(self):
                self._heap = []

            def push(self, item):
                import heapq
                heapq.heappush(self._heap, item)

            def pop_all(self):
                import heapq
                while self._heap:
                    heapq.heappop(self._heap)

            def cycle(self, item):
                self.push(item)
                self.pop_all()
            """
        ), HUB, "_heap")
        assert field.verdict == VERDICT_EVICTING
        assert any(s.op == "heappush" for s in field.grow_sites)
        assert any(s.op == "heappop" for s in field.shrink_sites)

    def test_helper_shrink_counts_as_eviction(self):
        sources = {
            "repro/core/util.py": dedent(
                """
                def drain(items):
                    items.clear()
                """
            ),
            FIXTURE: dedent(
                """
                from repro.core.util import drain


                class WaveHub:
                    def __init__(self):
                        self._backlog = []

                    def push(self, value):
                        self._backlog.append(value)
                        if len(self._backlog) > 64:
                            drain(self._backlog)
                """
            ),
        }
        field = field_of(sources, HUB, "_backlog")
        assert field.verdict == VERDICT_EVICTING
        assert any(
            s.op == "helper" and s.via == "repro.core.util.drain"
            for s in field.shrink_sites
        )


# ---------------------------------------------------------------------------
# the monotonicity property
# ---------------------------------------------------------------------------

_RANK = {
    VERDICT_BOUNDED: 0,
    VERDICT_DECLARED: 0,
    VERDICT_EVICTING: 1,
    VERDICT_UNBOUNDED: 2,
}

_EVICTIONS = (
    "self._queue.pop()",
    "self._queue.clear()",
    "del self._queue[:1]",
    "self._queue = [q for q in self._queue if q]",
)


def _hub_source(n_methods, eviction=None, target=0, reachable=True):
    lines = [
        "class WaveHub:",
        "    def __init__(self):",
        "        self._queue = []",
        "",
    ]
    for i in range(n_methods):
        lines += [
            "    def add%d(self, value):" % i,
            "        self._queue.append(value)",
        ]
        if eviction is not None and reachable and i == target:
            lines.append("        " + eviction)
        lines.append("")
    if eviction is not None and not reachable:
        lines += [
            "    def scrub(self):",
            "        " + eviction,
            "",
        ]
    return "\n".join(lines) + "\n"


class TestEvictionMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(
        n_methods=st.integers(min_value=1, max_value=3),
        target=st.integers(min_value=0, max_value=2),
        eviction=st.sampled_from(_EVICTIONS),
        reachable=st.booleans(),
    )
    def test_adding_an_eviction_site_never_worsens_the_verdict(
        self, n_methods, target, eviction, reachable,
    ):
        target %= n_methods
        base = field_of(
            {FIXTURE: _hub_source(n_methods)}, HUB, "_queue",
        )
        grown = field_of(
            {FIXTURE: _hub_source(
                n_methods, eviction, target, reachable,
            )},
            HUB, "_queue",
        )
        assert _RANK[grown.verdict] <= _RANK[base.verdict]
        if reachable:
            # On the grow path the eviction must actually help.
            assert grown.verdict == VERDICT_EVICTING


# ---------------------------------------------------------------------------
# the report payload
# ---------------------------------------------------------------------------

class TestGrowthPayload:
    def _payload(self, sources):
        infos = [
            ModuleInfo.from_source(src, rel)
            for rel, src in sorted(sources.items())
        ]
        return growth_payload(infos)

    def test_payload_shape(self):
        payload = self._payload(hub_fixture(
            """
            def __init__(self):
                self._queue = []

            def push(self, item):
                self._queue.append(item)
            """
        ))
        assert payload["schema"] == SCHEMA
        assert payload["verdicts"] == list(VERDICTS)
        assert payload["clean"] is False
        (entry,) = payload["unbounded"]
        assert entry["owner"] == HUB
        assert entry["field"] == "_queue"
        owner = payload["owners"][HUB]
        assert owner["fields"]["_queue"]["verdict"] == (
            VERDICT_UNBOUNDED
        )
        assert owner["fields"]["_queue"]["grow_sites"]

    def test_clean_payload(self):
        payload = self._payload(hub_fixture(
            """
            def __init__(self):
                self._queue = []
            """
        ))
        assert payload["clean"] is True
        assert payload["unbounded"] == []

    def test_declarations_are_inventoried(self):
        payload = self._payload(hub_fixture(
            """
            def __init__(self):
                # gupcheck: bounded[vocab] -- fixed set
                self._logs = {}

            def log_for(self, shard):
                self._logs[shard] = shard
            """
        ))
        (decl,) = payload["declarations"]
        assert decl["reason"] == "vocab"
        assert decl["attached_to"] == "%s._logs" % HUB
        assert payload["counts"][VERDICT_DECLARED] == 1


# ---------------------------------------------------------------------------
# SARIF round-trip
# ---------------------------------------------------------------------------

class TestGrowthSarif:
    def test_growth_finding_round_trips(self, tmp_path):
        leaky = tmp_path / "repro" / "core" / "leaky.py"
        leaky.parent.mkdir(parents=True)
        leaky.write_text(dedent(
            """
            class WaveHub:
                def __init__(self):
                    self._queue = []

                def push(self, item):
                    self._queue.append(item)
            """
        ), encoding="utf-8")
        report = Analyzer().analyze_paths([str(tmp_path)])
        growth = [
            v for v in report.violations
            if v.rule == "container-growth"
        ]
        assert len(growth) == 1

        log = to_sarif(report, default_rules())
        (run,) = log["runs"]
        results = [
            r for r in run["results"]
            if r["ruleId"] == "container-growth"
        ]
        assert len(results) == 1
        result = results[0]
        assert result["level"] == "error"
        assert result["message"]["text"] == growth[0].message
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == growth[0].line
        fingerprints = result["partialFingerprints"]
        assert fingerprints["gupcheckFingerprint/v1"] == (
            growth[0].fingerprint()
        )
        # The rule's metadata rides along for code-scanning UIs.
        ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "container-growth" in ids


# ---------------------------------------------------------------------------
# the CLI
# ---------------------------------------------------------------------------

class TestGrowthCli:
    def run_cli(self, args, cwd):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis"] + args,
            capture_output=True, text=True, env=env, cwd=str(cwd),
        )

    def _write(self, tmp_path, body):
        target = tmp_path / "repro" / "core" / "fixture.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(dedent(body), encoding="utf-8")

    def test_growth_artifact_written_and_clean(self, tmp_path):
        self._write(tmp_path, """
            class WaveHub:
                def __init__(self):
                    self._queue = []
        """)
        out = tmp_path / "growth.json"
        proc = self.run_cli(
            [str(tmp_path), "--growth", str(out)], REPO_ROOT
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["schema"] == SCHEMA
        assert payload["clean"] is True
        assert "0 unbounded" in proc.stdout

    def test_growth_exit_1_on_unbounded_container(self, tmp_path):
        self._write(tmp_path, """
            class WaveHub:
                def __init__(self):
                    self._queue = []

                def push(self, item):
                    self._queue.append(item)
        """)
        out = tmp_path / "growth.json"
        proc = self.run_cli(
            [str(tmp_path), "--growth", str(out)], REPO_ROOT
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["clean"] is False
        assert "container-growth" in proc.stdout + proc.stderr

    def test_growth_default_filename(self, tmp_path):
        self._write(tmp_path, """
            class WaveHub:
                def __init__(self):
                    self._queue = []
        """)
        proc = self.run_cli([str(tmp_path), "--growth"], tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert (tmp_path / GROWTH_FILENAME).exists()

    def test_growth_stdout_dash(self, tmp_path):
        self._write(tmp_path, """
            class WaveHub:
                def __init__(self):
                    self._queue = []
        """)
        proc = self.run_cli(
            [str(tmp_path), "--growth", "-"], REPO_ROOT
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        # stdout is the JSON stream, nothing else; the human summary
        # line goes to stderr.
        payload = json.loads(proc.stdout)
        assert payload["schema"] == SCHEMA
        assert "growth inventory (stdout)" in proc.stderr

    def test_growth_exit_2_on_parse_error(self, tmp_path):
        self._write(tmp_path, """
            def broken(:
        """)
        proc = self.run_cli(
            [str(tmp_path), "--growth", "-"], REPO_ROOT
        )
        assert proc.returncode == 2


# ---------------------------------------------------------------------------
# cache invalidation
# ---------------------------------------------------------------------------

class TestGrowthFingerprint:
    def test_growth_engine_edit_changes_the_fingerprint(self):
        """Editing the v4 engine (or rule) must invalidate the
        incremental cache — the fingerprint hashes every ``.py`` in
        the analysis package, growth files included."""
        target = os.path.join(
            SRC_ROOT, "repro", "analysis", "interproc", "growth.py",
        )
        rules = default_rules()
        before = rules_fingerprint(rules)
        with open(target, "a", encoding="utf-8") as handle:
            handle.write("# fingerprint probe\n")
        try:
            after = rules_fingerprint(rules)
        finally:
            with open(target, "r", encoding="utf-8") as handle:
                text = handle.read()
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(
                    text.replace("# fingerprint probe\n", "")
                )
        assert after != before
        assert rules_fingerprint(rules) == before

    def test_growth_rule_is_active_and_uncacheable(self):
        rules = {rule.name: rule for rule in default_rules()}
        rule = rules["container-growth"]
        assert rule.cacheable is False


# ---------------------------------------------------------------------------
# the real tree
# ---------------------------------------------------------------------------

def _real_project():
    analyzer = Analyzer([])
    modules = []
    for filename in analyzer.discover([SRC_ROOT]):
        with open(filename, "r", encoding="utf-8") as handle:
            modules.append(ModuleInfo.from_source(
                handle.read(), _relpath(filename), filename
            ))
    return Project(modules)


class TestRealTree:
    def test_shipped_inventory_matches_the_tree(self):
        project = _real_project()
        growth = project.growth
        counts = growth.counts()
        assert counts[VERDICT_UNBOUNDED] == 0

        shipped_path = os.path.join(REPO_ROOT, GROWTH_FILENAME)
        with open(shipped_path, "r", encoding="utf-8") as handle:
            shipped = json.load(handle)
        assert shipped["schema"] == SCHEMA
        assert shipped["clean"] is True
        assert shipped["counts"] == counts

        # The verdicts the issue pins, by name.
        def verdict(owner, field):
            return growth.owners[owner].fields[field].verdict

        assert verdict(
            "repro.pxml.path", "_PARSE_CACHE"
        ) == VERDICT_EVICTING
        assert verdict(
            "repro.bus.log.ChangeLog", "_records"
        ) == VERDICT_EVICTING
        assert verdict(
            "repro.obs.spans.SpanRecorder", "spans"
        ) == VERDICT_EVICTING
        assert verdict(
            "repro.bus.listeners.RecordingListener", "received"
        ) == VERDICT_EVICTING
        assert verdict(
            "repro.core.provenance.ProvenanceTracker", "_records"
        ) == VERDICT_EVICTING
        assert verdict(
            "repro.core.coverage.CoverageMap", "_changelog"
        ) == VERDICT_EVICTING
        assert verdict(
            "repro.simnet.engine.Simulator", "_heap"
        ) == VERDICT_DECLARED

    def test_every_shipped_declaration_is_attached(self):
        project = _real_project()
        for decls in project.growth.declarations.values():
            for decl in decls:
                assert decl.attached_to is not None, (
                    "%s:%d" % (decl.relpath, decl.line)
                )
                assert decl.reason
                assert decl.justification
