"""Sans-io engine + simnet driver unit tests, and the ISSUE 9
satellite regressions (cache TTL boundary, backoff cap, resync
error)."""

import pytest

from repro.access import RequestContext
from repro.core import (
    ComponentCache,
    GupsterServer,
    QueryExecutor,
    RetryPolicy,
)
from repro.core.coverage import CoverageMap
from repro.errors import (
    CoverageError,
    NodeUnreachableError,
    PacketLossError,
    ResyncRequiredError,
)
from repro.pxml import parse, parse_path
from repro.sansio import (
    Compute,
    Fork,
    LegOutcome,
    Mark,
    QueryOutcome,
    SansIoQueryEngine,
    Send,
    SpanClose,
    SpanOpen,
    StandaloneQueryHost,
    decision_of,
    leg_values,
)
from repro.simnet import Network
from repro.simnet.driver import SimnetDriver
from repro.workloads import SyntheticAdapter

BOOK = "/user[@id='u1']/address-book"
PERSONAL = BOOK + "/item[@type='personal']"
CORPORATE = BOOK + "/item[@type='corporate']"
SCOPE = "app|third-party"
SCOPE = "app|third-party"


def ctx(requester="app", **kwargs):
    return RequestContext(requester, **kwargs)


def build_world(ttl_ms=60_000.0, stale_grace_ms=0.0, retry_policy=None):
    """The split address-book world (same shape as test_resilience)."""
    network = Network(seed=16)
    network.add_node("gupster", region="core")
    network.add_node("client", region="internet")
    network.add_node("gup.alpha.com", region="internet")
    network.add_node("gup.beta.com", region="core")
    network.add_node("gup.corp.com", region="enterprise")
    server = GupsterServer(
        "gupster",
        cache=ComponentCache(
            capacity=16,
            default_ttl_ms=ttl_ms,
            stale_grace_ms=stale_grace_ms,
        ),
        enforce_policies=False,
    )
    for store_id, seed in (
        ("gup.alpha.com", 5),
        ("gup.beta.com", 5),
        ("gup.corp.com", 9),
    ):
        adapter = SyntheticAdapter(store_id, seed=seed)
        adapter.add_user("u1", ["address-book"])
        server.join(adapter, user_ids=[])
    server.register_component(PERSONAL, "gup.alpha.com")
    server.register_component(PERSONAL, "gup.beta.com")
    server.register_component(CORPORATE, "gup.corp.com")
    return network, server, retry_policy


# ---------------------------------------------------------------------------
# Intents
# ---------------------------------------------------------------------------

class TestIntents:
    def test_mark_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Mark("victory")

    def test_mark_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            Mark("retry", 0)

    def test_leg_outcome_ok(self):
        assert LegOutcome(value=1).ok
        assert not LegOutcome(error=ValueError("x")).ok

    def test_leg_values_keeps_survivors_in_order(self):
        boom = ValueError("boom")
        assert leg_values(
            [LegOutcome(value=1), LegOutcome(error=boom),
             LegOutcome(value=2)]
        ) == [1, 2]


# ---------------------------------------------------------------------------
# The simnet driver
# ---------------------------------------------------------------------------

class TestSimnetDriver:
    def _trace(self):
        network = Network(seed=3)
        network.add_node("a", region="core")
        network.add_node("b", region="core")
        return network, network.trace()

    def test_send_and_compute_charge_the_trace(self):
        network, trace = self._trace()
        def program():
            yield Send("a", "b", 1000, "payload")
            yield Compute(5.0, "think")
            return "done"
        result = SimnetDriver({}).run(program(), trace)
        assert result == "done"
        assert trace.elapsed_ms > 5.0
        assert trace.bytes_total == 1000

    def test_spans_unwound_when_program_raises(self):
        network, _ = self._trace()
        recorder = network.enable_observability()
        trace = network.trace()
        def program():
            yield SpanOpen("outer")
            yield SpanOpen("inner")
            raise RuntimeError("mid-span failure")
        with pytest.raises(RuntimeError):
            SimnetDriver({}).run(program(), trace)
        assert recorder.open_spans() == []

    def test_transport_error_thrown_into_program(self):
        network, _ = self._trace()
        network.fail("b")
        trace = network.trace()
        caught = []
        def program():
            try:
                yield Send("a", "b", 10, "doomed")
            except NodeUnreachableError as err:
                caught.append(err)
            return "survived"
        assert SimnetDriver({}).run(program(), trace) == "survived"
        assert len(caught) == 1

    def test_fork_joins_captured_failures(self):
        network, trace = self._trace()
        network.force_drops("a", "b", 1)
        def leg_ok():
            yield Compute(1.0, "ok leg")
            return 7
        def leg_drop():
            yield Send("a", "b", 10, "dropped")
            return 8
        def program():
            outcomes = yield Fork(
                [leg_ok(), leg_drop()], capture=(PacketLossError,)
            )
            return outcomes
        outcomes = SimnetDriver({}).run(program(), trace)
        assert outcomes[0].value == 7
        assert isinstance(outcomes[1].error, PacketLossError)

    def test_fork_uncaptured_error_propagates(self):
        network, trace = self._trace()
        network.fail("b")
        def leg():
            yield Send("a", "b", 10, "doomed")
        def program():
            yield Fork([leg()])  # no capture
        with pytest.raises(NodeUnreachableError):
            SimnetDriver({}).run(program(), trace)

    def test_span_close_must_balance(self):
        network, trace = self._trace()
        def program():
            yield SpanClose()
        with pytest.raises(IndexError):
            SimnetDriver({}).run(program(), trace)


# ---------------------------------------------------------------------------
# Engine over simnet ≡ the executor facade
# ---------------------------------------------------------------------------

class TestEngineMatchesExecutor:
    def test_chaining_same_value_and_elapsed(self):
        network_a, server_a, _ = build_world()
        executor = QueryExecutor(network_a, server_a)
        fragment_a, trace_a = executor.chaining(
            "client", BOOK, ctx(), now=0.0
        )

        network_b, server_b, _ = build_world()
        host = StandaloneQueryHost(server_b, server_node="gupster")
        engine = SansIoQueryEngine(host)
        trace_b = network_b.trace()
        outcome = SimnetDriver(server_b.adapters).run(
            engine.chain("client", parse_path(BOOK), ctx(), 0.0),
            trace_b,
        )
        assert isinstance(outcome, QueryOutcome)
        assert outcome.fragment is not None
        assert fragment_a is not None
        assert outcome.fragment.serialize() == fragment_a.serialize()
        assert trace_b.elapsed_ms == trace_a.elapsed_ms
        assert trace_b.bytes_total == trace_a.bytes_total

    def test_cached_hit_disposition(self):
        network, server, _ = build_world()
        host = StandaloneQueryHost(server, server_node="gupster")
        engine = SansIoQueryEngine(host)
        first = SimnetDriver(server.adapters).run(
            engine.cached("client", parse_path(BOOK), ctx(), 0.0),
            network.trace(),
        )
        second = SimnetDriver(server.adapters).run(
            engine.cached("client", parse_path(BOOK), ctx(), 1.0),
            network.trace(),
        )
        assert not first.hit
        assert second.hit and not second.stale
        assert second.fragment.serialize() == first.fragment.serialize()


# ---------------------------------------------------------------------------
# decision_of — the equivalence-gate record
# ---------------------------------------------------------------------------

class TestDecisionOf:
    def test_outcome_record(self):
        fragment = parse("<address-book/>")
        record = decision_of(QueryOutcome(fragment, hit=True))
        assert record["ok"] and record["hit"] and not record["stale"]
        assert record["value"] == fragment.serialize()
        assert record["degraded"] == []

    def test_error_record(self):
        from repro.errors import AccessDeniedError
        record = decision_of(AccessDeniedError("no"))
        assert not record["ok"]
        assert record["denied"]
        assert record["error"] == "AccessDeniedError"


# ---------------------------------------------------------------------------
# Satellite: the TTL boundary is stale, not fresh
# ---------------------------------------------------------------------------

class TestCacheTtlBoundary:
    def _cache(self, **kwargs):
        kwargs.setdefault("capacity", 4)
        kwargs.setdefault("default_ttl_ms", 100.0)
        return ComponentCache(**kwargs)

    def test_fresh_strictly_before_expiry(self):
        cache = self._cache()
        cache.put(BOOK, parse("<address-book/>"), now=0.0, scope=SCOPE)
        assert cache.get(BOOK, now=99.999, scope=SCOPE) is not None

    def test_stale_at_exact_expiry_instant(self):
        # The regression: `now == stored_at + ttl` used to count as
        # fresh, so a TTL-0 entry could satisfy one hit at its own
        # store instant.
        cache = self._cache()
        cache.put(BOOK, parse("<address-book/>"), now=0.0, scope=SCOPE)
        assert cache.get(BOOK, now=100.0, scope=SCOPE) is None

    def test_ttl_zero_never_serves(self):
        cache = self._cache(default_ttl_ms=0.0)
        cache.put(BOOK, parse("<address-book/>"), now=5.0, scope=SCOPE)
        assert cache.get(BOOK, now=5.0, scope=SCOPE) is None

    def test_get_stale_counts_boundary_as_stale_serve(self):
        cache = self._cache(stale_grace_ms=50.0)
        cache.put(BOOK, parse("<address-book/>"), now=0.0, scope=SCOPE)
        assert cache.get_stale(BOOK, now=100.0, scope=SCOPE) is not None
        assert cache.stale_serves == 1  # boundary == already stale

    def test_staleness_ms_zero_at_boundary(self):
        from repro.core.cache import _Entry
        entry = _Entry(parse("<address-book/>"), 0.0, 100.0)
        assert entry.staleness_ms(100.0) == 0.0
        assert not entry.fresh(100.0)
        assert entry.fresh(99.0)

    def test_sweep_drops_only_past_grace(self):
        cache = self._cache(stale_grace_ms=50.0)
        cache.put(BOOK, parse("<address-book/>"), now=0.0, scope=SCOPE)
        cache.put(PERSONAL, parse("<item type='personal'/>"),
                  now=100.0, scope=SCOPE)
        # BOOK is 60ms past TTL (beyond grace at now=160? 160-100=60>50);
        # PERSONAL is fresh until 200.
        assert cache.sweep(now=160.0) == 1
        assert len(cache) == 1
        assert cache.get(PERSONAL, now=160.0, scope=SCOPE) is not None


# ---------------------------------------------------------------------------
# Satellite: backoff cap
# ---------------------------------------------------------------------------

class TestBackoffCap:
    def test_cap_shown_in_repr(self):
        policy = RetryPolicy(max_backoff_ms=150.0)
        assert "cap=150ms" in repr(policy)

    def test_backoff_is_one_based(self):
        policy = RetryPolicy()
        with pytest.raises(ValueError):
            policy.backoff_ms(0)

    def test_huge_retry_number_does_not_overflow(self):
        policy = RetryPolicy(
            max_attempts=2, base_backoff_ms=25.0, multiplier=2.0,
            max_backoff_ms=400.0,
        )
        # 2**9999 overflows a float mid-expression; the cap is the
        # answer regardless.
        assert policy.backoff_ms(10_000) == 400.0

    def test_cap_validated_in_init(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_backoff_ms=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


# ---------------------------------------------------------------------------
# Satellite: feed truncation is a distinct, deliberate error
# ---------------------------------------------------------------------------

class TestResyncRequired:
    def _truncated_map(self):
        coverage = CoverageMap(max_changelog=2)
        for index in range(5):
            coverage.register(
                "/user[@id='u%d']/address-book" % index, "s"
            )
        return coverage

    def test_truncated_cursor_raises_resync_required(self):
        coverage = self._truncated_map()
        with pytest.raises(ResyncRequiredError):
            coverage.changes_since(0)

    def test_still_a_coverage_error(self):
        # Pre-existing catch sites keep working.
        coverage = self._truncated_map()
        with pytest.raises(CoverageError, match="full resync"):
            coverage.changes_since(0)

    def test_live_cursor_unaffected(self):
        coverage = self._truncated_map()
        assert coverage.changes_since(coverage.revision - 1) != []

    def test_maps_to_410_gone(self):
        from repro.serve.status import status_for
        status, slug = status_for(ResyncRequiredError("cursor dead"))
        assert status == 410
        assert slug == "resync-required"
