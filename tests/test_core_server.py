"""Integration tests for the GUPster server over the paper's world."""

import pytest

from repro.errors import (
    AccessDeniedError,
    GupsterError,
    NoCoverageError,
)
from repro.access import RequestContext
from repro.pxml import evaluate_values, parse_path
from repro.workloads import build_converged_world


ARNAUD_BOOK = "/user[@id='arnaud']/address-book"
ARNAUD_PRESENCE = "/user[@id='arnaud']/presence"


def self_ctx(user):
    return RequestContext(user, relationship="self")


class TestResolveReferral:
    def setup_method(self):
        self.world = build_converged_world()
        self.server = self.world.server

    def test_replicated_book_is_a_choice(self):
        referral = self.server.resolve(ARNAUD_BOOK, self_ctx("arnaud"))
        assert len(referral.parts) == 1
        assert sorted(referral.parts[0].store_ids) == [
            "gup.spcs.com", "gup.yahoo.com",
        ]
        assert not referral.needs_merge
        assert "||" in referral.render()

    def test_presence_single_store(self):
        referral = self.server.resolve(
            ARNAUD_PRESENCE, self_ctx("arnaud")
        )
        assert referral.parts[0].store_ids == ["gup.spcs.com"]

    def test_referral_parts_are_signed(self):
        referral = self.server.resolve(ARNAUD_BOOK, self_ctx("arnaud"))
        signed = referral.parts[0].signed_query
        assert signed is not None
        self.server.signer.verifier().verify(signed, now=1.0)

    def test_spurious_query_rejected(self):
        with pytest.raises(GupsterError) as excinfo:
            self.server.resolve(
                "/user[@id='arnaud']/mp3-collection",
                self_ctx("arnaud"),
            )
        assert "spurious" in str(excinfo.value)
        assert self.server.spurious_rejected == 1

    def test_wrong_root_rejected(self):
        with pytest.raises(GupsterError):
            self.server.resolve(
                "/profile[@id='arnaud']/presence", self_ctx("arnaud")
            )

    def test_access_denied_for_stranger(self):
        with pytest.raises(AccessDeniedError):
            self.server.resolve(
                ARNAUD_PRESENCE, RequestContext("telemarketer")
            )
        assert self.server.denials == 1

    def test_family_book_rewritten_to_personal(self):
        referral = self.server.resolve(
            ARNAUD_BOOK, RequestContext("mom", relationship="family")
        )
        assert all(
            "item[@type='personal']" in str(part.path)
            for part in referral.parts
        )

    def test_coworker_presence_time_window(self):
        working = RequestContext(
            "bob", relationship="co-worker", hour=11, weekday=1
        )
        referral = self.server.resolve(ARNAUD_PRESENCE, working)
        assert referral.parts
        evening = working.at(22)
        with pytest.raises(AccessDeniedError):
            self.server.resolve(ARNAUD_PRESENCE, evening)

    def test_no_coverage(self):
        with pytest.raises(NoCoverageError):
            self.server.resolve(
                "/user[@id='arnaud']/applications", self_ctx("arnaud")
            )

    def test_prepaid_wallet_covered(self):
        referral = self.server.resolve(
            "/user[@id='arnaud']/wallet", self_ctx("arnaud")
        )
        assert referral.parts[0].store_ids == ["gup.spcs.com"]

    def test_leave_drops_coverage(self):
        self.server.leave("gup.yahoo.com")
        referral = self.server.resolve(ARNAUD_BOOK, self_ctx("arnaud"))
        assert referral.parts[0].store_ids == ["gup.spcs.com"]

    def test_stats(self):
        self.server.resolve(ARNAUD_BOOK, self_ctx("arnaud"))
        stats = self.server.stats()
        assert stats["resolves"] == 1
        assert stats["stores"] >= 5
        assert stats["users"] >= 2

    def test_manual_registration_validated(self):
        with pytest.raises(GupsterError):
            self.server.register_component(
                "/user[@id='x']/nonsense-component", "gup.yahoo.com"
            )


class TestSplitWorld:
    def test_figure9_merge_referral(self):
        world = build_converged_world(split_address_book=True)
        referral = world.server.resolve(
            ARNAUD_BOOK, self_ctx("arnaud")
        )
        assert referral.needs_merge
        rendered = referral.render()
        assert "gup.yahoo.com" in rendered
        assert "gup.lucent.com" in rendered

    def test_update_referral_fans_out(self):
        world = build_converged_world()
        ctx = RequestContext(
            "arnaud", relationship="self", purpose="provision"
        )
        referral = world.server.resolve_for_update(ARNAUD_BOOK, ctx)
        stores = sorted(
            store for part in referral.parts
            for store in part.store_ids
        )
        assert stores == ["gup.spcs.com", "gup.yahoo.com"]

    def test_update_requires_provision_purpose(self):
        world = build_converged_world()
        with pytest.raises(AccessDeniedError):
            world.server.resolve_for_update(
                ARNAUD_BOOK, self_ctx("arnaud")
            )


class TestQueryExecutorPatterns:
    def setup_method(self):
        self.world = build_converged_world(split_address_book=True)
        self.executor = self.world.executor
        self.ctx = self_ctx("arnaud")

    def test_referral_merges_split_book(self):
        fragment, trace = self.executor.referral(
            "client-app", ARNAUD_BOOK, self.ctx
        )
        types = set(
            evaluate_values(fragment, "/user/address-book/item/@type")
        )
        assert types == {"personal", "corporate"}
        assert trace.hops >= 6  # resolve RT + two fetch RTs

    def test_chaining_returns_same_data(self):
        via_referral, _ = self.executor.referral(
            "client-app", ARNAUD_BOOK, self.ctx
        )
        via_chaining, trace = self.executor.chaining(
            "client-app", ARNAUD_BOOK, self.ctx
        )
        assert via_chaining.canonical_key() == via_referral.canonical_key()

    def test_recruiting_returns_same_data(self):
        via_referral, _ = self.executor.referral(
            "client-app", ARNAUD_BOOK, self.ctx
        )
        via_recruiting, trace = self.executor.recruiting(
            "client-app", ARNAUD_BOOK, self.ctx
        )
        assert (
            via_recruiting.canonical_key() == via_referral.canonical_key()
        )

    def test_direct_baseline(self):
        fragment, trace = self.executor.direct(
            "client-app",
            [
                ("gup.yahoo.com",
                 "/user[@id='arnaud']/address-book"
                 "/item[@type='personal']"),
                ("gup.lucent.com",
                 "/user[@id='arnaud']/address-book"
                 "/item[@type='corporate']"),
            ],
        )
        assert len(fragment.child("address-book").children) == 4

    def test_denied_request_raises_through_executor(self):
        with pytest.raises(AccessDeniedError):
            self.executor.referral(
                "client-app", ARNAUD_PRESENCE,
                RequestContext("telemarketer"),
            )

    def test_failover_to_replica(self):
        world = build_converged_world()
        world.network.fail("gup.yahoo.com")
        fragment, trace = world.executor.referral(
            "client-app", ARNAUD_BOOK, self_ctx("arnaud")
        )
        assert fragment is not None  # served by gup.spcs.com
        assert any("FAILED" in line for line in trace.log)

    def test_cached_pattern_hit_and_miss(self):
        world = build_converged_world()
        _f, _t, hit1 = world.executor.cached(
            "client-app", ARNAUD_BOOK, self_ctx("arnaud"), now=0.0
        )
        frag, trace2, hit2 = world.executor.cached(
            "client-app", ARNAUD_BOOK, self_ctx("arnaud"), now=10.0
        )
        assert not hit1 and hit2
        assert frag is not None
        assert world.server.cache.hits == 1

    def test_provision_enter_once(self):
        world = build_converged_world()
        from repro.pxml import parse
        fragment = parse(
            "<address-book><item id='z1'><name>Zoe</name>"
            "<number type='cell'>908-000-1234</number></item>"
            "</address-book>"
        )
        ctx = RequestContext(
            "arnaud", relationship="self", purpose="provision"
        )
        trace = world.executor.provision(
            "client-app", ARNAUD_BOOK, fragment, ctx
        )
        # One user action updated BOTH replicas.
        assert [c.display_name
                for c in world.yahoo.contacts("arnaud")] == ["Zoe"]
        assert [c.display_name
                for c in world.spcs_portal.contacts("arnaud")] == ["Zoe"]

    def test_provision_invalidates_cache(self):
        world = build_converged_world()
        from repro.pxml import parse
        world.executor.cached(
            "client-app", ARNAUD_BOOK, self_ctx("arnaud"), now=0.0
        )
        ctx = RequestContext(
            "arnaud", relationship="self", purpose="provision"
        )
        world.executor.provision(
            "client-app", ARNAUD_BOOK,
            parse("<address-book/>"), ctx, now=1.0,
        )
        _f, _t, hit = world.executor.cached(
            "client-app", ARNAUD_BOOK, self_ctx("arnaud"), now=2.0
        )
        assert not hit  # invalidation trigger fired
