"""Unit tests for the coverage map (paper Section 4.5)."""

import pytest

from repro.errors import CoverageError
from repro.core import CoverageMap
from repro.pxml import parse_path


BOOK = "/user[@id='arnaud']/address-book"
PRESENCE = "/user[@id='arnaud']/presence"
PERSONAL = "/user[@id='arnaud']/address-book/item[@type='personal']"
CORPORATE = "/user[@id='arnaud']/address-book/item[@type='corporate']"


class TestRegistration:
    def test_paper_example_coverage(self):
        # Section 4.3's example: Yahoo! and SprintPCS both hold the
        # address book; only SprintPCS holds presence.
        cov = CoverageMap()
        cov.register(BOOK, "gup.yahoo.com")
        cov.register(BOOK, "gup.spcs.com")
        cov.register(PRESENCE, "gup.spcs.com")
        assert cov.stores_for(BOOK) == ["gup.yahoo.com", "gup.spcs.com"]
        assert cov.stores_for(PRESENCE) == ["gup.spcs.com"]

    def test_register_requires_user_id(self):
        with pytest.raises(CoverageError):
            CoverageMap().register("/user/address-book", "s1")

    def test_register_rejects_attribute_paths(self):
        with pytest.raises(CoverageError):
            CoverageMap().register(
                "/user[@id='a']/devices/device/@carrier", "s1"
            )

    def test_duplicate_registration_idempotent(self):
        cov = CoverageMap()
        cov.register(BOOK, "s1")
        cov.register(BOOK, "s1")
        assert cov.stores_for(BOOK) == ["s1"]
        assert cov.registrations == 1

    def test_unregister(self):
        cov = CoverageMap()
        cov.register(BOOK, "s1")
        cov.unregister(BOOK, "s1")
        assert cov.stores_for(BOOK) == []
        with pytest.raises(CoverageError):
            cov.unregister(BOOK, "s1")

    def test_unregister_store_drops_everything(self):
        cov = CoverageMap()
        cov.register(BOOK, "s1")
        cov.register(PRESENCE, "s1")
        cov.register(BOOK, "s2")
        dropped = cov.unregister_store("s1")
        assert dropped == 2
        assert cov.stores_for(BOOK) == ["s2"]
        assert cov.stores_for(PRESENCE) == []


class TestResolution:
    def setup_method(self):
        self.cov = CoverageMap()
        self.cov.register(BOOK, "gup.yahoo.com")
        self.cov.register(BOOK, "gup.spcs.com")
        self.cov.register(PRESENCE, "gup.spcs.com")

    def test_exact_component_fully_covered(self):
        res = self.cov.resolve(BOOK)
        assert res.is_covered and not res.needs_merge
        stores = {s for _p, stores in res.full for s in stores}
        assert stores == {"gup.yahoo.com", "gup.spcs.com"}

    def test_deeper_request_fully_covered(self):
        res = self.cov.resolve(
            "/user[@id='arnaud']/address-book/item[@id='7']"
        )
        assert res.is_covered and not res.needs_merge

    def test_unregistered_component_uncovered(self):
        res = self.cov.resolve("/user[@id='arnaud']/wallet")
        assert not res.is_covered

    def test_unknown_user_uncovered(self):
        res = self.cov.resolve("/user[@id='rick']/address-book")
        assert not res.is_covered

    def test_resolve_requires_user(self):
        with pytest.raises(CoverageError):
            self.cov.resolve("/user/address-book")

    def test_figure9_split_needs_merge(self):
        cov = CoverageMap()
        cov.register(PERSONAL, "gup.yahoo.com")
        cov.register(CORPORATE, "gup.lucent.com")
        res = cov.resolve(BOOK)
        assert res.is_covered and res.needs_merge
        parts = {str(p): stores for p, stores in res.partial}
        assert parts == {
            PERSONAL: ["gup.yahoo.com"],
            CORPORATE: ["gup.lucent.com"],
        }

    def test_request_inside_one_split_part_no_merge(self):
        cov = CoverageMap()
        cov.register(PERSONAL, "gup.yahoo.com")
        cov.register(CORPORATE, "gup.lucent.com")
        res = cov.resolve(PERSONAL)
        assert res.is_covered and not res.needs_merge
        assert res.full[0][1] == ["gup.yahoo.com"]

    def test_full_coverage_preferred_over_partial(self):
        cov = CoverageMap()
        cov.register(BOOK, "gup.yahoo.com")
        cov.register(PERSONAL, "gup.phone.com")
        res = cov.resolve(BOOK)
        assert res.full and res.partial
        assert not res.needs_merge  # a full coverer exists


class TestIntrospection:
    def test_component_graph(self):
        cov = CoverageMap()
        cov.register(BOOK, "s1")
        cov.register(PRESENCE, "s1")
        graph = cov.component_graph("arnaud")
        assert graph == [
            (BOOK, ["s1"]),
            (PRESENCE, ["s1"]),
        ]

    def test_counts(self):
        cov = CoverageMap()
        cov.register(BOOK, "s1")
        cov.register(BOOK, "s2")
        cov.register("/user[@id='rick']/game-scores", "s1")
        assert cov.user_count() == 2
        assert cov.entry_count() == 3
        assert cov.stores() == ["s1", "s2"]
        assert cov.paths_for_user("arnaud") == [parse_path(BOOK)]
