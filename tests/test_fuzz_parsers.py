"""Fuzz tests: every parser either succeeds or raises its *declared*
error type — never an unrelated crash (IndexError, RecursionError...).
"""

from hypothesis import given, settings, strategies as st

from repro.errors import (
    ParseError,
    PathSyntaxError,
    PolicyError,
    StoreError,
    UnsupportedPathError,
)
from repro.pxml import parse, parse_path
from repro.stores import parse_filter


xmlish = st.text(
    alphabet=st.sampled_from(
        list("<>/=\"' abcdefgXYZ&;-!?[]@0123456789\n\t")
    ),
    max_size=120,
)


class TestXmlParserTotality:
    @given(xmlish)
    @settings(max_examples=500)
    def test_parse_never_crashes(self, text):
        try:
            node = parse(text)
        except ParseError:
            return
        # Success: the result must round-trip.
        assert parse(node.serialize()).deep_equal(node)

    @given(st.text(max_size=60))
    @settings(max_examples=300)
    def test_parse_arbitrary_unicode(self, text):
        try:
            parse(text)
        except ParseError:
            pass


pathish = st.text(
    alphabet=st.sampled_from(list("/@[]='\"* abcxyz-._0123456789")),
    max_size=60,
)


class TestPathParserTotality:
    @given(pathish)
    @settings(max_examples=500)
    def test_parse_path_never_crashes(self, text):
        try:
            path = parse_path(text)
        except (PathSyntaxError, UnsupportedPathError):
            return
        assert parse_path(str(path)) == path

    def test_non_string_rejected_cleanly(self):
        import pytest
        with pytest.raises(PathSyntaxError):
            parse_path(42)
        with pytest.raises(PathSyntaxError):
            parse_path(None)


filterish = st.text(
    alphabet=st.sampled_from(list("()&|!=* abcuidmail0123456789")),
    max_size=60,
)


class TestFilterParserTotality:
    @given(filterish)
    @settings(max_examples=500)
    def test_parse_filter_never_crashes(self, text):
        try:
            parse_filter(text)
        except StoreError:
            pass


class TestContextParserTotality:
    @given(
        st.text(max_size=20), st.text(max_size=20),
        st.integers(-5, 30), st.integers(-3, 10),
    )
    @settings(max_examples=300)
    def test_context_constructor_total(self, relationship, purpose,
                                       hour, weekday):
        from repro.access import RequestContext
        try:
            ctx = RequestContext(
                "r", relationship=relationship, purpose=purpose,
                hour=hour, weekday=weekday,
            )
        except PolicyError:
            return
        # Anything accepted must round-trip through XML.
        again = RequestContext.from_xml(ctx.to_xml())
        assert again.relationship == ctx.relationship
        assert again.hour == ctx.hour
