"""Spans layered under the Trace cost accumulator (E18 tentpole)."""

import pytest

from repro.errors import NodeUnreachableError, PacketLossError
from repro.obs import reconcile, to_chrome_trace
from repro.simnet import Network


def world():
    """Three nodes, jitter-free links so assertions stay exact."""
    network = Network(seed=1)
    network.add_node("a", processing_ms=0.0)
    network.add_node("b", processing_ms=0.0)
    network.add_node("c", processing_ms=0.0)
    network.link("a", "b", 10.0, jitter_ms=0.0)
    network.link("b", "c", 5.0, jitter_ms=0.0)
    network.link("a", "c", 7.0, jitter_ms=0.0)
    return network


def by_name(recorder, name):
    return [s for s in recorder.spans if s.name == name]


# -- disabled (the default) -------------------------------------------------

def test_disabled_trace_records_nothing_and_span_is_free():
    network = world()
    trace = network.trace()
    with trace.span("query", store="s") as handle:
        assert handle.set("k", "v") is handle
        trace.hop("a", "b", 100)
        trace.event("ignored")
    assert network.recorder is None
    assert trace.trace_id == 0


def test_enable_then_disable_controls_new_traces_only():
    network = world()
    rec = network.enable_observability()
    assert network.enable_observability() is rec
    trace = network.trace()
    trace.hop("a", "b", 100)
    network.disable_observability()
    silent = network.trace()
    silent.hop("a", "b", 100)
    assert len(rec.spans_for(trace.trace_id)) == 2  # root + hop
    assert silent.trace_id == 0


# -- charge leaves ----------------------------------------------------------

def test_every_charge_records_a_leaf_under_the_root():
    network = world()
    rec = network.enable_observability()
    trace = network.trace()
    trace.hop("a", "b", 1250, note="req")
    trace.compute(3.0, note="rewrite")
    trace.wait(2.0)
    (root,) = rec.roots(trace.trace_id)
    assert root.name == "trace"
    leaves = rec.children_of(root)
    assert [s.name for s in leaves] == ["hop", "compute", "wait"]
    hop = leaves[0]
    assert hop.attrs == {
        "src": "a", "dst": "b", "bytes": 1250,
        "status": "ok", "note": "req",
    }
    # 10ms base + 1250B / 1250 B-per-ms == 11ms.
    assert hop.duration_ms == pytest.approx(11.0)
    assert rec.open_spans() == []
    assert root.end_ms == trace.elapsed_ms
    assert reconcile(rec, trace.trace_id) == []


def test_failed_hop_leaf_carries_status():
    network = world()
    rec = network.enable_observability()
    network.fail("b")
    trace = network.trace()
    with pytest.raises(NodeUnreachableError):
        trace.hop("a", "b", 100)
    network.restore("b")
    network.force_drops("a", "c", 1)
    with pytest.raises(PacketLossError):
        trace.hop("a", "c", 100)
    statuses = [s.attrs["status"] for s in by_name(rec, "hop")]
    assert statuses == ["unreachable", "lost"]
    # Both charged the detection timeout — the leaves cover it.
    assert by_name(rec, "hop")[0].duration_ms == pytest.approx(
        network.detect_timeout_ms
    )
    assert rec.open_spans() == []


# -- named spans and events -------------------------------------------------

def test_named_span_nests_charges_and_reconciles():
    network = world()
    rec = network.enable_observability()
    trace = network.trace()
    with trace.span("query.referral", store="b") as span:
        trace.hop("a", "b", 1250)
        trace.event("cache", verdict="miss")
        with trace.span("fetch.store", sweep=1):
            trace.hop("b", "c", 1250)
        span.set("status", "ok")
    (root,) = rec.roots(trace.trace_id)
    (query,) = rec.children_of(root)
    assert query.name == "query.referral"
    assert query.attrs == {"store": "b", "status": "ok"}
    assert [s.name for s in rec.children_of(query)] == [
        "hop", "fetch.store",
    ]
    assert [e.name for e in query.events] == ["cache"]
    assert query.duration_ms == pytest.approx(trace.elapsed_ms)
    assert reconcile(rec, trace.trace_id) == []


def test_resilience_notes_become_events():
    network = world()
    rec = network.enable_observability()
    trace = network.trace()
    trace.note_retry()
    trace.note_failover()
    trace.note_stale_serve()
    (root,) = rec.roots(trace.trace_id)
    assert [e.name for e in root.events] == [
        "retry", "failover", "stale_serve",
    ]


# -- fork/join --------------------------------------------------------------

def test_fork_join_branches_get_lanes_and_fork_groups():
    network = world()
    rec = network.enable_observability()
    trace = network.trace()
    trace.hop("a", "b", 1250)  # 11ms before the fan-out
    left, right = trace.fork(), trace.fork()
    left.hop("b", "c", 1250)   # 6ms
    right.hop("b", "a", 2500)  # 12ms
    trace.join([left, right])
    assert trace.elapsed_ms == pytest.approx(23.0)
    branches = by_name(rec, "branch")
    assert [b.tid for b in branches] == [1, 2]
    assert {b.attrs["fork_group"] for b in branches} == {"j1"}
    # Branch roots start at the parent's fork instant.
    assert all(b.start_ms == pytest.approx(11.0) for b in branches)
    (root,) = rec.roots(trace.trace_id)
    assert root.end_ms == pytest.approx(23.0)
    assert reconcile(rec, trace.trace_id) == []
    assert rec.open_spans() == []


def test_two_joins_get_distinct_fork_groups():
    network = world()
    rec = network.enable_observability()
    trace = network.trace()
    for _round in range(2):
        branch = trace.fork()
        branch.hop("a", "b", 1250)
        trace.join([branch])
    groups = [b.attrs["fork_group"] for b in by_name(rec, "branch")]
    assert groups == ["j1", "j2"]
    assert reconcile(rec, trace.trace_id) == []


def test_chrome_export_of_a_forked_trace_is_consistent():
    network = world()
    rec = network.enable_observability()
    trace = network.trace()
    left, right = trace.fork(), trace.fork()
    left.hop("a", "b", 1250)
    right.hop("a", "c", 1250)
    trace.join([left, right])
    events = to_chrome_trace(rec)["traceEvents"]
    assert all(e["pid"] == trace.trace_id for e in events)
    assert {e["tid"] for e in events} == {0, 1, 2}
    assert not any(e["args"].get("unfinished") for e in events)
