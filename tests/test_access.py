"""Unit tests for the privacy shield: contexts, rules, PDP decisions,
and the PAP/PRP/PEP infrastructure (Figure 10)."""

import pytest

from repro.errors import PolicyError
from repro.pxml import parse_path
from repro.access import (
    Decision,
    PolicyAdministrationPoint,
    PolicyDecisionPoint,
    PolicyEnforcementPoint,
    PolicyRepository,
    PolicyRule,
    RequestContext,
    all_of,
    always,
    any_of,
    hour_between,
    negate,
    purpose_in,
    relationship_in,
    requester_is,
    weekday_in,
    working_hours,
)


class TestRequestContext:
    def test_defaults(self):
        ctx = RequestContext("bob")
        assert ctx.relationship == "third-party"
        assert ctx.purpose == "query"

    def test_validation(self):
        with pytest.raises(PolicyError):
            RequestContext("bob", relationship="nemesis")
        with pytest.raises(PolicyError):
            RequestContext("bob", purpose="espionage")
        with pytest.raises(PolicyError):
            RequestContext("bob", hour=25)
        with pytest.raises(PolicyError):
            RequestContext("bob", weekday=9)

    def test_working_hours(self):
        assert RequestContext("b", hour=10, weekday=2).is_working_hours()
        assert not RequestContext("b", hour=20, weekday=2).is_working_hours()
        assert not RequestContext("b", hour=10, weekday=6).is_working_hours()

    def test_at_copies(self):
        ctx = RequestContext("bob", relationship="family", hour=9)
        moved = ctx.at(22, weekday=5)
        assert moved.hour == 22 and moved.weekday == 5
        assert moved.requester == "bob"
        assert ctx.hour == 9  # original untouched

    def test_xml_round_trip(self):
        ctx = RequestContext(
            "app:reachme", relationship="third-party",
            purpose="subscribe", hour=14, weekday=3,
        )
        again = RequestContext.from_xml(ctx.to_xml())
        assert again.requester == "app:reachme"
        assert again.purpose == "subscribe"
        assert again.hour == 14 and again.weekday == 3
        assert ctx.byte_size() > 0

    def test_from_xml_rejects_other_documents(self):
        from repro.pxml import PNode
        with pytest.raises(PolicyError):
            RequestContext.from_xml(PNode("not-context"))


class TestConditions:
    def test_requester_is(self):
        cond = requester_is("bob", "carol")
        assert cond.holds(RequestContext("bob"))
        assert not cond.holds(RequestContext("mallory"))

    def test_relationship_in(self):
        cond = relationship_in("family", "boss")
        assert cond.holds(RequestContext("m", relationship="family"))
        assert not cond.holds(RequestContext("m", relationship="buddy"))

    def test_purpose_in(self):
        cond = purpose_in("cache")
        assert cond.holds(RequestContext("m", purpose="cache"))
        assert not cond.holds(RequestContext("m", purpose="query"))

    def test_hour_between(self):
        cond = hour_between(9, 18)
        assert cond.holds(RequestContext("m", hour=9))
        assert not cond.holds(RequestContext("m", hour=18))
        with pytest.raises(PolicyError):
            hour_between(18, 9)

    def test_weekday_in(self):
        cond = weekday_in(5, 6)
        assert cond.holds(RequestContext("m", weekday=6))
        assert not cond.holds(RequestContext("m", weekday=2))
        with pytest.raises(PolicyError):
            weekday_in(7)

    def test_combinators(self):
        cond = all_of(relationship_in("co-worker"), working_hours())
        ok = RequestContext("m", relationship="co-worker",
                            hour=10, weekday=1)
        assert cond.holds(ok)
        assert not cond.holds(ok.at(22))
        either = any_of(relationship_in("boss"), relationship_in("family"))
        assert either.holds(RequestContext("m", relationship="boss"))
        inverted = negate(working_hours())
        assert inverted.holds(RequestContext("m", hour=3))


class TestPolicyRule:
    def test_owner_mismatch_rejected(self):
        with pytest.raises(PolicyError):
            PolicyRule("alice", "/user[@id='bob']/presence", "permit")

    def test_bad_effect_rejected(self):
        with pytest.raises(PolicyError):
            PolicyRule("alice", "/user[@id='alice']/presence", "allow")

    def test_applies_requires_overlap_and_condition(self):
        rule = PolicyRule(
            "alice", "/user[@id='alice']/presence", "permit",
            working_hours(),
        )
        ctx = RequestContext("bob", relationship="co-worker",
                             hour=10, weekday=1)
        assert rule.applies_to("/user[@id='alice']/presence", ctx)
        assert not rule.applies_to("/user[@id='alice']/calendar", ctx)
        assert not rule.applies_to("/user[@id='alice']/presence",
                                   ctx.at(23))

    def test_unique_ids_generated(self):
        a = PolicyRule("u", "/user[@id='u']/presence", "permit")
        b = PolicyRule("u", "/user[@id='u']/presence", "permit")
        assert a.rule_id != b.rule_id


def corporate_shield():
    """The paper's Section 4.6 example policies for user 'arnaud'."""
    return [
        PolicyRule(
            "arnaud", "/user[@id='arnaud']/presence", "permit",
            all_of(relationship_in("co-worker"), working_hours()),
            rule_id="coworkers-presence",
        ),
        PolicyRule(
            "arnaud", "/user[@id='arnaud']/presence", "permit",
            relationship_in("boss", "family"),
            rule_id="boss-family-presence",
        ),
        PolicyRule(
            "arnaud",
            "/user[@id='arnaud']/address-book/item[@type='personal']",
            "permit", relationship_in("family"),
            rule_id="family-addressbook",
        ),
        PolicyRule(
            "arnaud", "/user[@id='arnaud']/calendar", "permit",
            relationship_in("family"), rule_id="family-calendar",
        ),
    ]


class TestPdpPaperPolicies:
    def setup_method(self):
        self.pdp = PolicyDecisionPoint()
        self.rules = corporate_shield()

    def decide(self, path, ctx):
        return self.pdp.decide(self.rules, path, ctx)

    def test_coworker_during_work(self):
        ctx = RequestContext("bob", relationship="co-worker",
                             hour=11, weekday=2)
        decision = self.decide("/user[@id='arnaud']/presence", ctx)
        assert decision.permit
        assert decision.permitted_paths == [
            parse_path("/user[@id='arnaud']/presence")
        ]

    def test_coworker_after_hours_denied(self):
        ctx = RequestContext("bob", relationship="co-worker",
                             hour=22, weekday=2)
        assert not self.decide("/user[@id='arnaud']/presence", ctx).permit

    def test_family_any_time(self):
        ctx = RequestContext("mom", relationship="family",
                             hour=23, weekday=6)
        assert self.decide("/user[@id='arnaud']/presence", ctx).permit
        assert self.decide("/user[@id='arnaud']/calendar", ctx).permit

    def test_family_gets_personal_slice_of_address_book(self):
        ctx = RequestContext("mom", relationship="family")
        decision = self.decide("/user[@id='arnaud']/address-book", ctx)
        assert decision.permit
        # Rewritten: only the personal items, not the whole book.
        assert decision.permitted_paths == [
            parse_path(
                "/user[@id='arnaud']/address-book"
                "/item[@type='personal']"
            )
        ]

    def test_third_party_default_deny(self):
        ctx = RequestContext("telemarketer")
        decision = self.decide("/user[@id='arnaud']/presence", ctx)
        assert not decision.permit
        assert any("default deny" in r for r in decision.reasons)

    def test_deny_overrides_permit(self):
        self.rules.append(
            PolicyRule(
                "arnaud", "/user[@id='arnaud']/presence", "deny",
                requester_is("stalker"), rule_id="block-stalker",
            )
        )
        ctx = RequestContext("stalker", relationship="family")
        assert not self.decide("/user[@id='arnaud']/presence", ctx).permit
        # Other family members are unaffected.
        ctx2 = RequestContext("mom", relationship="family")
        assert self.decide("/user[@id='arnaud']/presence", ctx2).permit

    def test_narrow_request_within_grant(self):
        ctx = RequestContext("mom", relationship="family")
        decision = self.decide(
            "/user[@id='arnaud']/calendar/appointment[@id='a1']", ctx
        )
        assert decision.permit
        assert decision.permitted_paths == [
            parse_path(
                "/user[@id='arnaud']/calendar/appointment[@id='a1']"
            )
        ]

    def test_duplicate_grants_coalesced(self):
        ctx = RequestContext("boss", relationship="boss",
                             hour=10, weekday=0)
        # boss matches boss-family-presence; also simulate an extra rule
        self.rules.append(
            PolicyRule(
                "arnaud", "/user[@id='arnaud']/presence", "permit",
                relationship_in("boss"), rule_id="extra-boss",
            )
        )
        decision = self.decide("/user[@id='arnaud']/presence", ctx)
        assert len(decision.permitted_paths) == 1

    def test_decisions_counted(self):
        ctx = RequestContext("bob")
        self.decide("/user[@id='arnaud']/presence", ctx)
        assert self.pdp.decisions_made == 1


class TestRepositoryReplication:
    def test_store_and_versioning(self):
        repo = PolicyRepository()
        rule = PolicyRule("u", "/user[@id='u']/presence", "permit",
                          rule_id="r1")
        repo.store(rule)
        assert repo.rule_count() == 1
        updated = PolicyRule("u", "/user[@id='u']/presence", "deny",
                             rule_id="r1")
        repo.store(updated)
        assert repo.rule_count() == 1
        assert repo.rules_for("u")[0].version == 2

    def test_remove(self):
        repo = PolicyRepository()
        repo.store(PolicyRule("u", "/user[@id='u']/presence", "permit",
                              rule_id="r1"))
        repo.remove("u", "r1")
        assert repo.rules_for("u") == []
        with pytest.raises(PolicyError):
            repo.remove("u", "r1")

    def test_incremental_replication(self):
        master = PolicyRepository("master")
        replica = PolicyRepository("replica")
        master.store(PolicyRule("u", "/user[@id='u']/presence", "permit",
                                rule_id="r1"))
        applied = replica.apply_changes(master.changes_since(0))
        assert applied == 1
        assert replica.rule_count() == 1
        # Second sync is a no-op.
        assert replica.apply_changes(
            master.changes_since(replica.revision)
        ) == 0
        # A removal propagates too.
        master.remove("u", "r1")
        replica.apply_changes(master.changes_since(replica.revision))
        assert replica.rule_count() == 0


class TestPapPep:
    def setup_method(self):
        self.repo = PolicyRepository()
        self.pap = PolicyAdministrationPoint(self.repo)
        self.pep = PolicyEnforcementPoint(self.repo)

    def test_pap_accepts_own_rules(self):
        rule = PolicyRule("alice", "/user[@id='alice']/presence",
                          "permit", relationship_in("buddy"))
        self.pap.provision_rule("alice", rule)
        assert self.pap.provisioned == 1
        assert self.repo.rule_count() == 1

    def test_pap_rejects_foreign_rules(self):
        rule = PolicyRule("alice", "/user[@id='alice']/presence",
                          "permit")
        with pytest.raises(PolicyError):
            self.pap.provision_rule("mallory", rule)
        assert self.pap.rejected == 1

    def test_pap_revoke(self):
        rule = PolicyRule("alice", "/user[@id='alice']/presence",
                          "permit", rule_id="mine")
        self.pap.provision_rule("alice", rule)
        self.pap.revoke_rule("alice", "mine")
        assert self.repo.rule_count() == 0
        with pytest.raises(PolicyError):
            self.pap.revoke_rule("alice", "mine")

    def test_pep_owner_always_permitted(self):
        ctx = RequestContext("alice", relationship="self")
        decision = self.pep.enforce("/user[@id='alice']/wallet", ctx)
        assert decision.permit

    def test_pep_impersonation_does_not_work(self):
        # Claiming 'self' with a different requester id fails.
        ctx = RequestContext("mallory", relationship="self")
        decision = self.pep.enforce("/user[@id='alice']/wallet", ctx)
        assert not decision.permit
        assert self.pep.denied == 1

    def test_pep_requires_owner_in_path(self):
        with pytest.raises(PolicyError):
            self.pep.enforce(
                "/user/presence", RequestContext("bob")
            )

    def test_pep_uses_rules(self):
        self.pap.provision_rule(
            "alice",
            PolicyRule("alice", "/user[@id='alice']/presence", "permit",
                       relationship_in("buddy")),
        )
        ok = self.pep.enforce(
            "/user[@id='alice']/presence",
            RequestContext("bob", relationship="buddy"),
        )
        assert ok.permit
        bad = self.pep.enforce(
            "/user[@id='alice']/presence",
            RequestContext("bob", relationship="third-party"),
        )
        assert not bad.permit
