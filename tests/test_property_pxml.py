"""Property-based tests (hypothesis) for the profile-XML data model:
serialization round-trips, containment laws, merge algebra."""

import string

from hypothesis import given, settings, strategies as st

from repro.pxml import (
    ConflictPolicy,
    GUP_KEYSPEC,
    PNode,
    Path,
    Predicate,
    Step,
    deep_union,
    evaluate,
    node_contains,
    parse,
    parse_path,
    step_contains,
    steps_compatible,
    subtree_covers,
    subtree_overlaps,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

tag_names = st.sampled_from(
    ["user", "item", "name", "number", "address-book", "presence",
     "status", "device", "note", "zone"]
)
attr_names = st.sampled_from(["id", "type", "carrier", "name", "game"])
# Text that exercises escaping but stays printable.
text_values = st.text(
    alphabet=string.ascii_letters + string.digits + " <>&\"'-.@",
    min_size=0, max_size=30,
)
attr_values = st.text(
    alphabet=string.ascii_letters + string.digits + " <>&\"-.@",
    min_size=0, max_size=15,
)


@st.composite
def pnode_trees(draw, depth=3):
    tag = draw(tag_names)
    attrs = draw(
        st.dictionaries(attr_names, attr_values, max_size=3)
    )
    if depth == 0 or draw(st.booleans()):
        text = draw(st.one_of(st.none(), text_values))
        return PNode(tag, attrs, text)
    children = draw(
        st.lists(pnode_trees(depth=depth - 1), max_size=4)
    )
    node = PNode(tag, attrs)
    for child in children:
        node.append(child)
    return node


@st.composite
def fragment_paths(draw):
    """Random paths inside the GUPster XPath fragment."""
    n_steps = draw(st.integers(1, 4))
    steps = []
    for _ in range(n_steps):
        wildcard = draw(st.booleans()) and draw(st.booleans())
        name = "*" if wildcard else draw(tag_names)
        predicates = tuple(
            Predicate(attr, value)
            for attr, value in draw(
                st.dictionaries(
                    attr_names,
                    st.text(alphabet=string.ascii_lowercase,
                            min_size=1, max_size=5),
                    max_size=2,
                )
            ).items()
        )
        steps.append(Step(name, predicates))
    attribute = draw(st.one_of(st.none(), attr_names))
    return Path(tuple(steps), attribute)


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

class TestSerializationProperties:
    @given(pnode_trees())
    @settings(max_examples=200)
    def test_parse_inverts_serialize(self, tree):
        assert parse(tree.serialize()).deep_equal(tree)

    @given(pnode_trees())
    def test_pretty_print_parses_the_same(self, tree):
        # Whitespace-only leaf text is the one thing pretty-printing
        # cannot round-trip; skip those rare draws.
        for node in tree.walk():
            if node.text is not None and not node.text.strip():
                return
        assert parse(tree.serialize(indent=2)).deep_equal(tree)

    @given(pnode_trees())
    def test_copy_is_deep_equal_and_independent(self, tree):
        dup = tree.copy()
        assert dup.deep_equal(tree)
        dup.attrs["mutation"] = "x"
        assert "mutation" not in tree.attrs

    @given(pnode_trees())
    def test_canonical_key_matches_deep_equal_on_identical(self, tree):
        assert tree.canonical_key() == tree.copy().canonical_key()

    @given(pnode_trees())
    def test_size_counts_walk(self, tree):
        assert tree.size() == len(list(tree.walk()))


# ---------------------------------------------------------------------------
# Path parsing
# ---------------------------------------------------------------------------

class TestPathProperties:
    @given(fragment_paths())
    @settings(max_examples=200)
    def test_str_round_trips(self, path):
        assert parse_path(str(path)) == path

    @given(fragment_paths())
    def test_hash_consistent_with_equality(self, path):
        again = parse_path(str(path))
        assert hash(again) == hash(path)


# ---------------------------------------------------------------------------
# Containment laws
# ---------------------------------------------------------------------------

class TestContainmentProperties:
    @given(fragment_paths())
    def test_reflexive(self, path):
        assert node_contains(path, path)
        if path.attribute is None:
            assert subtree_covers(path, path)
        assert subtree_overlaps(path, path)

    @given(fragment_paths(), fragment_paths())
    @settings(max_examples=300)
    def test_covers_implies_overlaps(self, a, b):
        if subtree_covers(a, b):
            assert subtree_overlaps(a, b)

    @given(fragment_paths(), fragment_paths())
    @settings(max_examples=300)
    def test_overlap_symmetric(self, a, b):
        assert subtree_overlaps(a, b) == subtree_overlaps(b, a)

    @given(fragment_paths(), fragment_paths(), fragment_paths())
    @settings(max_examples=200)
    def test_covers_transitive(self, a, b, c):
        if subtree_covers(a, b) and subtree_covers(b, c):
            assert subtree_covers(a, c)

    @given(fragment_paths(), fragment_paths())
    def test_node_containment_implies_coverage(self, a, b):
        if a.attribute is None and node_contains(a, b):
            assert subtree_covers(a, b)

    @given(pnode_trees(), fragment_paths())
    @settings(max_examples=300)
    def test_containment_sound_on_documents(self, tree, path):
        """Semantic check: if q covers p, every node selected by p in a
        real document lies inside a subtree selected by q."""
        inner_nodes = evaluate(tree, path.element_path())
        wider = Path(path.steps[:1], None)
        if subtree_covers(wider, path):
            outer_nodes = set(
                id(n) for n in evaluate(tree, wider)
            )
            for node in inner_nodes:
                assert any(
                    id(ancestor) in outer_nodes
                    for ancestor in node.path_from_root()
                )


# ---------------------------------------------------------------------------
# Steps
# ---------------------------------------------------------------------------

class TestStepProperties:
    @given(fragment_paths(), fragment_paths())
    def test_step_contains_implies_compatible(self, a, b):
        for sa, sb in zip(a.steps, b.steps):
            if step_contains(sa, sb):
                assert steps_compatible(sa, sb)


# ---------------------------------------------------------------------------
# Merge algebra
# ---------------------------------------------------------------------------

@st.composite
def keyed_books(draw):
    """Address books whose items are keyed by id (GUP_KEYSPEC)."""
    book = PNode("address-book")
    ids = draw(
        st.lists(
            st.integers(0, 8), unique=True, max_size=5
        )
    )
    for item_id in ids:
        item = book.append(PNode("item", {"id": str(item_id)}))
        item.append(
            PNode("name", text=draw(
                st.text(alphabet=string.ascii_letters, min_size=1,
                        max_size=8)
            ))
        )
    return book


class TestMergeProperties:
    @given(keyed_books())
    def test_idempotent(self, book):
        merged = deep_union(book, book.copy(), GUP_KEYSPEC)
        assert merged.canonical_key() == book.canonical_key()

    @given(keyed_books(), keyed_books())
    @settings(max_examples=200)
    def test_union_of_ids(self, a, b):
        merged = deep_union(a, b, GUP_KEYSPEC)
        ids_a = {i.attrs["id"] for i in a.children}
        ids_b = {i.attrs["id"] for i in b.children}
        merged_ids = {i.attrs["id"] for i in merged.children}
        assert merged_ids == ids_a | ids_b
        # No duplicate keyed entries survive.
        assert len(merged.children) == len(merged_ids)

    @given(keyed_books(), keyed_books())
    @settings(max_examples=200)
    def test_commutative_up_to_order(self, a, b):
        ab = deep_union(a, b, GUP_KEYSPEC,
                        ConflictPolicy.PREFER_FIRST)
        ba = deep_union(b, a, GUP_KEYSPEC,
                        ConflictPolicy.PREFER_SECOND)
        assert ab.canonical_key() == ba.canonical_key()

    @given(keyed_books(), keyed_books(), keyed_books())
    @settings(max_examples=100)
    def test_associative_ids(self, a, b, c):
        left = deep_union(deep_union(a, b, GUP_KEYSPEC), c, GUP_KEYSPEC)
        right = deep_union(a, deep_union(b, c, GUP_KEYSPEC), GUP_KEYSPEC)
        assert {i.attrs["id"] for i in left.children} == {
            i.attrs["id"] for i in right.children
        }

    @given(keyed_books(), keyed_books())
    def test_inputs_unmodified(self, a, b):
        a_before = a.canonical_key()
        b_before = b.canonical_key()
        deep_union(a, b, GUP_KEYSPEC)
        assert a.canonical_key() == a_before
        assert b.canonical_key() == b_before
