"""Unit tests for the GUP schema, typed values, and schema evolution."""

import pytest

from repro.errors import SchemaError
from repro.pxml import GUP_SCHEMA, parse
from repro.pxml.schema import (
    BOOLEAN,
    DATETIME,
    EMAIL,
    INTEGER,
    PHONE,
    ChildDecl,
    ElementDecl,
    build_gup_schema,
)


def valid_profile():
    return parse(
        "<user id='alice'>"
        "<self><name>Alice</name>"
        "<email type='personal'>alice@example.com</email>"
        "<number type='cell'>908-582-1111</number></self>"
        "<presence><status>available</status></presence>"
        "<devices><device id='d1' type='cell-phone' carrier='sprintpcs'/>"
        "</devices>"
        "<calendar><appointment id='a1'>"
        "<start>2003-01-06T09:00</start><end>2003-01-06T10:00</end>"
        "<subject>CIDR talk</subject></appointment></calendar>"
        "</user>"
    )


class TestValueTypes:
    def test_phone_normalizing_equality(self):
        # The exact example from the paper's Section 6.
        assert PHONE.equal("908-582-4393", "(908) 582-4393")
        assert not PHONE.equal("908-582-4393", "908-582-4394")

    def test_phone_us_country_code_stripped(self):
        assert PHONE.equal("+1 908 582 4393", "9085824393")

    def test_phone_validation(self):
        assert PHONE.is_valid("908-582-4393")
        assert not PHONE.is_valid("123")

    def test_email(self):
        assert EMAIL.is_valid("a@b.com")
        assert not EMAIL.is_valid("not-an-email")
        assert EMAIL.equal("A@B.COM", "a@b.com")

    def test_boolean(self):
        assert BOOLEAN.is_valid("true")
        assert BOOLEAN.is_valid("FALSE")
        assert not BOOLEAN.is_valid("yes")

    def test_integer(self):
        assert INTEGER.is_valid("42")
        assert INTEGER.is_valid("-7")
        assert not INTEGER.is_valid("4.2")
        assert INTEGER.equal("007", "7")

    def test_datetime(self):
        assert DATETIME.is_valid("2003-01-06T09:00")
        assert DATETIME.is_valid("2003-01-06")
        assert not DATETIME.is_valid("Jan 6")
        assert DATETIME.equal("2003-01-06 09:00", "2003-01-06T09:00")


class TestValidation:
    def test_valid_profile_passes(self):
        assert GUP_SCHEMA.validate(valid_profile()) == []
        assert GUP_SCHEMA.is_valid(valid_profile())

    def test_wrong_root(self):
        violations = GUP_SCHEMA.validate(parse("<profile/>"))
        assert len(violations) == 1
        assert "root" in violations[0].message

    def test_missing_required_attribute(self):
        doc = parse("<user/>")
        violations = GUP_SCHEMA.validate(doc)
        assert any("@id" in v.message for v in violations)

    def test_bad_enumerated_value(self):
        doc = parse(
            "<user id='a'><devices>"
            "<device id='d' type='hovercraft'/></devices></user>"
        )
        violations = GUP_SCHEMA.validate(doc)
        assert any("hovercraft" in v.message for v in violations)

    def test_bad_typed_text(self):
        doc = parse(
            "<user id='a'><self>"
            "<email type='personal'>not-an-email</email></self></user>"
        )
        violations = GUP_SCHEMA.validate(doc)
        assert any("email" in v.message for v in violations)

    def test_occurrence_one_enforced(self):
        doc = parse("<user id='a'><presence/></user>")
        violations = GUP_SCHEMA.validate(doc)
        assert any("status" in v.message for v in violations)

    def test_occurrence_opt_enforced(self):
        doc = parse("<user id='a'><presence><status>x</status>"
                    "<since>2003-01-01</since><since>2003-01-02</since>"
                    "</presence></user>")
        violations = GUP_SCHEMA.validate(doc)
        assert any("at most once" in v.message for v in violations)

    def test_strict_rejects_undeclared_element(self):
        doc = parse("<user id='a'><mp3-playlist/></user>")
        assert not GUP_SCHEMA.is_valid(doc)

    def test_tolerant_schema_accepts_extensions(self):
        tolerant = build_gup_schema(strict=False)
        doc = parse("<user id='a'><mp3-playlist><song/></mp3-playlist>"
                    "</user>")
        assert tolerant.is_valid(doc)

    def test_check_raises_with_all_violations(self):
        doc = parse("<user><devices><device/></devices></user>")
        with pytest.raises(SchemaError) as excinfo:
            GUP_SCHEMA.check(doc)
        assert "@id" in str(excinfo.value)

    def test_violation_paths_locate_problems(self):
        doc = parse("<user id='a'><devices><device id='d' "
                    "type='cell-phone' bogus='x'/></devices></user>")
        violations = GUP_SCHEMA.validate(doc)
        assert violations[0].path == "/user/devices/device"


class TestComponents:
    def test_component_tags_include_paper_examples(self):
        tags = GUP_SCHEMA.component_tags()
        # Components named in the paper's coverage examples:
        for expected in ("address-book", "presence", "game-scores"):
            assert expected in tags

    def test_component_paths_for_user(self):
        paths = GUP_SCHEMA.component_paths("arnaud")
        assert "/user[@id='arnaud']/address-book" in paths
        assert all(p.startswith("/user[@id='arnaud']/") for p in paths)

    def test_skeleton_is_valid(self):
        doc = GUP_SCHEMA.skeleton("newbie")
        assert GUP_SCHEMA.is_valid(doc)
        assert doc.attrs["id"] == "newbie"


class TestEvolution:
    def test_added_component_validates(self):
        evolved = GUP_SCHEMA.evolved(
            "1.1",
            new_decls=[
                ElementDecl("mp3-playlist",
                            children=[ChildDecl("song", "many")],
                            component=True),
                ElementDecl("song", text=None),
            ],
            new_children=[("user", ChildDecl("mp3-playlist", "opt"))],
        )
        doc = parse("<user id='a'><mp3-playlist><song/></mp3-playlist>"
                    "</user>")
        assert evolved.is_valid(doc)
        assert evolved.version == "1.1"

    def test_old_documents_stay_valid(self):
        evolved = GUP_SCHEMA.evolved(
            "1.1",
            new_decls=[ElementDecl("extras")],
            new_children=[("user", ChildDecl("extras", "opt"))],
        )
        assert evolved.is_valid(valid_profile())

    def test_redefinition_rejected(self):
        with pytest.raises(SchemaError):
            GUP_SCHEMA.evolved("1.1", new_decls=[ElementDecl("presence")])

    def test_mandatory_addition_rejected(self):
        with pytest.raises(SchemaError):
            GUP_SCHEMA.evolved(
                "1.1",
                new_decls=[ElementDecl("required-thing")],
                new_children=[("user", ChildDecl("required-thing", "one"))],
            )

    def test_unknown_parent_rejected(self):
        with pytest.raises(SchemaError):
            GUP_SCHEMA.evolved(
                "1.1", new_children=[("nowhere", ChildDecl("x", "opt"))]
            )

    def test_original_schema_unchanged_by_evolution(self):
        GUP_SCHEMA.evolved(
            "1.1",
            new_decls=[ElementDecl("ephemeral")],
            new_children=[("user", ChildDecl("ephemeral", "opt"))],
        )
        assert "ephemeral" not in GUP_SCHEMA.decls
