"""Unit tests for the discrete-event engine and the network model."""

import pytest

from repro.errors import NodeUnreachableError
from repro.simnet import Network, Simulator


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, order.append, "c")
        sim.schedule(10, order.append, "a")
        sim.schedule(20, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 30

    def test_same_time_fires_in_schedule_order(self):
        sim = Simulator()
        order = []
        sim.schedule(5, order.append, 1)
        sim.schedule(5, order.append, 2)
        sim.schedule(5, order.append, 3)
        sim.run()
        assert order == [1, 2, 3]

    def test_schedule_at(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(42.0, fired.append, True)
        sim.run()
        assert fired and sim.now == 42.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule(10, fired.append, "x")
        timer.cancel()
        sim.run()
        assert fired == []

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, "early")
        sim.schedule(100, fired.append, "late")
        sim.run(until=50)
        assert fired == ["early"]
        assert sim.now == 50
        sim.run()
        assert fired == ["early", "late"]

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        order = []

        def chain(n):
            order.append(n)
            if n < 3:
                sim.schedule(1, chain, n + 1)

        sim.schedule(0, chain, 1)
        sim.run()
        assert order == [1, 2, 3]

    def test_every_repeats_until(self):
        sim = Simulator()
        ticks = []
        sim.every(10, lambda: ticks.append(sim.now), until=35)
        sim.run()
        assert ticks == [10, 20, 30]

    def test_every_cancel_stops_recurrence(self):
        sim = Simulator()
        ticks = []
        timer = sim.every(10, lambda: ticks.append(sim.now))

        def stop():
            timer.cancel()

        sim.schedule(25, stop)
        sim.run(until=100)
        assert ticks == [10, 20]

    def test_every_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            Simulator().every(0, lambda: None)

    def test_pending_and_processed_counts(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0
        assert sim.processed == 2

    def test_every_never_fires_past_until(self):
        # Regression: interval > until - now used to fire one tick
        # PAST the bound.
        sim = Simulator()
        ticks = []
        sim.every(10, lambda: ticks.append(sim.now), until=5)
        sim.run()
        assert ticks == []
        assert sim.pending == 0

    def test_every_until_boundary_is_inclusive(self):
        sim = Simulator()
        ticks = []
        sim.every(10, lambda: ticks.append(sim.now), until=10)
        sim.run()
        assert ticks == [10]

    def test_every_until_guard_mid_run(self):
        # The recurrence started late must respect the bound too.
        sim = Simulator()
        ticks = []

        def start():
            sim.every(10, lambda: ticks.append(sim.now), until=45)

        sim.schedule(40, start)
        sim.run()
        assert ticks == []

    def test_cancelled_timers_are_compacted(self):
        # Regression: cancelled timers used to linger in the heap
        # until their fire time, and `pending` scanned the whole heap.
        sim = Simulator()
        timers = [sim.schedule(1000 + i, lambda: None)
                  for i in range(100)]
        survivor = sim.schedule(5, lambda: None)
        for timer in timers:
            timer.cancel()
        assert sim.compactions >= 1
        assert len(sim._heap) < 50  # the corpses are actually gone
        assert sim.pending == 1
        sim.run()
        assert sim.processed == 1
        assert not survivor.cancelled

    def test_compaction_preserves_firing_order(self):
        def run(cancel_some):
            sim = Simulator()
            order = []
            timers = []
            for i in range(40):
                timers.append(
                    sim.schedule(100 - i, order.append, 100 - i)
                )
            if cancel_some:
                for timer in timers[:30]:  # enough to force compaction
                    timer.cancel()
            sim.run()
            return order

        kept = run(cancel_some=False)
        compacted = run(cancel_some=True)
        # Survivors fire in exactly the order they would have anyway.
        assert compacted == [w for w in kept if w in set(compacted)]
        assert compacted == sorted(compacted)

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        timer = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        timer.cancel()
        timer.cancel()
        assert sim.pending == 1
        sim.run()
        assert sim.processed == 1


def small_network():
    net = Network(seed=7)
    net.add_node("gupster", region="core")
    net.add_node("yahoo", region="internet")
    net.add_node("phone", region="wireless")
    return net


class TestNetwork:
    def test_duplicate_node_rejected(self):
        net = small_network()
        with pytest.raises(ValueError):
            net.add_node("yahoo")

    def test_unknown_node_raises(self):
        net = small_network()
        with pytest.raises(NodeUnreachableError):
            net.trace().hop("gupster", "mystery", 10)

    def test_hop_adds_latency_and_bytes(self):
        net = small_network()
        trace = net.trace()
        trace.hop("gupster", "yahoo", 1000)
        assert trace.elapsed_ms > 0
        assert trace.bytes_total == 1000
        assert trace.hops == 1

    def test_deterministic_given_seed(self):
        def run():
            net = small_network()
            trace = net.trace()
            trace.hop("gupster", "yahoo", 500)
            trace.hop("yahoo", "phone", 500)
            return trace.elapsed_ms

        assert run() == run()

    def test_wireless_slower_than_core(self):
        net = small_network()
        net.add_node("hlr", region="core")
        fast = net.trace()
        fast.hop("gupster", "hlr", 100)
        slow = net.trace()
        slow.hop("gupster", "phone", 100)
        assert slow.elapsed_ms > fast.elapsed_ms

    def test_explicit_link_overrides_region(self):
        net = small_network()
        net.link("gupster", "yahoo", base_ms=0.5, jitter_ms=0.0)
        trace = net.trace()
        trace.hop("gupster", "yahoo", 0)
        assert trace.elapsed_ms < 2.0

    def test_bandwidth_charges_transfer_time(self):
        net = Network(seed=1)
        net.add_node("a")
        net.add_node("b")
        net.link("a", "b", base_ms=1.0, jitter_ms=0.0, bandwidth_bpms=10.0)
        small = net.trace()
        small.hop("a", "b", 10)
        large = net.trace()
        large.hop("a", "b", 10000)
        assert large.elapsed_ms - small.elapsed_ms == pytest.approx(
            (10000 - 10) / 10.0
        )

    def test_failed_node_charges_timeout_then_raises(self):
        net = small_network()
        net.fail("yahoo")
        trace = net.trace()
        with pytest.raises(NodeUnreachableError):
            trace.hop("gupster", "yahoo", 10)
        assert trace.elapsed_ms == net.detect_timeout_ms

    def test_restore_heals_node(self):
        net = small_network()
        net.fail("yahoo")
        net.restore("yahoo")
        trace = net.trace()
        trace.hop("gupster", "yahoo", 10)
        assert trace.hops == 1

    def test_round_trip_is_two_hops(self):
        net = small_network()
        trace = net.trace()
        trace.round_trip("gupster", "yahoo", 100, 900)
        assert trace.hops == 2
        assert trace.bytes_total == 1000

    def test_compute_adds_time_no_bytes(self):
        net = small_network()
        trace = net.trace()
        trace.compute(3.5, "rewrite")
        assert trace.elapsed_ms == 3.5
        assert trace.bytes_total == 0
        with pytest.raises(ValueError):
            trace.compute(-1)

    def test_fork_join_parallel_semantics(self):
        net = Network(seed=1)
        net.add_node("hub")
        for name, base in (("s1", 10.0), ("s2", 50.0)):
            net.add_node(name)
            net.link("hub", name, base_ms=base, jitter_ms=0.0)
        trace = net.trace()
        branches = []
        for name in ("s1", "s2"):
            branch = trace.fork()
            branch.round_trip("hub", name, 100, 100)
            branches.append(branch)
        trace.join(branches)
        # Elapsed is the slowest branch, not the sum.
        assert trace.elapsed_ms == max(b.elapsed_ms for b in branches)
        assert trace.bytes_total == 400
        assert trace.hops == 4

    def test_join_empty_is_noop(self):
        net = small_network()
        trace = net.trace()
        trace.join([])
        assert trace.elapsed_ms == 0

    def test_trace_log_records_hops(self):
        net = small_network()
        trace = net.trace()
        trace.hop("gupster", "yahoo", 42, note="referral")
        assert any("referral" in line for line in trace.log)

    def test_snapshot(self):
        net = small_network()
        trace = net.trace()
        trace.hop("gupster", "yahoo", 10)
        snap = trace.snapshot()
        assert snap["bytes"] == 10.0 and snap["hops"] == 1.0
