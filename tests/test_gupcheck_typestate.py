"""Fixture suites for the gupcheck v3 typestate rules.

Each rule runs the generic CFG + dataflow machinery
(:mod:`repro.analysis.rules._typestate`), so these tests double as
end-to-end coverage of path-sensitive verdicts: branches that release
on one arm only, early returns, loops, and closure captures.

``span-balance``'s legacy fixtures live in ``test_gupcheck.py``;
here we pin exactly what the v3 rewrite changed — the early-return
leak the flow-insensitive heuristic could not see, and the
closure-capture pattern it used to false-positive on.
"""

import json
import textwrap

from repro.analysis import Analyzer, check_source, default_rules
from repro.analysis.rules import (
    CursorLifecycleRule,
    MemoConfinementRule,
    SpanBalanceRule,
)
from repro.analysis.sarif import to_sarif_json

RELPATH = "repro/core/fixture.py"


def dedent(source):
    return textwrap.dedent(source).lstrip("\n")


# ---------------------------------------------------------------------------
# span-balance: what flow-sensitivity changed
# ---------------------------------------------------------------------------

class TestSpanBalanceFlow:
    def test_early_return_leak_is_flagged(self):
        # The v2 heuristic sanctioned any name that appeared in a
        # `with` somewhere in the scope — this leak was invisible.
        found = check_source(SpanBalanceRule(), dedent(
            """
            def f(rec, cond):
                handle = rec.span("work")
                if cond:
                    return None
                with handle:
                    pass
            """
        ), RELPATH)
        assert len(found) == 1
        assert found[0].line == 2
        assert "never entered" in found[0].message

    def test_closure_release_no_longer_false_positives(self):
        # The v2 heuristic walked scopes separately, so a handle
        # finished inside a nested callback read as abandoned.  The
        # CFG treats the nested def as a capture of the name — the
        # handle's fate is delegated, not dropped.
        found = check_source(SpanBalanceRule(), dedent(
            """
            def f(rec, sim):
                handle = rec.span("wave")

                def finish():
                    handle.finish()

                sim.schedule(5.0, finish)
            """
        ), RELPATH)
        assert found == []

    def test_one_armed_release_reports_the_leaky_path(self):
        found = check_source(SpanBalanceRule(), dedent(
            """
            def f(rec, cond):
                handle = rec.span("work")
                if cond:
                    handle.finish()
            """
        ), RELPATH)
        assert len(found) == 1
        assert "`handle`" in found[0].message

    def test_release_on_every_arm_is_clean(self):
        found = check_source(SpanBalanceRule(), dedent(
            """
            def f(rec, cond):
                handle = rec.span("work")
                if cond:
                    handle.finish()
                else:
                    handle.close()
            """
        ), RELPATH)
        assert found == []

    def test_loop_reopen_is_clean_when_consumed(self):
        found = check_source(SpanBalanceRule(), dedent(
            """
            def f(rec, items):
                for item in items:
                    handle = rec.span("item")
                    with handle:
                        pass
            """
        ), RELPATH)
        assert found == []

    def test_try_finally_release_is_clean(self):
        found = check_source(SpanBalanceRule(), dedent(
            """
            def f(rec):
                handle = rec.span("work")
                try:
                    risky()
                finally:
                    handle.finish()
            """
        ), RELPATH)
        assert found == []


# ---------------------------------------------------------------------------
# cursor-lifecycle
# ---------------------------------------------------------------------------

class TestCursorLifecycleRule:
    def test_stale_after_append_is_flagged(self):
        found = check_source(CursorLifecycleRule(), dedent(
            """
            def f(log, listener):
                snapshot = log.cursor(listener)
                log.append("profile/a", "x")
                return log.since(snapshot)
            """
        ), RELPATH)
        assert len(found) == 1
        assert "`snapshot`" in found[0].message
        assert "stale" in found[0].message

    def test_stale_after_compact_is_flagged(self):
        found = check_source(CursorLifecycleRule(), dedent(
            """
            def f(log, listener):
                snapshot = log.cursor(listener)
                log.compact(10)
                return log.backlog(snapshot)
            """
        ), RELPATH)
        assert len(found) == 1

    def test_reread_after_move_is_clean(self):
        found = check_source(CursorLifecycleRule(), dedent(
            """
            def f(log, listener):
                snapshot = log.cursor(listener)
                log.append("profile/a", "x")
                snapshot = log.cursor(listener)
                return log.since(snapshot)
            """
        ), RELPATH)
        assert found == []

    def test_replay_before_move_is_clean(self):
        found = check_source(CursorLifecycleRule(), dedent(
            """
            def f(log, listener):
                snapshot = log.cursor(listener)
                backlog = log.since(snapshot)
                log.append("profile/a", "x")
                return backlog
            """
        ), RELPATH)
        assert found == []

    def test_moved_on_one_path_is_stale_at_join(self):
        # Must-fresh join: a snapshot that MAY be stale is stale.
        found = check_source(CursorLifecycleRule(), dedent(
            """
            def f(log, listener, cond):
                snapshot = log.cursor(listener)
                if cond:
                    log.append("profile/a", "x")
                return log.since(snapshot)
            """
        ), RELPATH)
        assert len(found) == 1

    def test_non_bus_receivers_are_untracked(self):
        # `catalog` is not a bus/log-ish name — no typestate.
        found = check_source(CursorLifecycleRule(), dedent(
            """
            def f(catalog, listener):
                snapshot = catalog.cursor(listener)
                catalog.append("row")
                return catalog.since(snapshot)
            """
        ), RELPATH)
        assert found == []

    def test_suppression_comment_honored(self):
        found = check_source(CursorLifecycleRule(), dedent(
            """
            def f(log, listener):
                snapshot = log.cursor(listener)
                log.append("profile/a", "x")
                return log.since(snapshot)  # gupcheck: ignore[cursor-lifecycle] -- replay race exercised on purpose
            """
        ), RELPATH)
        assert found == []


# ---------------------------------------------------------------------------
# memo-confinement
# ---------------------------------------------------------------------------

class TestMemoConfinementRule:
    def test_storing_memo_on_self_escapes(self):
        found = check_source(MemoConfinementRule(), dedent(
            """
            def deliver(self, batch, memo):
                self.last_memo = memo
            """
        ), RELPATH)
        assert len(found) == 1
        assert "escapes its wave" in found[0].message

    def test_storing_derived_decision_escapes(self):
        found = check_source(MemoConfinementRule(), dedent(
            """
            def deliver(self, batch, memo):
                decision = memo.get(("p", "r"))
                self.cached = decision
            """
        ), RELPATH)
        assert len(found) == 1
        assert "shield decision" in found[0].message

    def test_write_back_into_memo_is_allowed(self):
        # `memo[key] = decision` is the wave-scoped cache working as
        # designed — the subscript base is the local memo itself.
        found = check_source(MemoConfinementRule(), dedent(
            """
            def deliver(self, batch, memo, pep):
                for record in batch:
                    key = (record.path, "r")
                    decision = memo.get(key)
                    if decision is None:
                        decision = pep.enforce(record.path)
                        memo[key] = decision
            """
        ), RELPATH)
        assert found == []

    def test_returning_root_memo_escapes(self):
        found = check_source(MemoConfinementRule(), dedent(
            """
            def deliver(self, batch, memo):
                return memo
            """
        ), RELPATH)
        assert len(found) == 1
        assert "flows out of the wave" in found[0].message

    def test_returning_derived_decision_is_allowed(self):
        # A single decision may flow to the caller in-wave; only the
        # memo itself must die with the delivery.
        found = check_source(MemoConfinementRule(), dedent(
            """
            def deliver(self, batch, memo):
                return memo.get(("p", "r"))
            """
        ), RELPATH)
        assert found == []

    def test_rebind_kills_the_mark(self):
        # Path-sensitivity: after a strong rebind the name no longer
        # carries the wave-scoped value.
        found = check_source(MemoConfinementRule(), dedent(
            """
            def deliver(self, batch, memo, pep):
                decision = memo.get(("p", "r"))
                decision = pep.enforce("p")
                self.cached = decision
            """
        ), RELPATH)
        assert found == []

    def test_rebound_on_one_path_still_scoped_at_join(self):
        found = check_source(MemoConfinementRule(), dedent(
            """
            def deliver(self, batch, memo, pep, cond):
                decision = memo.get(("p", "r"))
                if cond:
                    decision = pep.enforce("p")
                self.cached = decision
            """
        ), RELPATH)
        assert len(found) == 1

    def test_annotated_local_memo_is_a_root(self):
        found = check_source(MemoConfinementRule(), dedent(
            """
            def flush(self):
                memo: ShieldMemo = {}
                self.saved = memo
            """
        ), RELPATH)
        assert len(found) == 1

    def test_suppression_comment_honored(self):
        found = check_source(MemoConfinementRule(), dedent(
            """
            def deliver(self, batch, memo):
                self.debug_memo = memo  # gupcheck: ignore[memo-confinement] -- test-only introspection hook
            """
        ), RELPATH)
        assert found == []


# ---------------------------------------------------------------------------
# SARIF round trip for a typestate finding
# ---------------------------------------------------------------------------

class TestTypestateSarif:
    def test_cursor_finding_round_trips(self, tmp_path):
        bad = tmp_path / "repro" / "bus" / "replayer.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(dedent(
            """
            def drain(log, listener):
                snapshot = log.cursor(listener)
                log.append("profile/a", "x")
                return log.since(snapshot)
            """
        ), encoding="utf-8")
        report = Analyzer().analyze_paths([str(tmp_path)])
        cursor = [
            v for v in report.violations
            if v.rule == "cursor-lifecycle"
        ]
        assert len(cursor) == 1

        log = json.loads(to_sarif_json(report, default_rules()))
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["version"].startswith("4.")
        rule_ids = {rule["id"] for rule in driver["rules"]}
        # Every v3 rule is declared with metadata...
        for name in ("span-balance", "cursor-lifecycle",
                     "memo-confinement", "sans-io-purity"):
            assert name in rule_ids
            declared = next(
                r for r in driver["rules"] if r["id"] == name
            )
            assert declared["shortDescription"]["text"]
            assert declared["defaultConfiguration"]["level"] \
                == "error"
        # ...and the finding itself round-trips to the same site.
        (result,) = [
            r for r in run["results"]
            if r["ruleId"] == "cursor-lifecycle"
        ]
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == cursor[0].line
        assert location["artifactLocation"]["uri"].endswith(
            "replayer.py"
        )
        assert "stale" in result["message"]["text"]
        assert (
            driver["rules"][result["ruleIndex"]]["id"]
            == "cursor-lifecycle"
        )
