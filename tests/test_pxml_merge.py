"""Unit tests for deep union and prioritized reconciliation (Figure 9)."""

import pytest

from repro.errors import MergeConflictError
from repro.pxml import (
    ConflictPolicy,
    KeySpec,
    deep_union,
    merge_all,
    parse,
    prioritized_merge,
)


def personal_book():
    return parse(
        "<user id='arnaud'>"
        "<address-book>"
        "<item id='1' type='personal'><name>Bob</name></item>"
        "</address-book>"
        "</user>"
    )


def corporate_book():
    return parse(
        "<user id='arnaud'>"
        "<address-book>"
        "<item id='2' type='corporate'><name>Carol</name></item>"
        "</address-book>"
        "</user>"
    )


class TestDeepUnion:
    def test_figure9_split_address_book(self):
        merged = deep_union(personal_book(), corporate_book())
        book = merged.child("address-book")
        assert sorted(i.attrs["id"] for i in book.children) == ["1", "2"]

    def test_identical_fragments_idempotent(self):
        merged = deep_union(personal_book(), personal_book())
        assert merged.deep_equal(personal_book())

    def test_keyed_items_merge_recursively(self):
        a = parse(
            "<user id='u'><address-book>"
            "<item id='1'><name>Bob</name></item>"
            "</address-book></user>"
        )
        b = parse(
            "<user id='u'><address-book>"
            "<item id='1'><number type='cell'>908-582-1111</number></item>"
            "</address-book></user>"
        )
        merged = deep_union(a, b)
        item = merged.child("address-book").children[0]
        assert item.child("name").text == "Bob"
        assert item.child("number").text == "908-582-1111"

    def test_root_tag_mismatch_raises(self):
        with pytest.raises(MergeConflictError):
            deep_union(parse("<a/>"), parse("<b/>"))

    def test_root_identity_mismatch_raises(self):
        with pytest.raises(MergeConflictError):
            deep_union(
                parse("<user id='a'/>"), parse("<user id='b'/>")
            )

    def test_text_conflict_prefer_first(self):
        a = parse("<user id='u'><presence><status>busy</status>"
                  "</presence></user>")
        b = parse("<user id='u'><presence><status>available</status>"
                  "</presence></user>")
        merged = deep_union(a, b, policy=ConflictPolicy.PREFER_FIRST)
        assert merged.child("presence").child("status").text == "busy"

    def test_text_conflict_prefer_second(self):
        a = parse("<user id='u'><presence><status>busy</status>"
                  "</presence></user>")
        b = parse("<user id='u'><presence><status>available</status>"
                  "</presence></user>")
        merged = deep_union(a, b, policy=ConflictPolicy.PREFER_SECOND)
        assert merged.child("presence").child("status").text == "available"

    def test_text_conflict_raise(self):
        a = parse("<user id='u'><presence><status>busy</status>"
                  "</presence></user>")
        b = parse("<user id='u'><presence><status>available</status>"
                  "</presence></user>")
        with pytest.raises(MergeConflictError):
            deep_union(a, b, policy=ConflictPolicy.RAISE)

    def test_attribute_conflict_policies(self):
        a = parse("<user id='u'><device id='d' carrier='sprint'/></user>")
        b = parse("<user id='u'><device id='d' carrier='att'/></user>")
        spec = KeySpec({"user": ("id",), "device": ("id",)})
        first = deep_union(a, b, keyspec=spec,
                           policy=ConflictPolicy.PREFER_FIRST)
        assert first.children[0].attrs["carrier"] == "sprint"
        second = deep_union(a, b, keyspec=spec,
                            policy=ConflictPolicy.PREFER_SECOND)
        assert second.children[0].attrs["carrier"] == "att"
        with pytest.raises(MergeConflictError):
            deep_union(a, b, keyspec=spec, policy=ConflictPolicy.RAISE)

    def test_unkeyed_duplicates_deduplicated(self):
        a = parse("<user id='u'><bookmarks>"
                  "<bookmark id='1'>x</bookmark></bookmarks></user>")
        merged = deep_union(a, a.copy())
        assert len(merged.child("bookmarks").children) == 1

    def test_result_is_fresh_tree(self):
        a, b = personal_book(), corporate_book()
        merged = deep_union(a, b)
        merged.child("address-book").children[0].attrs["id"] = "99"
        assert a.child("address-book").children[0].attrs["id"] == "1"


class TestMergeAll:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_all([])

    def test_single_fragment_copied(self):
        original = personal_book()
        merged = merge_all([original])
        assert merged.deep_equal(original)
        assert merged is not original

    def test_three_way_merge(self):
        c = parse(
            "<user id='arnaud'><presence><status>available</status>"
            "</presence></user>"
        )
        merged = merge_all([personal_book(), corporate_book(), c])
        assert merged.child("presence") is not None
        assert len(merged.child("address-book").children) == 2


class TestPrioritizedMerge:
    def test_higher_priority_wins_conflicts(self):
        phone = parse("<user id='u'><presence><status>stale</status>"
                      "</presence></user>")
        network = parse("<user id='u'><presence><status>available</status>"
                        "</presence></user>")
        merged = prioritized_merge([(2, phone), (1, network)])
        assert merged.child("presence").child("status").text == "available"

    def test_lower_priority_entries_survive(self):
        merged = prioritized_merge(
            [(1, personal_book()), (2, corporate_book())]
        )
        assert len(merged.child("address-book").children) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            prioritized_merge([])
