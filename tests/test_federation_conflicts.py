"""The E22 conflict matrix: every (policy x direction x concurrent-
write ordering) cell with its exact expected winner, the equal-
virtual-timestamp tie included, and the provenance ledger checked for
who won and why (DESIGN.md §4.10).

Orderings are *virtual-timestamp* orderings — which side authored the
newer value. Each cell is additionally run with both application
orders (GUP write first / foreign write first) and must land on the
same fixpoint: wall-clock application order must never matter, only
the authored instants and the policy do.
"""

import pytest

from repro.access import (
    PolicyEnforcementPoint,
    PolicyRepository,
    PolicyRule,
)
from repro.bus import ChangeBus
from repro.core.provenance import ProvenanceTracker
from repro.federation import (
    FederationListener,
    ForeignDirectory,
    GupAttributeStore,
    MappingEntry,
    MappingTable,
    POLICIES,
    Reconciler,
    policy_named,
)
from repro.simnet import Network, Simulator

USER = "u1"
SUFFIX = "self/email"
ATTR = "mail"
GUP_VALUE = "alpha"
FOREIGN_VALUE = "beta"
MERGED = "alpha,beta"

#: ordering -> (gup authored-at, foreign authored-at).
ORDERINGS = {
    "gup-newer": (20.0, 10.0),
    "foreign-newer": (10.0, 20.0),
    "tie": (15.0, 15.0),
}

#: The exact expected surviving value for direction="both", by
#: (policy, ordering). Directional cells ignore the policy entirely.
EXPECTED_BOTH = {
    ("lww", "gup-newer"): ("gup", GUP_VALUE),
    ("lww", "foreign-newer"): ("foreign", FOREIGN_VALUE),
    ("lww", "tie"): ("gup", GUP_VALUE),  # GUP is the master
    ("gup-wins", "gup-newer"): ("gup", GUP_VALUE),
    ("gup-wins", "foreign-newer"): ("gup", GUP_VALUE),
    ("gup-wins", "tie"): ("gup", GUP_VALUE),
    ("foreign-wins", "gup-newer"): ("foreign", FOREIGN_VALUE),
    ("foreign-wins", "foreign-newer"): ("foreign", FOREIGN_VALUE),
    ("foreign-wins", "tie"): ("foreign", FOREIGN_VALUE),
    ("merge", "gup-newer"): ("merge", MERGED),
    ("merge", "foreign-newer"): ("merge", MERGED),
    ("merge", "tie"): ("merge", MERGED),
}


def run_cell(policy, direction, ordering, foreign_first):
    """One matrix cell: concurrent writes, then rounds to fixpoint.
    Returns (gup value, foreign value, reconciler, ledger)."""
    sim = Simulator()
    network = Network()
    network.add_node("gupster")
    network.add_node("fed-conn")
    network.add_node("corp-ad")
    bus = ChangeBus(sim, network, "gupster")
    gup = GupAttributeStore(sim, bus=bus)
    foreign = ForeignDirectory("corp-ad", sim)
    table = MappingTable([MappingEntry(SUFFIX, ATTR, direction)])
    repo = PolicyRepository()
    repo.store(PolicyRule(USER, "/user[@id='%s']" % USER, "permit"))
    prov = ProvenanceTracker()
    rec = Reconciler(
        "fed-conn", gup, foreign, table, network,
        PolicyEnforcementPoint(repo),
        policy=policy_named(policy),
        provenance=prov,
        interval_ms=500.0,
    )
    bus.attach(FederationListener("fed", rec))
    rec.start()
    gup_at, foreign_at = ORDERINGS[ordering]
    writes = [
        lambda: gup.write(USER, SUFFIX, GUP_VALUE, at=gup_at),
        lambda: foreign.write(
            USER, ATTR, FOREIGN_VALUE, at=foreign_at
        ),
    ]
    if foreign_first:
        writes.reverse()
    for write in writes:
        write()
    sim.run(until=6000)
    g = gup.read(USER, SUFFIX)
    f = foreign.read(USER, ATTR)
    return (
        None if g is None else g[0],
        None if f is None else f[0],
        rec,
        prov,
    )


def reconcile_records(prov):
    return [
        record
        for record in prov._records
        if record.operation == "reconcile" and record.granted
    ]


@pytest.mark.parametrize("foreign_first", (False, True))
@pytest.mark.parametrize("ordering", sorted(ORDERINGS))
@pytest.mark.parametrize("policy", sorted(POLICIES))
class TestConflictMatrix:
    def test_direction_both(self, policy, ordering, foreign_first):
        g, f, rec, prov = run_cell(
            policy, "both", ordering, foreign_first
        )
        winner, value = EXPECTED_BOTH[(policy, ordering)]
        assert g == value and f == value, (
            "cell (%s, both, %s): expected %r, got gup=%r foreign=%r"
            % (policy, ordering, value, g, f)
        )
        assert rec.conflicts == 1
        # Exactly one ledger entry names the winner and the reason.
        records = reconcile_records(prov)
        assert len(records) == 1
        record = records[0]
        assert record.requester == "corp-ad"
        assert str(record.path) == (
            "/user[@id='%s']/%s" % (USER, SUFFIX)
        )
        assert record.note.startswith(
            "policy=%s winner=%s" % (policy, winner)
        )
        if policy == "lww" and ordering == "tie":
            assert "tie" in record.note
            assert "master" in record.note
        # The per-winner counter moved, and only that one.
        expected_counts = {
            "gup": (1, 0, 0), "foreign": (0, 1, 0),
            "merge": (0, 0, 1),
        }[winner]
        assert (
            rec.conflict_gup_wins, rec.conflict_foreign_wins,
            rec.conflict_merges,
        ) == expected_counts

    def test_direction_out(self, policy, ordering, foreign_first):
        # GUP authoritative: the policy is never consulted, GUP's
        # value overwrites the concurrent foreign write regardless of
        # which side authored later.
        g, f, rec, prov = run_cell(
            policy, "out", ordering, foreign_first
        )
        assert g == GUP_VALUE and f == GUP_VALUE
        assert rec.conflicts == 0
        assert reconcile_records(prov) == []

    def test_direction_in(self, policy, ordering, foreign_first):
        # Foreign authoritative: its value reasserts over the
        # concurrent GUP edit; again no policy, no conflict.
        g, f, rec, prov = run_cell(
            policy, "in", ordering, foreign_first
        )
        assert g == FOREIGN_VALUE and f == FOREIGN_VALUE
        assert rec.conflicts == 0
        assert reconcile_records(prov) == []


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_resolved_cell_is_a_quiet_fixpoint(policy):
    """After the conflict resolves, further rounds write nothing —
    merge included (both sides were rewritten to the merged value,
    which then compares equal forever)."""
    sim_probe = run_cell(policy, "both", "tie", False)
    _g, _f, rec, _prov = sim_probe
    writes_before = (rec.gup.writes, rec.foreign.writes)
    rec.sim.run(until=rec.sim.now + 5000)
    assert (rec.gup.writes, rec.foreign.writes) == writes_before
    assert rec.conflicts == 1  # resolved once, never re-fought
