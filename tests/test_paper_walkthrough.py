"""End-to-end walkthrough of the paper's own narrative, as one
integration test per section. If these pass, the reproduction tells
the paper's story verbatim."""

import pytest

from repro.access import RequestContext
from repro.errors import AccessDeniedError
from repro.pxml import evaluate_values
from repro.workloads import build_converged_world


class TestSection43GupsterInAction:
    """Section 4.3: 'GUPster in action', step by step."""

    def setup_method(self):
        self.world = build_converged_world()
        self.server = self.world.server

    def test_step1_stores_registered_their_components(self):
        # "Yahoo! will tell GUPster that it stores the address book of
        # Arnaud... Sprint PCS will inform GUPster that it stores
        # Arnaud's address book and game scores."
        graph = dict(self.server.coverage.component_graph("arnaud"))
        assert "gup.yahoo.com" in graph[
            "/user[@id='arnaud']/address-book"
        ]
        assert "gup.spcs.com" in graph[
            "/user[@id='arnaud']/address-book"
        ]
        assert "gup.spcs.com" in graph[
            "/user[@id='arnaud']/game-scores"
        ]
        assert "gup.yahoo.com" in graph[
            "/user[@id='arnaud']/game-scores"
        ]

    def test_step2_coverage_matches_paper_example(self):
        # The paper's coverage box:
        #   /user[@id='arnaud']/address-book ->
        #       { gup.yahoo.com, gup.spcs.com }
        #   /user[@id='arnaud']/presence -> { gup.spcs.com }
        assert sorted(self.server.coverage.stores_for(
            "/user[@id='arnaud']/address-book"
        )) == ["gup.spcs.com", "gup.yahoo.com"]
        assert self.server.coverage.stores_for(
            "/user[@id='arnaud']/presence"
        ) == ["gup.spcs.com"]

    def test_step3_referral_is_the_papers_choice(self):
        # "GUPster will return to the client application something
        # like: gup.yahoo.com/user[@id='arnaud']/address-book ||
        # gup.spcs.com/user[@id='arnaud']/address-book"
        referral = self.server.resolve(
            "/user[@id='arnaud']/address-book",
            RequestContext("arnaud", relationship="self"),
        )
        rendered = referral.render()
        assert "gup.yahoo.com/user[@id='arnaud']/address-book" in rendered
        assert "gup.spcs.com/user[@id='arnaud']/address-book" in rendered
        assert "||" in rendered

    def test_step4_client_fetches_directly(self):
        # "The client application will then use the referral (one of
        # them, or both) to get the data directly."
        fragment, trace = self.world.executor.referral(
            "client-app", "/user[@id='arnaud']/address-book",
            RequestContext("arnaud", relationship="self"),
        )
        names = evaluate_values(
            fragment, "/user/address-book/item/name"
        )
        assert "Rick Hull" in names
        # GUPster returned no data — only the stores shipped bytes.
        assert any("gup." in line for line in trace.log)

    def test_step5_unregister(self):
        # "Data stores can also unregister components."
        self.server.unregister_component(
            "/user[@id='arnaud']/presence", "gup.spcs.com"
        )
        from repro.errors import NoCoverageError
        with pytest.raises(NoCoverageError):
            self.server.resolve(
                "/user[@id='arnaud']/presence",
                RequestContext("arnaud", relationship="self"),
            )


class TestSection46PrivacyShield:
    """Section 4.6: the example policies, verbatim."""

    def setup_method(self):
        self.world = build_converged_world()
        self.presence = "/user[@id='arnaud']/presence"

    def resolve(self, requester, relationship, hour=12, weekday=1):
        return self.world.server.resolve(
            self.presence,
            RequestContext(requester, relationship=relationship,
                           hour=hour, weekday=weekday),
        )

    def test_coworker_working_hours_only(self):
        assert self.resolve("bob", "co-worker", hour=10).parts
        with pytest.raises(AccessDeniedError):
            self.resolve("bob", "co-worker", hour=20)
        with pytest.raises(AccessDeniedError):
            self.resolve("bob", "co-worker", hour=10, weekday=6)

    def test_boss_and_family_any_time(self):
        assert self.resolve("rick", "boss", hour=3, weekday=6).parts
        assert self.resolve("mom", "family", hour=3, weekday=6).parts

    def test_family_address_book_and_calendar(self):
        ctx = RequestContext("mom", relationship="family")
        book = self.world.server.resolve(
            "/user[@id='arnaud']/address-book", ctx
        )
        # personal slice only
        assert all(
            "personal" in str(part.path) for part in book.parts
        )


class TestSection53SignedQueries:
    """Section 5.3: the signed-query enforcement protocol."""

    def test_store_only_accepts_gupster_signed_queries(self):
        world = build_converged_world()
        referral = world.server.resolve(
            "/user[@id='arnaud']/presence",
            RequestContext("mom", relationship="family"),
        )
        signed = referral.parts[0].signed_query
        verifier = world.server.signer.verifier()
        # The genuine query verifies...
        verifier.verify(signed, now=1.0)
        # ...a self-made (unsigned-by-GUPster) query does not.
        from repro.core import QuerySigner
        from repro.errors import SignatureError
        impostor = QuerySigner(secret=b"not-the-real-key")
        forged = impostor.sign(
            "/user[@id='arnaud']/presence", "mallory", now=1.0
        )
        with pytest.raises(SignatureError):
            verifier.verify(forged, now=2.0)


class TestSection2Examples:
    """The Section 2 scenarios end-to-end."""

    def test_alice_roaming_profile_pains_solved(self):
        from repro.services import RoamingProfileService
        world = build_converged_world()
        service = RoamingProfileService(world.server, world.executor)
        # 1. corporate calendar while traveling in Europe
        fragment, _ = service.fetch_while_roaming(
            "alice", "calendar", "gup.device.alice"
        )
        assert fragment is not None
        # 2. share her address book among carriers/portals
        report, _ = service.synchronize_address_book(
            "alice", "gup.device.alice"
        )
        assert report.messages > 0
        # 3. keep her data when switching carriers
        from repro.services import CarrierPortabilityService
        from repro.workloads import SyntheticAdapter
        porter = CarrierPortabilityService(world.server)
        att = SyntheticAdapter("gup.att.com")
        world.network.add_node("gup.att.com", region="core")
        result = porter.port_user("alice", "gup.spcs.com", att)
        assert result.moved or result.unsupported

    def test_selective_reach_me_full_matrix(self):
        from repro.services import ReachMeService
        world = build_converged_world()
        service = ReachMeService(world.server, world.executor)
        # The paper's three provisioned behaviours:
        # working hours + available -> office phone first
        assert service.decide(
            "alice", hour=11, weekday=1
        ).first_target == "office-phone"
        # commuting -> cell phone
        world.msc.handle_power_on("9085551111", "nj-1")
        assert service.decide(
            "alice", hour=8, weekday=1
        ).first_target == "cell-phone"
        # Friday -> home phone
        assert service.decide(
            "alice", hour=11, weekday=4
        ).first_target == "home-phone"
