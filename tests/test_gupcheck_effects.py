"""Effect inference + the sans-io boundary (gupcheck v3).

Covers the lattice itself, the interprocedural propagation (resolved
calls join callee effects; callable *references* do not), the
intrinsic patterns for unresolved calls, the ``sans-io-purity``
project rule, the ``--effects`` CLI artifact, and the rules
fingerprint that keeps the incremental cache honest when the
analyzer itself changes.
"""

import json
import os
import subprocess
import sys
import textwrap

from repro.analysis.cache import (
    AnalysisCache, CACHE_VERSION, rules_fingerprint,
)
from repro.analysis.effects_report import (
    EFFECTS_FILENAME, SCHEMA, effects_payload,
)
from repro.analysis.framework import ModuleInfo, Violation
from repro.analysis.interproc.effects import (
    EFFECT_PURE,
    EFFECT_TRANSPORT,
    EFFECT_VIRTUAL_TIME,
    EFFECT_WALL_IO,
    EFFECTS,
    join_effects,
)
from repro.analysis.ir.project import Project
from repro.analysis.rules import SansIoPurityRule, default_rules

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))
)
SRC_ROOT = os.path.join(REPO_ROOT, "src")


def dedent(source):
    return textwrap.dedent(source).lstrip("\n")


def computed(sources):
    proj = Project.from_sources(sources)
    proj.taint.compute(dirty_relpaths=list(proj.by_relpath))
    return proj


def effect_of(proj, qualname):
    summary = proj.taint.summary_of(qualname)
    assert summary is not None, qualname
    return summary.effect


# ---------------------------------------------------------------------------
# the lattice
# ---------------------------------------------------------------------------

class TestLattice:
    def test_join_is_max_rank(self):
        assert join_effects(EFFECT_PURE, EFFECT_WALL_IO) \
            == EFFECT_WALL_IO
        assert join_effects(EFFECT_TRANSPORT, EFFECT_VIRTUAL_TIME) \
            == EFFECT_TRANSPORT
        for effect in EFFECTS:
            assert join_effects(effect, effect) == effect
            assert join_effects(EFFECT_PURE, effect) == effect


# ---------------------------------------------------------------------------
# inference over project functions
# ---------------------------------------------------------------------------

class TestEffectInference:
    def test_pure_computation(self):
        proj = computed({
            "repro/m.py": dedent(
                """
                def double(n):
                    return n * 2
                """
            ),
        })
        assert effect_of(proj, "repro.m.double") == EFFECT_PURE

    def test_sim_clock_is_virtual_time(self):
        proj = computed({
            "repro/m.py": dedent(
                """
                def stamp(sim):
                    return sim.now


                def defer(sim, fn):
                    sim.schedule(5.0, fn)
                """
            ),
        })
        assert effect_of(proj, "repro.m.stamp") \
            == EFFECT_VIRTUAL_TIME
        assert effect_of(proj, "repro.m.defer") \
            == EFFECT_VIRTUAL_TIME

    def test_sample_hop_is_transport(self):
        proj = computed({
            "repro/m.py": dedent(
                """
                def hop(network):
                    return network.sample_hop("a", "b", 64)
                """
            ),
        })
        assert effect_of(proj, "repro.m.hop") == EFFECT_TRANSPORT

    def test_wall_io_intrinsics(self):
        proj = computed({
            "repro/m.py": dedent(
                """
                import time


                def read(path):
                    with open(path) as handle:
                        return handle.read()


                def clock():
                    return time.time()
                """
            ),
        })
        assert effect_of(proj, "repro.m.read") == EFFECT_WALL_IO
        assert effect_of(proj, "repro.m.clock") == EFFECT_WALL_IO

    def test_effect_propagates_through_resolved_calls(self):
        proj = computed({
            "repro/m.py": dedent(
                """
                def hop(network):
                    return network.sample_hop("a", "b", 64)


                def caller(network):
                    return hop(network) + 1
                """
            ),
        })
        assert effect_of(proj, "repro.m.caller") == EFFECT_TRANSPORT

    def test_callable_reference_does_not_propagate(self):
        # Passing a function as a value attributes the deferred work
        # to the frame that lexically contains it, not the scheduler.
        proj = computed({
            "repro/m.py": dedent(
                """
                def wall():
                    print("hi")


                def defer(sim):
                    sim.schedule(5.0, wall)
                """
            ),
        })
        assert effect_of(proj, "repro.m.wall") == EFFECT_WALL_IO
        assert effect_of(proj, "repro.m.defer") \
            == EFFECT_VIRTUAL_TIME

    def test_nested_def_body_counts_toward_encloser(self):
        proj = computed({
            "repro/m.py": dedent(
                """
                def outer(network):
                    def cb():
                        network.sample_hop("a", "b", 64)
                    return cb
                """
            ),
        })
        assert effect_of(proj, "repro.m.outer") == EFFECT_TRANSPORT

    def test_recursive_scc_converges(self):
        proj = computed({
            "repro/m.py": dedent(
                """
                def even(n, network):
                    if n == 0:
                        return True
                    return odd(n - 1, network)


                def odd(n, network):
                    if n == 0:
                        network.sample_hop("a", "b", 1)
                        return False
                    return even(n - 1, network)
                """
            ),
        })
        assert effect_of(proj, "repro.m.even") == EFFECT_TRANSPORT
        assert effect_of(proj, "repro.m.odd") == EFFECT_TRANSPORT

    def test_requests_attribute_is_not_the_http_library(self):
        # Regression: `self._requests.append(...)` must match the
        # `requests` wall-io marker segment-exactly, not by substring.
        proj = computed({
            "repro/m.py": dedent(
                """
                class Batch:
                    def __init__(self):
                        self._requests = []

                    def add(self, request):
                        self._requests.append(request)
                """
            ),
        })
        assert effect_of(proj, "repro.m.Batch.add") == EFFECT_PURE


# ---------------------------------------------------------------------------
# sans-io-purity rule
# ---------------------------------------------------------------------------

class TestSansIoPurityRule:
    def run_rule(self, sources, relpath):
        proj = computed(sources)
        rule = SansIoPurityRule()
        module = proj.by_relpath[relpath].info
        return rule.check_module(proj, module)

    def test_transport_in_core_is_flagged(self):
        found = self.run_rule({
            "repro/core/engine.py": dedent(
                """
                def leak(network):
                    return network.sample_hop("a", "b", 64)
                """
            ),
        }, "repro/core/engine.py")
        assert len(found) == 1
        assert "transport" in found[0].message
        assert found[0].severity == "error"

    def test_virtual_time_in_core_is_allowed(self):
        found = self.run_rule({
            "repro/core/engine.py": dedent(
                """
                def stamp(sim):
                    return sim.now
                """
            ),
        }, "repro/core/engine.py")
        assert found == []

    def test_wall_io_in_pxml_is_flagged(self):
        found = self.run_rule({
            "repro/pxml/loader.py": dedent(
                """
                def slurp(path):
                    with open(path) as handle:
                        return handle.read()
                """
            ),
        }, "repro/pxml/loader.py")
        assert len(found) == 1
        assert "wall-io" in found[0].message

    def test_transitive_transport_through_helper_module(self):
        found = self.run_rule({
            "repro/util/wire.py": dedent(
                """
                def hop(network):
                    return network.sample_hop("a", "b", 64)
                """
            ),
            "repro/core/engine.py": dedent(
                """
                from repro.util.wire import hop


                def leak(network):
                    return hop(network)
                """
            ),
        }, "repro/core/engine.py")
        assert len(found) == 1

    def test_bus_outside_log_is_not_in_scope(self):
        rule = SansIoPurityRule()
        assert rule.applies_to("repro/bus/log.py")
        assert not rule.applies_to("repro/bus/bus.py")
        assert not rule.applies_to("repro/bus/push.py")
        assert rule.applies_to("repro/core/query.py")
        assert rule.applies_to("repro/pxml/parse.py")

    def test_real_tree_boundary_is_clean(self):
        # The acceptance bar: the shipped src/ tree carries no
        # transport/wall-io inside core/, pxml/ or bus/log.py.
        sources = {}
        for dirpath, dirnames, filenames in os.walk(
            os.path.join(SRC_ROOT, "repro")
        ):
            dirnames[:] = [
                d for d in dirnames if d != "__pycache__"
            ]
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                relpath = os.path.relpath(
                    full, SRC_ROOT
                ).replace(os.sep, "/")
                with open(full, "r", encoding="utf-8") as handle:
                    sources[relpath] = handle.read()
        proj = computed(sources)
        rule = SansIoPurityRule()
        found = []
        for relpath in sorted(proj.by_relpath):
            if rule.applies_to(relpath):
                found.extend(rule.check_module(
                    proj, proj.by_relpath[relpath].info
                ))
        assert found == []


# ---------------------------------------------------------------------------
# the --effects boundary map
# ---------------------------------------------------------------------------

class TestEffectsPayload:
    def modules(self, sources):
        return [
            ModuleInfo.from_source(source, relpath, relpath)
            for relpath, source in sources.items()
        ]

    def test_payload_shape_and_counts(self):
        payload = effects_payload(self.modules({
            "repro/core/pure.py": "def f(n):\n    return n\n",
            "repro/util/wire.py": (
                "def hop(network):\n"
                "    return network.sample_hop('a', 'b', 1)\n"
            ),
        }))
        assert payload["schema"] == SCHEMA
        assert payload["effects"] == list(EFFECTS)
        assert payload["functions"]["repro.core.pure.f"]["effect"] \
            == EFFECT_PURE
        assert payload["functions"]["repro.util.wire.hop"]["effect"] \
            == EFFECT_TRANSPORT
        assert payload["modules"]["repro/util/wire.py"] \
            == EFFECT_TRANSPORT
        assert payload["counts"][EFFECT_PURE] == 1
        assert payload["counts"][EFFECT_TRANSPORT] == 1
        assert payload["boundary"]["clean"] is True

    def test_boundary_violation_is_reported(self):
        payload = effects_payload(self.modules({
            "repro/core/engine.py": (
                "def leak(network):\n"
                "    return network.sample_hop('a', 'b', 1)\n"
            ),
        }))
        boundary = payload["boundary"]
        assert boundary["clean"] is False
        assert boundary["violations"][0]["qualname"] \
            == "repro.core.engine.leak"
        assert boundary["violations"][0]["effect"] \
            == EFFECT_TRANSPORT


class TestEffectsCli:
    def run_cli(self, args, cwd):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis"] + args,
            capture_output=True, text=True, env=env, cwd=str(cwd),
        )

    def test_effects_artifact_written_and_clean(self, tmp_path):
        ok = tmp_path / "repro" / "core" / "ok.py"
        ok.parent.mkdir(parents=True)
        ok.write_text("def f(n):\n    return n\n", encoding="utf-8")
        out = tmp_path / "effects.json"
        proc = self.run_cli(
            [str(tmp_path), "--effects", str(out)], REPO_ROOT
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["schema"] == SCHEMA
        assert payload["boundary"]["clean"] is True
        assert "boundary clean" in proc.stdout

    def test_effects_exit_1_on_boundary_violation(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "def leak(network):\n"
            "    return network.sample_hop('a', 'b', 1)\n",
            encoding="utf-8",
        )
        out = tmp_path / "effects.json"
        proc = self.run_cli(
            [str(tmp_path), "--effects", str(out)], REPO_ROOT
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["boundary"]["clean"] is False

    def test_effects_default_filename(self, tmp_path):
        ok = tmp_path / "repro" / "ok.py"
        ok.parent.mkdir(parents=True)
        ok.write_text("VALUE = 1\n", encoding="utf-8")
        proc = self.run_cli(
            ["repro", "--effects"], tmp_path
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert (tmp_path / EFFECTS_FILENAME).exists()


# ---------------------------------------------------------------------------
# cache staleness: the rules fingerprint
# ---------------------------------------------------------------------------

class TestRulesFingerprint:
    def test_fingerprint_depends_on_active_rule_set(self):
        rules = default_rules()
        full = rules_fingerprint(rules)
        subset = rules_fingerprint(rules[:3])
        assert full != subset
        assert full == rules_fingerprint(list(rules))

    def test_mismatched_fingerprint_discards_entries(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = AnalysisCache(fingerprint="fp-v1")
        cache.store_module_results(
            "repro/m.py", "sha1",
            [Violation("some-rule", "repro/m.py", 1, 0, "old")],
        )
        cache.save(path)

        same = AnalysisCache.load(path, "fp-v1")
        assert same.module_results("repro/m.py", "sha1") is not None

        # The analyzer changed (new rule, edited rule, subset) but
        # the module did not: stale findings must NOT replay.
        changed = AnalysisCache.load(path, "fp-v2")
        assert changed.module_results("repro/m.py", "sha1") is None

    def test_version_field_still_guards(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({
            "gupcheck_cache": CACHE_VERSION + 1,
            "rules_fingerprint": "fp-v1",
            "modules": {"repro/m.py": {"sha": "sha1",
                                       "violations": []}},
            "project": {},
        }), encoding="utf-8")
        cache = AnalysisCache.load(str(path), "fp-v1")
        assert cache.module_results("repro/m.py", "sha1") is None

    def test_new_rule_invalidates_cache_end_to_end(self, tmp_path):
        # The v2 staleness bug, end to end: warm cache + a changed
        # rule set must re-analyze, not replay.
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        target = tmp_path / "repro" / "m.py"
        target.parent.mkdir(parents=True)
        target.write_text("VALUE = 1\n", encoding="utf-8")
        cache = tmp_path / "cache.json"

        def run(extra):
            return subprocess.run(
                [sys.executable, "-m", "repro.analysis",
                 str(tmp_path), "--no-baseline",
                 "--cache", str(cache), "--stats"] + extra,
                capture_output=True, text=True, env=env,
                cwd=REPO_ROOT,
            )

        warm = run([])
        assert warm.returncode == 0
        replay = run([])
        assert "1 cache hit(s)" in replay.stderr
        # Same file, different rule set: cold again.
        narrowed = run(["--rules", "span-balance"])
        assert "0 cache hit(s)" in narrowed.stderr
