"""Unit tests for the PNode tree data model."""

import pytest

from repro.pxml import PNode, element


def build_sample():
    root = PNode("user", {"id": "alice"})
    book = root.append(PNode("address-book"))
    item = book.append(PNode("item", {"id": "1", "type": "personal"}))
    item.append(PNode("name", text="Bob"))
    item.append(PNode("number", {"type": "cell"}, "908-582-1111"))
    return root


class TestConstruction:
    def test_tag_required(self):
        with pytest.raises(ValueError):
            PNode("")

    def test_invalid_tag_rejected(self):
        with pytest.raises(ValueError):
            PNode("9bad")

    def test_tag_with_dash_ok(self):
        assert PNode("address-book").tag == "address-book"

    def test_mixed_content_rejected_in_constructor(self):
        with pytest.raises(ValueError):
            PNode("a", text="x", children=[PNode("b")])

    def test_append_sets_parent(self):
        root = PNode("a")
        child = root.append(PNode("b"))
        assert child.parent is root
        assert root.children == [child]

    def test_append_to_text_node_rejected(self):
        leaf = PNode("a", text="x")
        with pytest.raises(ValueError):
            leaf.append(PNode("b"))

    def test_set_text_on_parent_rejected(self):
        root = PNode("a", children=[PNode("b")])
        with pytest.raises(ValueError):
            root.set_text("x")

    def test_element_builder(self):
        node = element("user", {"id": "a"}, None, element("presence"))
        assert node.tag == "user"
        assert node.children[0].tag == "presence"

    def test_remove_detaches_parent(self):
        root = PNode("a")
        child = root.append(PNode("b"))
        root.remove(child)
        assert child.parent is None
        assert root.children == []

    def test_replace_children(self):
        root = PNode("a", children=[PNode("b"), PNode("c")])
        new = PNode("d")
        root.replace_children([new])
        assert [c.tag for c in root.children] == ["d"]
        assert new.parent is root


class TestNavigation:
    def test_child_by_tag(self):
        root = build_sample()
        assert root.child("address-book") is not None
        assert root.child("missing") is None

    def test_children_named(self):
        book = build_sample().child("address-book")
        item = book.children[0]
        assert len(item.children_named("number")) == 1
        assert item.children_named("nothing") == []

    def test_walk_preorder(self):
        root = build_sample()
        tags = [n.tag for n in root.walk()]
        assert tags == ["user", "address-book", "item", "name", "number"]

    def test_root_and_chain(self):
        root = build_sample()
        leaf = root.child("address-book").children[0].child("name")
        assert leaf.root() is root
        chain = [n.tag for n in leaf.path_from_root()]
        assert chain == ["user", "address-book", "item", "name"]

    def test_location_path_uses_id_predicates(self):
        root = build_sample()
        item = root.child("address-book").children[0]
        assert item.location_path() == (
            "/user[@id='alice']/address-book/item[@id='1']"
        )

    def test_get_attr_default(self):
        root = build_sample()
        assert root.get("id") == "alice"
        assert root.get("missing", "x") == "x"


class TestMeasurement:
    def test_size(self):
        assert build_sample().size() == 5

    def test_depth(self):
        assert build_sample().depth() == 4
        assert PNode("a").depth() == 1

    def test_byte_size_matches_serialization(self):
        root = build_sample()
        assert root.byte_size() == len(root.serialize().encode("utf-8"))


class TestCopyEquality:
    def test_copy_is_deep_and_detached(self):
        root = build_sample()
        dup = root.child("address-book").copy()
        assert dup.parent is None
        assert dup.deep_equal(root.child("address-book"))
        dup.children[0].attrs["id"] = "99"
        assert root.child("address-book").children[0].attrs["id"] == "1"

    def test_deep_equal_detects_attr_change(self):
        a, b = build_sample(), build_sample()
        assert a.deep_equal(b)
        b.attrs["id"] = "other"
        assert not a.deep_equal(b)

    def test_deep_equal_detects_text_change(self):
        a, b = build_sample(), build_sample()
        b.child("address-book").children[0].child("name").text = "Carl"
        assert not a.deep_equal(b)

    def test_deep_equal_is_order_sensitive(self):
        a = PNode("p", children=[PNode("x"), PNode("y")])
        b = PNode("p", children=[PNode("y"), PNode("x")])
        assert not a.deep_equal(b)

    def test_canonical_key_is_order_insensitive(self):
        a = PNode("p", children=[PNode("x"), PNode("y")])
        b = PNode("p", children=[PNode("y"), PNode("x")])
        assert a.canonical_key() == b.canonical_key()


class TestSerialization:
    def test_self_closing_empty(self):
        assert PNode("presence").serialize() == "<presence/>"

    def test_attrs_sorted(self):
        node = PNode("a", {"z": "1", "b": "2"})
        assert node.serialize() == '<a b="2" z="1"/>'

    def test_text_escaped(self):
        node = PNode("a", text="x < y & z")
        assert node.serialize() == "<a>x &lt; y &amp; z</a>"

    def test_attr_quote_escaped(self):
        node = PNode("a", {"v": 'say "hi"'})
        assert '&quot;' in node.serialize()

    def test_pretty_print_indents(self):
        text = build_sample().serialize(indent=2)
        lines = text.split("\n")
        assert lines[0].startswith("<user")
        assert lines[1].startswith("  <address-book>")
