"""Unit tests for the supporting Figure 5 stores: AAA, billing, ISP."""

import pytest

from repro.errors import StoreError
from repro.stores import AAAServer, BillingSystem, IspSessionStore
from repro.workloads import build_converged_world


class TestAAAServer:
    def setup_method(self):
        self.aaa = AAAServer("aaa")
        self.aaa.enroll("alice", "s3cret")
        self.aaa.grant_service("alice", "voip")

    def test_duplicate_enrollment_rejected(self):
        with pytest.raises(StoreError):
            self.aaa.enroll("alice", "other")

    def test_authentication(self):
        assert self.aaa.authenticate("alice", "s3cret")
        assert not self.aaa.authenticate("alice", "wrong")
        assert not self.aaa.authenticate("ghost", "s3cret")
        assert self.aaa.rejected == 2

    def test_authorization(self):
        assert self.aaa.authorize("alice", "voip")
        assert not self.aaa.authorize("alice", "warp-drive")
        self.aaa.revoke_service("alice", "voip")
        assert not self.aaa.authorize("alice", "voip")

    def test_grant_requires_enrollment(self):
        with pytest.raises(StoreError):
            self.aaa.grant_service("ghost", "voip")

    def test_accounting(self):
        self.aaa.account("alice", "session-start", at=10.0)
        self.aaa.account("alice", "session-stop", at=90.0)
        self.aaa.account("bob", "session-start", at=20.0)
        records = self.aaa.accounting_records("alice")
        assert [e for _u, e, _t in records] == [
            "session-start", "session-stop",
        ]


class TestBillingSystem:
    def test_network_restricted(self):
        with pytest.raises(StoreError):
            BillingSystem("b", network="Web")

    def test_per_minute_invoicing(self):
        billing = BillingSystem("b", network="Wireless")
        billing.set_plan("alice", "per-minute")
        billing.record_call("alice", "908-1", 10, rate_cents=5)
        billing.record_call("alice", "908-2", 2, rate_cents=5)
        assert billing.invoice_total("alice") == 60
        assert len(billing.cdrs_for("alice")) == 2
        assert billing.plan_of("alice") == "per-minute"

    def test_flat_plan_rates_to_zero(self):
        billing = BillingSystem("b", network="PSTN")
        billing.set_plan("alice", "flat")
        billing.record_call("alice", "908-1", 100)
        assert billing.invoice_total("alice") == 0

    def test_users_isolated(self):
        billing = BillingSystem("b", network="PSTN")
        billing.record_call("alice", "x", 1)
        assert billing.cdrs_for("bob") == []
        assert billing.plan_of("bob") is None


class TestIspSessionStore:
    def test_session_lifecycle(self):
        isp = IspSessionStore("isp")
        assert not isp.is_connected("alice")
        isp.connect("alice", "135.104.3.9", "908-582-0099")
        assert isp.is_connected("alice")
        assert isp.session_of("alice") == (
            "135.104.3.9", "908-582-0099"
        )
        isp.disconnect("alice")
        assert not isp.is_connected("alice")
        assert isp.session_of("alice") is None
        isp.disconnect("alice")  # idempotent


class TestFigure5Completion:
    def test_all_paper_rows_now_populated(self):
        world = build_converged_world()
        table = dict(world.directory.placement_table())
        # PSTN: Class 5 switches, billing systems
        assert "Class5Switch" in table["PSTN"]
        assert "BillingSystem" in table["PSTN"]
        # Wireless: HLR, VLR, MSC, billing systems
        for kind in ("HLR", "VLR", "MSC", "BillingSystem"):
            assert kind in table["Wireless"]
        # VoIP: end-user device, SIP registrar/proxy, AAA
        assert "SipRegistrar" in table["VoIP"]
        assert "SipProxy" in table["VoIP"]
        assert "AAAServer" in table["VoIP"]
        # Web: device, ISP, portal, enterprise...
        for kind in ("WebPortal", "EnterpriseServer",
                     "IspSessionStore", "Pda"):
            assert kind in table["Web"]
