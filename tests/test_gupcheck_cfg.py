"""CFG builder + dataflow solver tests (gupcheck v3 foundations).

Hypothesis generates arbitrary nests of ``if``/``while``/``for``/
``try``/``with``/``break``/``continue``/``return``/``raise`` and the
properties pin the builder's structural contract:

* every statement lands in **exactly one** basic block (compound
  headers included; nested ``def``/``class`` are opaque units);
* every edge connects existing blocks and ``succs``/``preds`` mirror;
* ``rpo()`` enumerates every block exactly once;
* the generic solver reaches a fixpoint on every generated CFG, in
  both directions.

Directed tests then pin the specific lowerings the typestate rules
lean on: try/except/finally exception edges, loop back edges, and the
with-header placement.
"""

import ast
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import solve


def dedent(source):
    return textwrap.dedent(source).lstrip("\n")


def fn_cfg(source):
    """Parse *source* (a function definition) and build its CFG."""
    tree = ast.parse(dedent(source))
    return build_cfg(tree.body[0])


def expected_statements(fn):
    """Every statement the builder must place: all ``ast.stmt`` in the
    body, not descending into nested scopes (opaque units)."""
    out = []

    def visit(stmts):
        for stmt in stmts:
            out.append(stmt)
            if isinstance(stmt, (
                ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
            )):
                continue
            visit(getattr(stmt, "body", []) or [])
            visit(getattr(stmt, "orelse", []) or [])
            visit(getattr(stmt, "finalbody", []) or [])
            for handler in getattr(stmt, "handlers", []) or []:
                visit(handler.body)
            for case in getattr(stmt, "cases", []) or []:
                visit(case.body)

    visit(fn.body)
    return out


# ---------------------------------------------------------------------------
# a statement-list generator (source lines, always parseable)
# ---------------------------------------------------------------------------

_SIMPLE = st.sampled_from([
    "x = 1", "y = x + 1", "helper()", "pass", "x += 1",
])


def _indent(lines):
    return ["    " + line for line in lines]


@st.composite
def _stmt_lines(draw, depth, in_loop):
    kinds = ["simple", "simple", "jump"]
    if depth > 0:
        kinds += ["if", "while", "for", "try", "with"]
    lines = []
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.sampled_from(kinds))
        if kind == "simple":
            lines.append(draw(_SIMPLE))
        elif kind == "jump":
            choices = ["return x", "raise ValueError()"]
            if in_loop:
                choices += ["break", "continue"]
            lines.append(draw(st.sampled_from(choices)))
        elif kind == "if":
            lines.append("if x:")
            lines.extend(_indent(
                draw(_stmt_lines(depth - 1, in_loop))
            ))
            if draw(st.booleans()):
                lines.append("else:")
                lines.extend(_indent(
                    draw(_stmt_lines(depth - 1, in_loop))
                ))
        elif kind == "while":
            lines.append("while x:")
            lines.extend(_indent(draw(_stmt_lines(depth - 1, True))))
            if draw(st.booleans()):
                lines.append("else:")
                lines.extend(_indent(
                    draw(_stmt_lines(depth - 1, in_loop))
                ))
        elif kind == "for":
            lines.append("for item in seq:")
            lines.extend(_indent(draw(_stmt_lines(depth - 1, True))))
        elif kind == "try":
            lines.append("try:")
            lines.extend(_indent(
                draw(_stmt_lines(depth - 1, in_loop))
            ))
            shape = draw(st.sampled_from(
                ["except", "except-finally", "finally",
                 "except-else"]
            ))
            if shape != "finally":
                lines.append("except ValueError:")
                lines.extend(_indent(
                    draw(_stmt_lines(depth - 1, in_loop))
                ))
            if shape == "except-else":
                lines.append("else:")
                lines.extend(_indent(
                    draw(_stmt_lines(depth - 1, in_loop))
                ))
            if shape in ("finally", "except-finally"):
                lines.append("finally:")
                lines.extend(_indent(
                    draw(_stmt_lines(depth - 1, in_loop))
                ))
        elif kind == "with":
            lines.append("with ctx() as handle:")
            lines.extend(_indent(
                draw(_stmt_lines(depth - 1, in_loop))
            ))
    return lines


@st.composite
def functions(draw):
    body = draw(_stmt_lines(depth=draw(st.integers(0, 3)),
                            in_loop=False))
    source = "def fn(x, seq, ctx, helper):\n" + "\n".join(
        _indent(body)
    )
    return ast.parse(source).body[0]


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------

class TestCfgProperties:
    @settings(max_examples=120, deadline=None)
    @given(functions())
    def test_every_statement_in_exactly_one_block(self, fn):
        cfg = build_cfg(fn)
        placed = [stmt for _, stmt in cfg.statements()]
        expected = expected_statements(fn)
        assert len(placed) == len(expected)
        assert {id(s) for s in placed} == {id(s) for s in expected}
        # ...and block_of agrees with the placement.
        owners = {}
        for index, stmt in cfg.statements():
            assert id(stmt) not in owners
            owners[id(stmt)] = index
            assert cfg.block_of(stmt) == index

    @settings(max_examples=120, deadline=None)
    @given(functions())
    def test_edges_connect_existing_blocks_and_mirror(self, fn):
        cfg = build_cfg(fn)
        count = len(cfg.blocks)
        for block in cfg.blocks:
            assert len(set(block.succs)) == len(block.succs)
            assert len(set(block.preds)) == len(block.preds)
            for succ in block.succs:
                assert 0 <= succ < count
                assert block.index in cfg.blocks[succ].preds
            for pred in block.preds:
                assert 0 <= pred < count
                assert block.index in cfg.blocks[pred].succs

    @settings(max_examples=120, deadline=None)
    @given(functions())
    def test_rpo_covers_every_block_once(self, fn):
        cfg = build_cfg(fn)
        order = cfg.rpo()
        assert sorted(order) == list(range(len(cfg.blocks)))
        assert order[0] == cfg.entry

    @settings(max_examples=60, deadline=None)
    @given(functions(), st.sampled_from(["forward", "backward"]))
    def test_solver_reaches_fixpoint(self, fn, direction):
        cfg = build_cfg(fn)
        # Reaching-blocks: the set of block indices on some path —
        # monotone over a finite lattice, so it must converge.
        solution = solve(
            cfg,
            boundary=frozenset(),
            transfer=lambda index, state: state | {index},
            join=lambda left, right: left | right,
            direction=direction,
        )
        start = (
            cfg.entry if direction == "forward" else cfg.exit
        )
        outputs = (
            solution.after if direction == "forward"
            else solution.before
        )
        for block in cfg.blocks:
            state = outputs[block.index]
            if state is not None:
                assert block.index in state
        assert start in outputs[start]


# ---------------------------------------------------------------------------
# directed lowerings
# ---------------------------------------------------------------------------

class TestLowerings:
    def test_if_else_diamond(self):
        cfg = fn_cfg(
            """
            def fn(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        stmts = {type(s).__name__: b for b, s in cfg.statements()}
        test_block = stmts["If"]
        then_block = next(
            b for b, s in cfg.statements()
            if isinstance(s, ast.Assign) and s.value.value == 1
        )
        else_block = next(
            b for b, s in cfg.statements()
            if isinstance(s, ast.Assign) and s.value.value == 2
        )
        succs = cfg.blocks[test_block].succs
        assert then_block in succs and else_block in succs
        # Both arms rejoin before the return.
        return_block = stmts["Return"]
        assert return_block in cfg.blocks[then_block].succs
        assert return_block in cfg.blocks[else_block].succs

    def test_loop_back_edge_and_break(self):
        cfg = fn_cfg(
            """
            def fn(seq):
                for item in seq:
                    if item:
                        break
                    item = 0
                done = 1
            """
        )
        header = next(
            b for b, s in cfg.statements() if isinstance(s, ast.For)
        )
        after = next(
            b for b, s in cfg.statements()
            if isinstance(s, ast.Assign)
            and s.targets[0].id == "done"
        )
        break_block = next(
            b for b, s in cfg.statements()
            if isinstance(s, ast.Break)
        )
        # break jumps straight past the loop...
        assert after in cfg.blocks[break_block].succs
        # ...the body's tail loops back to the header...
        tail = next(
            b for b, s in cfg.statements()
            if isinstance(s, ast.Assign)
            and s.targets[0].id == "item"
        )
        assert header in cfg.blocks[tail].succs
        # ...and the header exits to after on exhaustion.
        assert after in cfg.blocks[header].succs

    def test_try_except_edges_from_whole_protected_region(self):
        cfg = fn_cfg(
            """
            def fn(x):
                try:
                    a = 1
                    if x:
                        b = 2
                    c = 3
                except ValueError:
                    h = 4
                done = 5
            """
        )
        handler_entry = next(
            b for b, s in cfg.statements()
            if isinstance(s, ast.Assign)
            and s.targets[0].id == "h"
        )
        # Every block of the protected region may raise into the
        # handler — including the branch arms.
        for name in ("a", "b", "c"):
            block = next(
                b for b, s in cfg.statements()
                if isinstance(s, ast.Assign)
                and s.targets[0].id == name
            )
            assert handler_entry in cfg.blocks[block].succs
        # Normal completion and the handler both reach `done`.
        after = next(
            b for b, s in cfg.statements()
            if isinstance(s, ast.Assign)
            and s.targets[0].id == "done"
        )
        assert after in cfg.blocks[handler_entry].succs

    def test_finally_runs_on_both_paths(self):
        cfg = fn_cfg(
            """
            def fn(x):
                try:
                    a = 1
                except ValueError:
                    h = 2
                finally:
                    f = 3
                done = 4
            """
        )
        blocks = {
            s.targets[0].id: b
            for b, s in cfg.statements()
            if isinstance(s, ast.Assign)
        }
        # Both the body exit and the handler exit feed the finalizer,
        # which feeds `done` AND the exceptional continuation (exit).
        assert blocks["f"] in cfg.blocks[blocks["a"]].succs
        assert blocks["f"] in cfg.blocks[blocks["h"]].succs
        assert blocks["done"] in cfg.blocks[blocks["f"]].succs
        assert cfg.exit in cfg.blocks[blocks["f"]].succs

    def test_bare_finally_reraise_reaches_exit(self):
        cfg = fn_cfg(
            """
            def fn(x):
                try:
                    a = 1
                finally:
                    f = 2
                done = 3
            """
        )
        blocks = {
            s.targets[0].id: b
            for b, s in cfg.statements()
            if isinstance(s, ast.Assign)
        }
        assert blocks["done"] in cfg.blocks[blocks["f"]].succs
        assert cfg.exit in cfg.blocks[blocks["f"]].succs

    def test_with_header_stays_in_current_block(self):
        cfg = fn_cfg(
            """
            def fn(ctx):
                before = 1
                with ctx() as handle:
                    inside = 2
                after = 3
            """
        )
        blocks = {
            s.targets[0].id: b
            for b, s in cfg.statements()
            if isinstance(s, ast.Assign)
        }
        with_block = next(
            b for b, s in cfg.statements()
            if isinstance(s, ast.With)
        )
        # Header shares the preceding straight-line block; the body
        # opens a new one and falls through.
        assert with_block == blocks["before"]
        assert blocks["inside"] in cfg.blocks[with_block].succs
        assert blocks["after"] in (
            cfg.blocks[blocks["inside"]].succs
            + [blocks["inside"]]
        )

    def test_raise_targets_innermost_handler(self):
        cfg = fn_cfg(
            """
            def fn(x):
                try:
                    raise ValueError()
                except ValueError:
                    h = 1
                done = 2
            """
        )
        raise_block = next(
            b for b, s in cfg.statements()
            if isinstance(s, ast.Raise)
        )
        handler_entry = next(
            b for b, s in cfg.statements()
            if isinstance(s, ast.Assign)
            and s.targets[0].id == "h"
        )
        assert handler_entry in cfg.blocks[raise_block].succs
        assert cfg.exit not in cfg.blocks[raise_block].succs

    def test_unreachable_code_still_placed_and_analyzed(self):
        cfg = fn_cfg(
            """
            def fn(x):
                return x
                dead = 1
            """
        )
        dead_block = next(
            b for b, s in cfg.statements()
            if isinstance(s, ast.Assign)
        )
        assert dead_block not in (cfg.entry, cfg.exit)
        assert dead_block in cfg.rpo()


# ---------------------------------------------------------------------------
# solver semantics
# ---------------------------------------------------------------------------

class TestSolver:
    def test_forward_constant_reach(self):
        # "is `x = 1` seen on every path to each block?"
        cfg = fn_cfg(
            """
            def fn(cond):
                if cond:
                    x = 1
                y = 2
            """
        )

        def transfer(index, state):
            out = state
            for stmt in cfg.blocks[index].stmts:
                if (
                    isinstance(stmt, ast.Assign)
                    and stmt.targets[0].id == "x"
                ):
                    out = True
            return out

        solution = solve(
            cfg, boundary=False, transfer=transfer,
            join=lambda left, right: left and right,
        )
        y_block = next(
            b for b, s in cfg.statements()
            if isinstance(s, ast.Assign)
            and s.targets[0].id == "y"
        )
        # Join over both arms: `x = 1` is NOT on every path.
        assert solution.before[y_block] is False

    def test_backward_liveness_shape(self):
        cfg = fn_cfg(
            """
            def fn(x):
                y = x + 1
                return y
            """
        )

        def transfer(index, state):
            live = set(state)
            for stmt in reversed(cfg.blocks[index].stmts):
                if isinstance(stmt, ast.Assign):
                    live.discard(stmt.targets[0].id)
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Name) and isinstance(
                        node.ctx, ast.Load
                    ):
                        live.add(node.id)
            return frozenset(live)

        solution = solve(
            cfg, boundary=frozenset(), transfer=transfer,
            join=lambda left, right: left | right,
            direction="backward",
        )
        assert "x" in solution.before[cfg.entry]
        assert "y" not in solution.before[cfg.entry]

    def test_loop_fixpoint_terminates_with_growing_sets(self):
        cfg = fn_cfg(
            """
            def fn(seq):
                total = 0
                for item in seq:
                    total = total + item
                return total
            """
        )
        solution = solve(
            cfg,
            boundary=frozenset(),
            transfer=lambda index, state: state | {index},
            join=lambda left, right: left | right,
        )
        exit_state = solution.before[cfg.exit]
        # Every reachable block contributed.
        assert exit_state is not None and len(exit_state) >= 4

    def test_dead_blocks_stay_unreached(self):
        cfg = fn_cfg(
            """
            def fn(x):
                return x
                dead = 1
            """
        )
        solution = solve(
            cfg,
            boundary=frozenset(),
            transfer=lambda index, state: state | {index},
            join=lambda left, right: left | right,
        )
        dead_block = next(
            b for b, s in cfg.statements()
            if isinstance(s, ast.Assign)
        )
        assert solution.before[dead_block] is None
