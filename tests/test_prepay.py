"""Unit tests for the pre-paid billing service (Figure 1's Pre-Pay)."""

import pytest

from repro.errors import StoreError, UnknownSubscriberError
from repro.pxml import GUP_SCHEMA, evaluate_values
from repro.access import RequestContext
from repro.services import PrePayService, PrepayAdapter, RatePlan
from repro.stores import HLR, MSC, VLR


def wireless():
    hlr = HLR("hlr.spcs", carrier="sprintpcs")
    vlr = VLR("vlr.nj", ["nj-1"])
    hlr.attach_vlr(vlr)
    msc = MSC("msc.nj", hlr, vlr)
    hlr.provision_subscriber("9085551234", "imsi-1", "alice")
    return hlr, vlr, msc


class TestRatePlan:
    def test_default_rates(self):
        plan = RatePlan()
        assert plan.charge("wireless", 3) == 30
        assert plan.charge("voip", 3) == 6

    def test_unknown_network(self):
        with pytest.raises(StoreError):
            RatePlan().rate_for("carrier-pigeon")

    def test_negative_duration(self):
        with pytest.raises(ValueError):
            RatePlan().charge("pstn", -1)


class TestAccounts:
    def setup_method(self):
        self.hlr, self.vlr, self.msc = wireless()
        self.service = PrePayService(self.hlr)

    def test_open_marks_subscriber_prepaid(self):
        self.service.open_account("alice", 500)
        assert self.hlr.subscriber("9085551234").prepaid
        assert self.service.balance("alice") == 500

    def test_duplicate_account_rejected(self):
        self.service.open_account("alice", 500)
        with pytest.raises(StoreError):
            self.service.open_account("alice", 0)

    def test_account_requires_subscriber(self):
        with pytest.raises(UnknownSubscriberError):
            self.service.open_account("stranger", 100)

    def test_unknown_balance(self):
        with pytest.raises(StoreError):
            self.service.balance("nobody")

    def test_top_up(self):
        self.service.open_account("alice", 100)
        assert self.service.top_up("alice", 400) == 500
        with pytest.raises(ValueError):
            self.service.top_up("alice", 0)


class TestRatingAndLedger:
    def setup_method(self):
        self.hlr, self.vlr, self.msc = wireless()
        self.events = []
        self.service = PrePayService(
            self.hlr, low_balance_cents=100,
            on_low_balance=lambda user, bal: self.events.append(
                (user, bal)
            ),
        )
        self.service.open_account("alice", 500)

    def test_call_debits_balance(self):
        remaining = self.service.record_call("alice", "wireless", 10)
        assert remaining == 400
        assert self.service.ledger("alice") == [("wireless", 10, 100)]

    def test_balance_never_goes_negative(self):
        self.service.record_call("alice", "wireless", 1000)
        assert self.service.balance("alice") == 0

    def test_low_balance_notification(self):
        self.service.record_call("alice", "wireless", 45)  # -> 50
        assert self.events == [("alice", 50)]

    def test_affordable_minutes(self):
        assert self.service.affordable_minutes("alice", "wireless") == 50
        assert self.service.affordable_minutes("alice", "voip") == 250


class TestCallScreening:
    def setup_method(self):
        self.hlr, self.vlr, self.msc = wireless()
        self.service = PrePayService(self.hlr)
        self.msc.handle_power_on("9085551234", "nj-1")

    def test_funded_prepaid_call_delivered(self):
        self.service.open_account("alice", 500)
        outcome = self.service.screened_delivery(
            self.msc, "2125550000", "9085551234"
        )
        assert outcome == "vlr:vlr.nj"

    def test_empty_prepaid_blocked(self):
        self.service.open_account("alice", 0)
        outcome = self.service.screened_delivery(
            self.msc, "2125550000", "9085551234"
        )
        assert outcome == "prepaid-blocked"
        assert self.service.calls_blocked == 1

    def test_postpaid_unaffected(self):
        # No prepaid account: delivery proceeds normally.
        outcome = self.service.screened_delivery(
            self.msc, "2125550000", "9085551234"
        )
        assert outcome == "vlr:vlr.nj"


class TestPrepayAdapter:
    def setup_method(self):
        self.hlr, self.vlr, self.msc = wireless()
        self.service = PrePayService(self.hlr)
        self.service.open_account("alice", 1250)
        self.adapter = PrepayAdapter("gup.billing.spcs.com",
                                     self.service)

    def test_export_validates(self):
        view = self.adapter.export_user("alice")
        assert GUP_SCHEMA.validate(view) == []

    def test_balance_exposed_as_wallet(self):
        view = self.adapter.export_user("alice")
        balances = evaluate_values(
            view, "/user/wallet/account/@balance"
        )
        assert balances == ["1250"]

    def test_balance_live(self):
        self.service.record_call("alice", "wireless", 10)
        view = self.adapter.export_user("alice")
        assert evaluate_values(
            view, "/user/wallet/account/@balance"
        ) == ["1150"]

    def test_coverage_paths(self):
        assert self.adapter.coverage_paths("alice") == [
            "/user[@id='alice']/wallet"
        ]
        assert self.adapter.users() == ["alice"]

    def test_no_account_exports_none(self):
        assert self.adapter.export_user("bob") is None

    def test_through_gupster(self):
        from repro.core import GupsterServer
        server = GupsterServer("gupster", enforce_policies=False)
        server.join(self.adapter)
        referral = server.resolve(
            "/user[@id='alice']/wallet",
            RequestContext("alice", relationship="self"),
        )
        assert referral.parts[0].store_ids == ["gup.billing.spcs.com"]
