"""Tests for the fault-injection layer (simnet.faults + network
impairments)."""

import pytest

from repro.errors import NodeUnreachableError, PacketLossError
from repro.simnet import FaultSchedule, Network, Simulator


def topology(seed=11):
    net = Network(seed=seed)
    net.add_node("gupster", region="core")
    net.add_node("store", region="internet")
    net.add_node("other", region="internet")
    return net


class TestNetworkImpairments:
    def test_loss_rate_validation(self):
        net = topology()
        with pytest.raises(ValueError):
            net.set_loss("gupster", "store", 1.5)

    def test_certain_loss_drops_and_charges_timeout(self):
        net = topology()
        net.set_loss("gupster", "store", 1.0)
        trace = net.trace()
        with pytest.raises(PacketLossError):
            trace.hop("gupster", "store", 100)
        assert trace.elapsed_ms == net.detect_timeout_ms
        assert trace.timeouts_charged == 1
        assert net.counters.loss_drops == 1
        assert net.counters.timeouts == 1

    def test_loss_is_symmetric_and_clearable(self):
        net = topology()
        net.set_loss("gupster", "store", 1.0)
        with pytest.raises(PacketLossError):
            net.trace().hop("store", "gupster", 10)
        net.clear_loss("gupster", "store")
        trace = net.trace()
        trace.hop("gupster", "store", 10)
        assert trace.hops == 1

    def test_forced_drops_consume_exactly_count(self):
        net = topology()
        net.force_drops("gupster", "store", count=2)
        for _ in range(2):
            with pytest.raises(PacketLossError):
                net.trace().hop("gupster", "store", 10)
        trace = net.trace()
        trace.hop("gupster", "store", 10)  # third one goes through
        assert trace.hops == 1

    def test_latency_factor_multiplies_hops(self):
        reference = topology(seed=3)
        spiked = topology(seed=3)
        spiked.set_latency_factor("store", 3.0)
        base = reference.sample_hop("gupster", "store", 1000)
        slow = spiked.sample_hop("gupster", "store", 1000)
        processing = spiked.node("store").processing_ms
        assert slow - processing == pytest.approx(
            (base - processing) * 3.0
        )
        spiked.clear_latency_factor("store")
        # Same RNG position ⇒ next draws comparable again.
        assert spiked.sample_hop("gupster", "store", 1000) == (
            reference.sample_hop("gupster", "store", 1000)
        )

    def test_loss_on_one_link_does_not_perturb_jitter(self):
        """The loss RNG is separate: injecting loss on link A must not
        change the latencies sampled on link B (the no-fault cost model
        is preserved wherever faults are not injected)."""
        clean = topology(seed=9)
        stream_clean = [
            clean.sample_hop("gupster", "store", 100) for _ in range(5)
        ]
        # Loss armed on an unrelated link: identical stream.
        armed = topology(seed=9)
        armed.set_loss("gupster", "other", 0.5)
        stream_armed = [
            armed.sample_hop("gupster", "store", 100) for _ in range(5)
        ]
        assert stream_armed == stream_clean
        # Loss exercised on the unrelated link: the surviving hops on
        # it draw jitter (as any hop does), but the loss *decisions*
        # come from the dedicated RNG — so a loss-heavy link still
        # leaves an untouched link's future identical to a network
        # that hopped the same messages without loss configured.
        exercised = topology(seed=9)
        exercised.set_loss("gupster", "other", 0.0)  # no-op arm
        assert [
            exercised.sample_hop("gupster", "store", 100)
            for _ in range(5)
        ] == stream_clean

    def test_counters_reset(self):
        net = topology()
        net.fail("store")
        with pytest.raises(NodeUnreachableError):
            net.trace().hop("gupster", "store", 10)
        assert net.counters.timeouts == 1
        net.reset_counters()
        assert net.counters.total() == 0


class TestFaultSchedule:
    def test_flap_drives_node_state_through_virtual_time(self):
        net = topology()
        sim = Simulator()
        sched = FaultSchedule(sim, net)
        sched.flap("store", down_at=100.0, up_at=200.0)
        observed = []

        def probe():
            observed.append((sim.now, net.node("store").failed))

        for when in (50.0, 150.0, 250.0):
            sim.schedule(when, probe)
        sim.run()
        assert observed == [
            (50.0, False), (150.0, True), (250.0, False),
        ]
        assert sched.applied() == 2
        assert [d for _t, d in sched.events] == [
            "down store", "up store",
        ]

    def test_flap_must_recover_after_failing(self):
        sched = FaultSchedule(Simulator(), topology())
        with pytest.raises(ValueError):
            sched.flap("store", down_at=10.0, up_at=10.0)

    def test_flap_every_is_bounded_and_validated(self):
        net = topology()
        sim = Simulator()
        sched = FaultSchedule(sim, net)
        cycles = sched.flap_every(
            "store", period=100.0, downtime=20.0, until=350.0
        )
        assert cycles == 3
        sim.run()
        assert sched.applied() == 6  # three down/up pairs
        assert not net.node("store").failed
        with pytest.raises(ValueError):
            sched.flap_every("store", period=10.0, downtime=10.0)

    def test_random_flaps_deterministic_given_seed(self):
        def run():
            net = topology()
            sim = Simulator()
            sched = FaultSchedule(sim, net, seed=42)
            sched.random_flaps(
                ["store", "other"], mean_up_ms=500.0, down_ms=100.0,
                until=5_000.0,
            )
            sim.run()
            return sched.events

        first, second = run(), run()
        assert first == second
        assert len(first) > 0

    def test_link_loss_window(self):
        net = topology()
        sim = Simulator()
        sched = FaultSchedule(sim, net)
        sched.link_loss(
            "gupster", "store", rate=1.0, start=100.0, end=200.0
        )
        results = []

        def probe():
            try:
                net.trace().hop("gupster", "store", 10)
                results.append("ok")
            except PacketLossError:
                results.append("lost")

        for when in (50.0, 150.0, 250.0):
            sim.schedule(when, probe)
        sim.run()
        assert results == ["ok", "lost", "ok"]

    def test_drop_next_fires_at_time(self):
        net = topology()
        sim = Simulator()
        sched = FaultSchedule(sim, net)
        sched.drop_next("gupster", "store", count=1, at=100.0)
        sim.run()
        with pytest.raises(PacketLossError):
            net.trace().hop("gupster", "store", 10)
        trace = net.trace()
        trace.hop("gupster", "store", 10)
        assert trace.hops == 1

    def test_latency_spike_window(self):
        net = topology(seed=5)
        reference = topology(seed=5)
        sim = Simulator()
        sched = FaultSchedule(sim, net)
        sched.latency_spike("store", 4.0, start=0.0, end=100.0)
        sim.run(until=50.0)
        spiked = net.sample_hop("gupster", "store", 100)
        normal = reference.sample_hop("gupster", "store", 100)
        assert spiked > normal
        sim.run()
        assert net.sample_hop("gupster", "store", 100) == (
            reference.sample_hop("gupster", "store", 100)
        )
        with pytest.raises(ValueError):
            sched.latency_spike("store", 0.5)

    def test_schedule_in_the_past_fires_immediately(self):
        net = topology()
        sim = Simulator()
        sim.now = 500.0
        sched = FaultSchedule(sim, net)
        sched.down("store", at=100.0)  # already in the past
        sim.run()
        assert net.node("store").failed
