"""Span recorder mechanics: ids, nesting, lifecycle, summaries."""

import pytest

from repro.obs import SpanRecorder


def test_ids_are_dense_and_deterministic():
    rec = SpanRecorder()
    a = rec.start("a", 0.0)
    b = rec.start("b", 1.0, parent_id=a.span_id)
    assert (a.span_id, b.span_id) == (1, 2)
    assert rec.new_trace_id() == 1
    assert rec.new_trace_id() == 2
    assert rec.next_tid() == 1


def test_finish_sets_duration_and_guards():
    rec = SpanRecorder()
    span = rec.start("op", 10.0)
    assert not span.finished
    assert span.duration_ms == 0.0
    rec.finish(span, 35.0)
    assert span.finished
    assert span.duration_ms == 25.0
    with pytest.raises(ValueError):
        rec.finish(span, 40.0)  # double finish
    other = rec.start("op2", 10.0)
    with pytest.raises(ValueError):
        rec.finish(other, 5.0)  # ends before it starts


def test_leaf_records_closed_interval_in_one_call():
    rec = SpanRecorder()
    leaf = rec.leaf("hop", 1.0, 3.5, trace_id=7, tid=2)
    assert leaf.finished
    assert leaf.duration_ms == 2.5
    assert rec.open_spans() == []
    assert rec.spans_for(7) == [leaf]


def test_tree_navigation():
    rec = SpanRecorder()
    root = rec.start("trace", 0.0, trace_id=1)
    child = rec.start("q", 0.0, parent_id=root.span_id, trace_id=1)
    grand = rec.leaf(
        "hop", 0.0, 2.0, parent_id=child.span_id, trace_id=1
    )
    # Same parent id in a *different* trace must not match.
    rec.leaf("hop", 0.0, 2.0, parent_id=child.span_id, trace_id=2)
    assert rec.roots(1) == [root]
    assert rec.children_of(root) == [child]
    assert rec.children_of(child) == [grand]
    assert rec.trace_ids() == [1, 2]


def test_attrs_events_and_set_chaining():
    rec = SpanRecorder()
    span = rec.start("q", 0.0, attrs={"store": "s1"})
    assert span.set("sweep", 2) is span
    assert span.attrs == {"store": "s1", "sweep": 2}
    event = span.event("retry", 5.0, {"count": 1})
    assert span.events == [event]
    assert event.at_ms == 5.0


def test_clear_keeps_id_counters_running():
    rec = SpanRecorder()
    rec.leaf("a", 0.0, 1.0)
    rec.new_trace_id()
    rec.clear()
    assert len(rec) == 0
    assert rec.start("b", 0.0).span_id == 2
    assert rec.new_trace_id() == 2


def test_summary_sorts_by_total_duration_desc():
    rec = SpanRecorder()
    rec.leaf("hop", 0.0, 1.0)
    rec.leaf("hop", 0.0, 2.0)
    rec.leaf("compute", 0.0, 10.0)
    assert rec.summary() == [
        ("compute", 1, 10.0),
        ("hop", 2, 3.0),
    ]
