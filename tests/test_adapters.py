"""Unit tests for the GUP adapters: native <-> GUP XML translation."""

import pytest

from repro.errors import AdapterError, StoreError
from repro.pxml import GUP_SCHEMA, evaluate_values, parse
from repro.adapters import (
    DeviceAdapter,
    EnterpriseAdapter,
    HlrAdapter,
    LdapAdapter,
    PortalAdapter,
    PresenceAdapter,
    PstnAdapter,
    SipAdapter,
)
from repro.stores import (
    HLR,
    VLR,
    MSC,
    Class5Switch,
    ContactRecord,
    AppointmentRecord,
    DirectoryServer,
    EnterpriseServer,
    LdapEntry,
    MobilePhone,
    PhoneBookEntry,
    PresenceServer,
    SipProxy,
    SipRegistrar,
    WebPortal,
)


class TestPortalAdapter:
    def setup_method(self):
        self.portal = WebPortal("yahoo")
        self.portal.create_account("arnaud")
        self.portal.put_contact(
            "arnaud",
            ContactRecord("1", "Bob", phones={"cell": "908-582-1111"},
                          emails={"personal": "bob@x.com"}),
        )
        self.portal.put_appointment(
            "arnaud",
            AppointmentRecord("a1", "2003-01-06T09:00",
                              "2003-01-06T10:00", "CIDR", where="Asilomar"),
        )
        self.portal.set_score("arnaud", "chess", 1450)
        self.adapter = PortalAdapter("gup.yahoo.com", self.portal)

    def test_export_validates_against_gup_schema(self):
        view = self.adapter.export_user("arnaud")
        assert GUP_SCHEMA.validate(view) == []

    def test_export_unknown_user_is_none(self):
        assert self.adapter.export_user("stranger") is None

    def test_coverage_paths_reflect_present_components(self):
        paths = self.adapter.coverage_paths("arnaud")
        assert "/user[@id='arnaud']/address-book" in paths
        assert "/user[@id='arnaud']/calendar" in paths
        assert "/user[@id='arnaud']/game-scores" in paths
        assert "/user[@id='arnaud']/bookmarks" not in paths  # empty

    def test_get_projects_requested_subtree(self):
        fragment = self.adapter.get("/user[@id='arnaud']/address-book")
        assert fragment.child("address-book") is not None
        assert fragment.child("calendar") is None

    def test_get_deep_path(self):
        values = evaluate_values(
            self.adapter.get(
                "/user[@id='arnaud']/address-book/item[@id='1']"
            ),
            "/user/address-book/item/number",
        )
        assert values == ["908-582-1111"]

    def test_get_requires_user_predicate(self):
        with pytest.raises(AdapterError):
            self.adapter.get("/user/address-book")

    def test_put_component_round_trip(self):
        fragment = parse(
            "<address-book>"
            "<item id='9'><name>Zoe</name>"
            "<number type='cell'>908-582-2222</number></item>"
            "</address-book>"
        )
        self.adapter.put("/user[@id='arnaud']/address-book", fragment)
        contacts = self.portal.contacts("arnaud")
        assert [c.display_name for c in contacts] == ["Zoe"]

    def test_put_replaces_stale_entries(self):
        fragment = parse("<address-book/>")
        self.adapter.put("/user[@id='arnaud']/address-book", fragment)
        assert self.portal.contacts("arnaud") == []

    def test_put_accepts_user_rooted_fragment(self):
        fragment = parse(
            "<user id='arnaud'><game-scores>"
            "<score game='go'>9</score></game-scores></user>"
        )
        self.adapter.put("/user[@id='arnaud']/game-scores", fragment)
        assert self.portal.scores("arnaud")["go"] == 9

    def test_put_rejects_deep_paths(self):
        with pytest.raises(AdapterError):
            self.adapter.put(
                "/user[@id='arnaud']/address-book/item[@id='1']",
                parse("<item id='1'/>"),
            )

    def test_put_rejects_unknown_component(self):
        with pytest.raises(AdapterError):
            self.adapter.put(
                "/user[@id='arnaud']/wallet", parse("<wallet/>")
            )

    def test_put_rejects_mismatched_fragment(self):
        with pytest.raises(AdapterError):
            self.adapter.put(
                "/user[@id='arnaud']/calendar", parse("<presence/>")
            )

    def test_calendar_round_trip(self):
        view = self.adapter.export_user("arnaud")
        appt = view.child("calendar").children[0]
        assert appt.child("where").text == "Asilomar"
        assert appt.attrs["visibility"] == "private"

    def test_users(self):
        assert self.adapter.users() == ["arnaud"]


class TestEnterpriseAdapter:
    def test_corporate_only_view(self):
        server = EnterpriseServer("intranet.lucent", company="Lucent")
        server.create_account("alice")
        server.put_contact(
            "alice", ContactRecord("c1", "Boss", kind="corporate")
        )
        adapter = EnterpriseAdapter("gup.lucent.com", server)
        view = adapter.export_user("alice")
        items = view.child("address-book").children
        assert [i.attrs["type"] for i in items] == ["corporate"]
        assert adapter.region == "enterprise"
        assert "game-scores" not in [c.tag for c in view.children]


class TestHlrAdapter:
    def setup_method(self):
        self.hlr = HLR("hlr.sprintpcs", carrier="sprintpcs")
        vlr = VLR("vlr.east", ["nj-1"])
        self.hlr.attach_vlr(vlr)
        self.msc = MSC("msc.east", self.hlr, vlr)
        self.hlr.provision_subscriber("9085551234", "imsi-1", "alice")
        self.adapter = HlrAdapter("gup.spcs.com", self.hlr)

    def test_export_validates(self):
        view = self.adapter.export_user("alice")
        assert GUP_SCHEMA.validate(view) == []

    def test_location_reflects_mobility(self):
        view = self.adapter.export_user("alice")
        assert evaluate_values(view, "/user/location/on-air") == ["false"]
        self.msc.handle_power_on("9085551234", "nj-1")
        view = self.adapter.export_user("alice")
        assert evaluate_values(view, "/user/location/on-air") == ["true"]
        assert evaluate_values(view, "/user/location/cell") == ["nj-1"]

    def test_write_call_forwarding_through_gup(self):
        fragment = parse(
            "<services>"
            "<service name='call-forwarding' enabled='true'>"
            "<parameter name='target'>9085559999</parameter>"
            "</service></services>"
        )
        self.adapter.put("/user[@id='alice']/services", fragment)
        assert (
            self.hlr.subscriber("9085551234").call_forwarding
            == "9085559999"
        )

    def test_disable_call_forwarding(self):
        self.hlr.set_call_forwarding("9085551234", "123")
        fragment = parse(
            "<services>"
            "<service name='call-forwarding' enabled='false'/>"
            "</services>"
        )
        self.adapter.put("/user[@id='alice']/services", fragment)
        assert self.hlr.subscriber("9085551234").call_forwarding is None

    def test_write_rejected_on_location(self):
        with pytest.raises(AdapterError):
            self.adapter.put(
                "/user[@id='alice']/location", parse("<location/>")
            )

    def test_unknown_user(self):
        assert self.adapter.export_user("bob") is None
        assert self.adapter.users() == ["alice"]


class TestPstnAdapter:
    def setup_method(self):
        self.switch = Class5Switch("5ess")
        self.switch.install_line("9085820001", "alice")
        self.adapter = PstnAdapter("gup.pstn.com", self.switch)
        self.adapter.attach_line("alice", "9085820001")

    def test_attach_requires_existing_line(self):
        with pytest.raises(AdapterError):
            self.adapter.attach_line("bob", "999")

    def test_export_validates(self):
        view = self.adapter.export_user("alice")
        assert GUP_SCHEMA.validate(view) == []

    def test_call_status_export(self):
        self.switch.set_busy("9085820001", True)
        view = self.adapter.export_user("alice")
        assert evaluate_values(view, "/user/call-status/state") == ["busy"]

    def test_gup_write_bypasses_keypad_restriction(self):
        # caller-id cannot be self-provisioned at the switch, but the
        # adapter carries operator authority (the emerging web
        # self-provisioning the paper describes).
        fragment = parse(
            "<services><service name='caller-id' enabled='false'/>"
            "</services>"
        )
        self.adapter.put("/user[@id='alice']/services", fragment)
        assert not self.switch.line("9085820001").caller_id_enabled


class TestSipAdapter:
    def test_online_offline(self):
        registrar = SipRegistrar("registrar")
        proxy = SipProxy("proxy", registrar)
        adapter = SipAdapter("gup.voip.com", proxy)
        adapter.attach_aor("alice", "sip:alice@example.com")
        view = adapter.export_user("alice")
        assert evaluate_values(view, "/user/call-status/state") == [
            "offline"
        ]
        registrar.register(
            "sip:alice@example.com", "10.0.0.5", "alice", now=0
        )
        adapter.now = 10.0
        view = adapter.export_user("alice")
        assert evaluate_values(view, "/user/call-status/state") == [
            "online"
        ]


class TestPresenceAdapter:
    def test_round_trip(self):
        server = PresenceServer("im")
        adapter = PresenceAdapter("gup.im.com", server)
        adapter.track_user("alice")
        view = adapter.export_user("alice")
        assert evaluate_values(view, "/user/presence/status") == [
            "offline"
        ]
        adapter.put(
            "/user[@id='alice']/presence",
            parse("<presence><status>busy</status>"
                  "<note>in a meeting</note></presence>"),
        )
        assert server.status("alice") == "busy"
        view = adapter.export_user("alice")
        assert evaluate_values(view, "/user/presence/note") == [
            "in a meeting"
        ]

    def test_write_requires_status(self):
        adapter = PresenceAdapter("gup.im.com", PresenceServer("im"))
        with pytest.raises(AdapterError):
            adapter.put(
                "/user[@id='alice']/presence", parse("<presence/>")
            )


class TestDeviceAdapter:
    def setup_method(self):
        self.phone = MobilePhone("alice-cell", "alice", "sprintpcs")
        self.phone.store_entry(PhoneBookEntry("1", "Bob", "908-582-1111"))
        self.adapter = DeviceAdapter("gup.device.alice", self.phone)

    def test_export(self):
        view = self.adapter.export_user("alice")
        assert GUP_SCHEMA.validate(view) == []
        assert evaluate_values(
            view, "/user/address-book/item/name"
        ) == ["Bob"]

    def test_wrong_user(self):
        assert self.adapter.export_user("bob") is None

    def test_sync_down_replaces_book(self):
        fragment = parse(
            "<address-book>"
            "<item id='2'><name>Carol</name>"
            "<number type='cell'>908-582-2222</number></item>"
            "</address-book>"
        )
        self.adapter.put("/user[@id='alice']/address-book", fragment)
        names = [e.name for e in self.phone.all_entries()]
        assert names == ["Carol"]


class TestLdapAdapter:
    def setup_method(self):
        self.server = DirectoryServer("ldap.lucent", suffix="o=lucent")
        self.server.add(
            LdapEntry("o=lucent", ["organization"], {"o": ["lucent"]})
        )
        self.server.add(
            LdapEntry(
                "uid=alice,o=lucent",
                ["person", "inetOrgPerson", "organizationalPerson"],
                {
                    "cn": ["Alice Smith"], "sn": ["Smith"],
                    "uid": ["alice"], "mail": ["alice@lucent.com"],
                    "telephoneNumber": ["908-582-0001"],
                    "mobile": ["908-555-1234"],
                    "ou": ["Bell Labs"],
                },
            )
        )
        blob = ("<address-book><item id='1'><name>Bob</name>"
                "<number type='cell'>908-582-1111</number></item>"
                "<item id='2'><name>Carol</name></item></address-book>")
        self.server.add(
            LdapEntry(
                "profileName=alice,o=lucent",
                ["roamingProfileObject"],
                {"profileName": ["alice"], "profileBlob": [blob]},
            )
        )
        self.adapter = LdapAdapter("gup.ldap.lucent", self.server)
        self.adapter.map_person("alice", "uid=alice,o=lucent")
        self.adapter.map_roaming_profile(
            "alice", "profileName=alice,o=lucent"
        )

    def test_person_maps_to_self(self):
        view = self.adapter.export_user("alice")
        assert GUP_SCHEMA.validate(view) == []
        assert evaluate_values(view, "/user/self/name") == ["Alice Smith"]
        numbers = evaluate_values(view, "/user/self/number/@type")
        assert sorted(numbers) == ["cell", "work"]

    def test_blob_parses_to_address_book(self):
        view = self.adapter.export_user("alice")
        assert len(view.child("address-book").children) == 2

    def test_blob_access_pays_whole_object(self):
        before = self.adapter.native_bytes_read
        self.adapter.get(
            "/user[@id='alice']/address-book/item[@id='1']"
        )
        cost = self.adapter.native_bytes_read - before
        blob_size = self.server.entry(
            "profileName=alice,o=lucent"
        ).byte_size()
        assert cost >= blob_size  # one item still costs the whole blob

    def test_map_roaming_profile_validates_class(self):
        with pytest.raises(AdapterError):
            self.adapter.map_roaming_profile(
                "alice", "uid=alice,o=lucent"
            )

    def test_write_rewrites_whole_blob(self):
        fragment = parse(
            "<address-book><item id='3'><name>Zoe</name></item>"
            "</address-book>"
        )
        self.adapter.put("/user[@id='alice']/address-book", fragment)
        entry = self.server.entry("profileName=alice,o=lucent")
        assert "Zoe" in entry.first("profileBlob")
        assert "Bob" not in entry.first("profileBlob")

    def test_write_self_rejected(self):
        with pytest.raises(AdapterError):
            self.adapter.put(
                "/user[@id='alice']/self", parse("<self/>")
            )

    def test_write_attr_round_trip(self):
        self.adapter.write_attr("alice", "mail", ["alice@corp.com"])
        entry = self.server.entry("uid=alice,o=lucent")
        assert entry.values("mail") == ["alice@corp.com"]

    def test_write_attr_unknown_user(self):
        with pytest.raises(AdapterError):
            self.adapter.write_attr("mallory", "mail", ["x@y.z"])

    def test_write_attr_on_outage(self):
        # The person entry vanished (moved, outage): the write path
        # surfaces the same taxonomy as reads — AdapterError, chained
        # from the backing-store error, never a raw StoreError.
        self.server.delete("uid=alice,o=lucent")
        with pytest.raises(AdapterError) as excinfo:
            self.adapter.write_attr("alice", "mail", ["x@y.z"])
        assert isinstance(excinfo.value.__cause__, StoreError)

    def test_write_attr_schema_violation_rolls_back(self):
        # displayName is not in any of the entry's object classes.
        # The server mutates before validating, so the adapter must
        # roll back: the entry is left exactly as it was.
        before = dict(self.server.entry("uid=alice,o=lucent").attrs)
        with pytest.raises(AdapterError) as excinfo:
            self.adapter.write_attr("alice", "displayName", ["A"])
        assert isinstance(excinfo.value.__cause__, StoreError)
        after = self.server.entry("uid=alice,o=lucent").attrs
        assert after == before

    def test_write_attr_rollback_restores_previous_values(self):
        # Overwriting an existing attribute with an invalid value set
        # (missing required attrs can't happen via modify of optional
        # attrs, so violate the schema through an unknown class-less
        # attribute after first seeding mail) must restore the old
        # value, not delete the attribute.
        with pytest.raises(AdapterError):
            self.adapter.write_attr("alice", "roomNumber", ["42"])
        entry = self.server.entry("uid=alice,o=lucent")
        assert entry.values("mail") == ["alice@lucent.com"]
        assert entry.values("roomNumber") == []
