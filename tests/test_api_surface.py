"""Direct exercises of public API surface not reached elsewhere."""

from repro.access import PolicyRepository, PolicyRule
from repro.core import MirrorConstellation, UserDistributedMdm
from repro.core.server import GupsterServer
from repro.pxml import GUP_SCHEMA, KeySpec, PNode, parse_path
from repro.simnet import Network
from repro.stores import (
    HLR,
    VLR,
    Class5Switch,
    LdapEntry,
    PhoneBookEntry,
    PresenceServer,
    WebPortal,
)
from repro.sync import SyncEndpoint, SyncSession
from repro.workloads import SyntheticAdapter


class TestStoreSurface:
    def test_presence_buddy_management(self):
        server = PresenceServer("im")
        server.add_buddy("a", "b", "Bee")
        server.add_buddy("a", "c")
        assert server.buddies("a") == {"b": "Bee", "c": ""}
        server.remove_buddy("a", "b")
        assert server.buddies("a") == {"c": ""}
        server.remove_buddy("a", "nope")  # idempotent

    def test_portal_accounts(self):
        portal = WebPortal("p")
        assert not portal.has_account("x")
        portal.create_account("x")
        assert portal.has_account("x")
        assert portal.accounts() == ["x"]

    def test_switch_has_line(self):
        switch = Class5Switch("s")
        assert not switch.has_line("1")
        switch.install_line("1", "u")
        assert switch.has_line("1")

    def test_hlr_surface(self):
        hlr = HLR("h", carrier="c")
        vlr = VLR("v", ["cell-1"])
        hlr.attach_vlr(vlr)
        hlr.provision_subscriber("1", "i", "u")
        assert [r.user_id for r in hlr.all_subscribers()] == ["u"]
        assert hlr.routing_info("1") is None  # detached
        hlr.location_update("1", "v", "cell-1")
        assert hlr.routing_info("1") == "v"
        assert vlr.visitor_count == 1

    def test_phonebook_entry_tuple(self):
        entry = PhoneBookEntry("1", "Bob", "908")
        assert entry.as_tuple() == ("1", "Bob", "908")

    def test_ldap_parent_dn(self):
        entry = LdapEntry("uid=a,o=x", ["organization"], {"o": ["x"]})
        assert entry.parent_dn() == "o=x"
        root = LdapEntry("o=x", ["organization"], {"o": ["x"]})
        assert root.parent_dn() is None


class TestPxmlSurface:
    def test_pnode_extend(self):
        node = PNode("a")
        node.extend([PNode("b"), PNode("c")])
        assert [c.tag for c in node.children] == ["b", "c"]

    def test_path_iter_steps(self):
        path = parse_path("/a/b/c")
        assert [s.name for s in path.iter_steps()] == ["a", "b", "c"]

    def test_keyspec_surface(self):
        spec = KeySpec({"item": ("id",)})
        assert spec.key_attrs("item") == ("id",)
        assert spec.key_attrs("other") is None
        extended = spec.extended({"thing": ("name",)})
        assert extended.key_attrs("thing") == ("name",)
        assert spec.key_attrs("thing") is None  # original untouched

    def test_element_child_decl(self):
        decl = GUP_SCHEMA.decl("user")
        assert decl.child_decl("presence") is not None
        assert decl.child_decl("nothing") is None


class TestInfraSurface:
    def test_policy_repo_owners(self):
        repo = PolicyRepository()
        repo.store(PolicyRule("u", "/user[@id='u']/presence", "permit"))
        assert repo.owners() == ["u"]

    def test_pap_list_rules(self):
        from repro.access import PolicyAdministrationPoint
        repo = PolicyRepository()
        pap = PolicyAdministrationPoint(repo)
        rule = PolicyRule("u", "/user[@id='u']/presence", "permit",
                          rule_id="mine")
        pap.provision_rule("u", rule)
        assert [r.rule_id for r in pap.list_rules("u")] == ["mine"]
        assert pap.list_rules("other") == []

    def test_network_sample_hop_direct(self):
        net = Network(seed=1)
        net.add_node("a")
        net.add_node("b")
        assert net.sample_hop("a", "b", 100) > 0

    def test_sync_surface(self):
        endpoint = SyncEndpoint("e")
        assert endpoint.item_count == 0
        session = SyncSession(endpoint, SyncEndpoint("f"))
        assert not session.anchors_match
        session.run()
        assert session.anchors_match

    def test_constellation_server_at(self):
        net = Network(seed=1)
        net.add_node("m0")
        constellation = MirrorConstellation(net, ["m0"])
        assert constellation.server_at("m0").name == "m0"

    def test_mdm_server_for(self):
        net = Network(seed=1)
        net.add_node("wp")
        mdm = UserDistributedMdm(net, "wp")
        assert mdm.server_for("nobody") is None
        server = GupsterServer("s", enforce_policies=False)
        mdm.assign("u", "wp", server)
        assert mdm.server_for("u") is server

    def test_reachme_commute_predicate(self):
        from repro.services import ReachMeState
        state = ReachMeState()
        state.hour, state.weekday = 8, 1
        assert state.is_commute()
        state.hour = 12
        assert not state.is_commute()
        state.hour, state.weekday = 8, 6
        assert not state.is_commute()

    def test_prepay_surface(self):
        from repro.services import PrePayService
        hlr = HLR("h", carrier="c")
        hlr.provision_subscriber("1", "i", "u")
        service = PrePayService(hlr)
        assert not service.has_account("u")
        service.open_account("u", 10)
        assert service.account_ids() == ["u"]

    def test_annotator_direct(self):
        from repro.core import SourceAnnotator
        annotator = SourceAnnotator()
        store = SyntheticAdapter("gup.s.com")
        store.add_user("u", ["presence"])
        view = store.export_user("u")
        annotator.annotate(view, "gup.s.com")
        assert annotator.origin_of(view) == "gup.s.com"
