"""Unit tests for the mini-LDAP directory server (E9 substrate)."""

import pytest

from repro.errors import StoreError
from repro.stores import DirectoryServer, LdapEntry, parse_filter


def people_server():
    server = DirectoryServer("ldap.lucent", suffix="o=lucent")
    server.add(LdapEntry("o=lucent", ["organization"], {"o": ["lucent"]}))
    server.add(
        LdapEntry(
            "ou=people,o=lucent",
            ["organizationalUnit"],
            {"ou": ["people"]},
        )
    )
    server.add(
        LdapEntry(
            "uid=alice,ou=people,o=lucent",
            ["person", "inetOrgPerson"],
            {
                "cn": ["Alice Smith"],
                "sn": ["Smith"],
                "uid": ["alice"],
                "mail": ["alice@lucent.com"],
                "telephoneNumber": ["908-582-0001", "908-582-0002"],
            },
        )
    )
    server.add(
        LdapEntry(
            "uid=bob,ou=people,o=lucent",
            ["person", "inetOrgPerson"],
            {"cn": ["Bob Jones"], "sn": ["Jones"], "uid": ["bob"]},
        )
    )
    return server


class TestEntries:
    def test_dn_normalized(self):
        entry = LdapEntry("UID=Alice, OU=People, O=Lucent", ["person"],
                          {"cn": ["A"], "sn": ["S"]})
        assert entry.dn == "uid=alice,ou=people,o=lucent"

    def test_multivalued_attributes(self):
        server = people_server()
        alice = server.entry("uid=alice,ou=people,o=lucent")
        assert len(alice.values("telephoneNumber")) == 2
        assert alice.first("mail") == "alice@lucent.com"

    def test_outside_suffix_rejected(self):
        server = people_server()
        with pytest.raises(StoreError):
            server.add(LdapEntry("o=att", ["organization"], {"o": ["att"]}))

    def test_duplicate_dn_rejected(self):
        server = people_server()
        with pytest.raises(StoreError):
            server.add(
                LdapEntry("o=lucent", ["organization"], {"o": ["lucent"]})
            )

    def test_missing_required_attribute_rejected(self):
        server = people_server()
        with pytest.raises(StoreError):
            server.add(
                LdapEntry(
                    "uid=carol,ou=people,o=lucent", ["person"],
                    {"cn": ["Carol"]},  # missing sn
                )
            )

    def test_undeclared_attribute_rejected(self):
        server = people_server()
        with pytest.raises(StoreError):
            server.add(
                LdapEntry(
                    "uid=carol,ou=people,o=lucent", ["person"],
                    {"cn": ["C"], "sn": ["C"], "favoriteColor": ["red"]},
                )
            )

    def test_unknown_objectclass_rejected(self):
        server = people_server()
        with pytest.raises(StoreError):
            server.add(
                LdapEntry(
                    "uid=carol,ou=people,o=lucent", ["martian"],
                    {"cn": ["C"]},
                )
            )

    def test_modify_and_delete(self):
        server = people_server()
        dn = "uid=bob,ou=people,o=lucent"
        server.modify(dn, "mail", ["bob@lucent.com"])
        assert server.entry(dn).first("mail") == "bob@lucent.com"
        server.delete(dn)
        assert not server.has_entry(dn)
        with pytest.raises(StoreError):
            server.delete(dn)


class TestFilters:
    def test_equality(self):
        f = parse_filter("(uid=alice)")
        server = people_server()
        assert f.matches(server.entry("uid=alice,ou=people,o=lucent"))
        assert not f.matches(server.entry("uid=bob,ou=people,o=lucent"))

    def test_presence(self):
        f = parse_filter("(mail=*)")
        server = people_server()
        assert f.matches(server.entry("uid=alice,ou=people,o=lucent"))
        assert not f.matches(server.entry("uid=bob,ou=people,o=lucent"))

    def test_prefix(self):
        f = parse_filter("(cn=Alice*)")
        server = people_server()
        assert f.matches(server.entry("uid=alice,ou=people,o=lucent"))

    def test_objectclass_matching(self):
        f = parse_filter("(objectClass=person)")
        server = people_server()
        assert f.matches(server.entry("uid=bob,ou=people,o=lucent"))

    def test_and_or_not(self):
        server = people_server()
        alice = server.entry("uid=alice,ou=people,o=lucent")
        bob = server.entry("uid=bob,ou=people,o=lucent")
        both = parse_filter("(&(objectClass=person)(mail=*))")
        assert both.matches(alice) and not both.matches(bob)
        either = parse_filter("(|(uid=alice)(uid=bob))")
        assert either.matches(alice) and either.matches(bob)
        negated = parse_filter("(!(uid=alice))")
        assert not negated.matches(alice) and negated.matches(bob)

    @pytest.mark.parametrize(
        "bad",
        ["uid=alice", "(&)", "(uid=al*ce)", "(=x)", "(uid=alice",
         "(!(uid=a)", "(uid=alice))"],
    )
    def test_malformed_filters(self, bad):
        with pytest.raises(StoreError):
            parse_filter(bad)


class TestSearch:
    def test_scope_base(self):
        server = people_server()
        results = server.search("uid=alice,ou=people,o=lucent", "base")
        assert [e.first("uid") for e in results] == ["alice"]

    def test_scope_one(self):
        server = people_server()
        results = server.search("ou=people,o=lucent", "one")
        assert sorted(e.first("uid") for e in results) == ["alice", "bob"]

    def test_scope_sub(self):
        server = people_server()
        results = server.search("o=lucent", "sub")
        assert len(results) == 4

    def test_search_with_filter(self):
        server = people_server()
        results = server.search(
            "o=lucent", "sub", "(&(objectClass=person)(mail=*))"
        )
        assert [e.first("uid") for e in results] == ["alice"]

    def test_bad_scope(self):
        with pytest.raises(StoreError):
            people_server().search("o=lucent", "galaxy")


class TestSubtreeDelegation:
    def test_referral_and_export(self):
        server = people_server()
        server.delegate_subtree("ou=people,o=lucent", "ldap2.lucent")
        assert (
            server.referral_for("uid=alice,ou=people,o=lucent")
            == "ldap2.lucent"
        )
        assert server.referral_for("o=lucent") is None
        exported = server.export_subtree("ou=people,o=lucent")
        assert len(exported) == 3  # ou + two people


class TestOpaqueBlob:
    def test_roaming_profile_blob_round_trip(self):
        """The Netscape workaround: nested data as an opaque whole."""
        server = DirectoryServer("ldap.netscape", suffix="o=netscape")
        blob = "<address-book><item id='1'/><item id='2'/></address-book>"
        server.add(
            LdapEntry(
                "profileName=arnaud,o=netscape",
                ["roamingProfileObject"],
                {"profileName": ["arnaud"], "profileBlob": [blob]},
            )
        )
        entry = server.entry("profileName=arnaud,o=netscape")
        # Whole-object retrieval: the blob's full size is always paid.
        assert entry.first("profileBlob") == blob
        assert entry.byte_size() >= len(blob)
