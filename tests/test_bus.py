"""Unit tests for the change bus (E20): log, cursors, waves,
compaction, and the stock listeners."""

import pytest

from repro.bus import (
    CacheInvalidationListener,
    ChangeBus,
    ChangeLog,
    MirrorRefreshListener,
    RecordingListener,
    SubscriberListener,
)
from repro.simnet import Network, Simulator
from repro.stores.sharded import ShardedStore

PATH = "/user[@id='u']/presence"


def make_world(clients=("client-1", "client-2")):
    sim = Simulator()
    network = Network()
    network.add_node("gupster")
    for client in clients:
        network.add_node(client, region="internet")
    bus = ChangeBus(sim, network, "gupster")
    return sim, network, bus


class TestChangeLog:
    def test_sequences_are_contiguous_from_one(self):
        log = ChangeLog("s0")
        records = [
            log.append(float(i), PATH, "v%d" % i) for i in range(5)
        ]
        assert [r.seq for r in records] == [1, 2, 3, 4, 5]
        assert log.last_seq == 5
        assert log.head_seq == 1

    def test_since_is_a_slice_past_the_cursor(self):
        log = ChangeLog()
        for i in range(5):
            log.append(float(i), PATH, "v%d" % i)
        assert [r.seq for r in log.since(0)] == [1, 2, 3, 4, 5]
        assert [r.seq for r in log.since(3)] == [4, 5]
        assert log.since(5) == []
        assert log.since(99) == []

    def test_backlog_counts(self):
        log = ChangeLog()
        for i in range(4):
            log.append(0.0, PATH, "v%d" % i)
        assert log.backlog(0) == 4
        assert log.backlog(3) == 1
        assert log.backlog(4) == 0

    def test_changed_at_latest_and_sentinel(self):
        log = ChangeLog()
        log.append(10.0, PATH, "busy")
        log.append(20.0, PATH, "away")
        # The latest change is known exactly.
        assert log.changed_at(PATH, "away") == 20.0
        # A superseded value's instant is no longer known — never
        # fabricate one.
        assert log.changed_at(PATH, "busy") is None
        assert log.changed_at(PATH, "nope") is None
        assert log.changed_at("/other", "away") is None

    def test_compact_drops_consumed_prefix(self):
        log = ChangeLog()
        for i in range(6):
            log.append(float(i), PATH, "v%d" % i)
        dropped = log.compact(4)
        assert dropped == 4
        assert len(log) == 2
        assert log.head_seq == 5
        assert [r.seq for r in log.since(4)] == [5, 6]
        # Compaction below the head is a no-op.
        assert log.compact(2) == 0
        assert log.compacted_total == 4

    def test_compact_keeps_latest_change_index(self):
        log = ChangeLog()
        log.append(10.0, PATH, "busy")
        log.append(20.0, PATH, "away")
        log.compact(2)
        assert len(log) == 0
        assert log.changed_at(PATH, "away") == 20.0


class TestChangeBus:
    def test_appends_coalesce_into_one_wave(self):
        sim, _network, bus = make_world()
        listener = RecordingListener("l1", node="client-1")
        bus.attach(listener)
        for i in range(10):
            sim.schedule(
                i * 4.0, lambda i=i: bus.append(PATH, "v%d" % i)
            )
        sim.run(until=1_000)
        assert [r.value for r in listener.received] == [
            "v%d" % i for i in range(10)
        ]
        assert bus.waves == 1
        # One round trip (request + ack) for the whole burst.
        assert bus.messages == 2
        assert bus.records_delivered == 10

    def test_attach_snapshots_cursor_at_head(self):
        sim, _network, bus = make_world()
        bus.append(PATH, "old")
        late = RecordingListener("late", node="client-1")
        bus.attach(late)
        sim.schedule(100, lambda: bus.append(PATH, "new"))
        sim.run(until=1_000)
        assert [r.value for r in late.received] == ["new"]

    def test_wants_filter_advances_cursor_without_wire(self):
        sim, _network, bus = make_world()

        class PickyListener(RecordingListener):
            def wants(self, record):
                return record.path == PATH

        picky = PickyListener("picky", node="client-1")
        bus.attach(picky)
        sim.schedule(0, lambda: bus.append("/user[@id='u']/book", "x"))
        sim.run(until=1_000)
        assert picky.received == []
        assert bus.messages == 0
        assert bus.pending_for(picky) == 0

    def test_in_process_listener_costs_no_wire(self):
        sim, _network, bus = make_world()
        local = RecordingListener("local")  # node=None
        bus.attach(local)
        sim.schedule(0, lambda: bus.append(PATH, "busy"))
        sim.run(until=1_000)
        assert [r.value for r in local.received] == ["busy"]
        assert bus.messages == 0
        assert bus.deliveries == 1

    def test_crash_holds_cursor_and_resume_replays_all(self):
        sim, network, bus = make_world()
        flaky = RecordingListener("flaky", node="client-1")
        steady = RecordingListener("steady", node="client-2")
        bus.attach(flaky)
        bus.attach(steady)
        sim.schedule(0, lambda: bus.append(PATH, "v1"))
        sim.schedule(200, lambda: network.fail("client-1"))
        sim.schedule(300, lambda: bus.append(PATH, "v2"))
        sim.schedule(400, lambda: bus.append(PATH, "v3"))
        sim.run(until=1_000)
        assert [r.value for r in flaky.received] == ["v1"]
        assert [r.value for r in steady.received] == ["v1", "v2", "v3"]
        assert bus.delivery_failures >= 1
        assert bus.pending_for(flaky) == 2
        network.restore("client-1")
        assert bus.kick() is True
        sim.run(until=2_000)
        # No loss, no duplication: every seq exactly once, in order.
        assert [(r.seq, r.value) for r in flaky.received] == [
            (1, "v1"), (2, "v2"), (3, "v3"),
        ]
        assert bus.kick() is False

    def test_fat_replay_is_never_overtaken_by_the_next_wave(self):
        # Regression (found by the E20 crash/resume bench gate): a
        # recovery wave carrying a large backlog transfers slowly at
        # simulated bandwidth; a small wave armed right after it must
        # not land first. Deliveries per listener are FIFO.
        sim, network, bus = make_world()
        listener = RecordingListener("l1", node="client-1")
        bus.attach(listener)
        network.fail("client-1")
        for index in range(2_000):
            bus.append(PATH, "x" * 200, user_id="u")
        sim.run(until=sim.now + 200)  # the armed wave fails to deliver
        assert bus.delivery_failures == 1
        network.restore("client-1")
        assert bus.kick() is True     # fat replay: ~540 KB in flight
        sim.schedule(
            60, lambda: bus.append(PATH, "tail", user_id="u")
        )                             # small wave right behind it
        sim.run()
        seqs = [record.seq for record in listener.received]
        assert seqs == list(range(1, 2_002))
        assert listener.received[-1].value == "tail"
        # And arrival instants are monotone: the channel is FIFO.
        assert listener.delivered_at == sorted(listener.delivered_at)

    def test_compaction_bounded_by_slowest_cursor(self):
        sim, network, bus = make_world()
        fast = RecordingListener("fast", node="client-1")
        slow = RecordingListener("slow", node="client-2")
        bus.attach(fast)
        bus.attach(slow)
        network.fail("client-2")
        for i in range(5):
            sim.schedule(i * 10.0, lambda i=i: bus.append(PATH, "v%d" % i))
        sim.run(until=1_000)
        # The failed listener pins the log: nothing may be compacted
        # past its cursor.
        assert bus._retained() == 5.0
        network.restore("client-2")
        bus.kick()
        sim.run(until=2_000)
        assert len(slow.received) == 5
        assert bus._retained() == 0.0
        assert bus.records_compacted == 5

    def test_no_listeners_keeps_only_the_index(self):
        sim, _network, bus = make_world()
        for i in range(100):
            bus.append(PATH, "v%d" % i)
        assert bus._retained() == 0.0
        assert bus.changed_at(PATH, "v99") == 0.0
        assert bus.changed_at(PATH, "v42") is None
        # No listener, no waves: the simulator stays idle.
        assert sim.pending == 0

    def test_double_attach_rejected(self):
        _sim, _network, bus = make_world()
        listener = RecordingListener("dup", node="client-1")
        bus.attach(listener)
        with pytest.raises(ValueError):
            bus.attach(RecordingListener("dup", node="client-2"))

    def test_detach_unpins_compaction(self):
        sim, network, bus = make_world()
        gone = RecordingListener("gone", node="client-1")
        bus.attach(gone)
        network.fail("client-1")
        sim.schedule(0, lambda: bus.append(PATH, "v1"))
        sim.run(until=1_000)
        assert bus._retained() == 1.0
        bus.detach(gone)
        sim.schedule(0, lambda: bus.append(PATH, "v2"))
        sim.run(until=2_000)
        assert bus._retained() == 0.0

    def test_counters_live_in_shared_registry(self):
        sim, network, bus = make_world()
        listener = RecordingListener("l1", node="client-1")
        bus.attach(listener)
        sim.schedule(0, lambda: bus.append(PATH, "busy"))
        sim.run(until=1_000)
        snapshot = network.metrics.snapshot()
        assert snapshot["counters"]["bus.appends"] == 1
        assert snapshot["counters"]["bus.waves"] == 1
        assert snapshot["counters"]["bus.messages"] == 2
        assert snapshot["gauges"]["bus.backlog"] == 0.0


class TestSharding:
    def test_sharded_store_routes_appends_per_shard(self):
        sim = Simulator()
        network = Network()
        network.add_node("gupster")
        network.add_node("client-1", region="internet")
        bus = ChangeBus(sim, network, "gupster")
        store = ShardedStore("gupshard", 4, network=network)
        store.bind_bus(bus)
        listener = RecordingListener("l1", node="client-1")
        bus.attach(listener)
        users = ["user-%03d" % i for i in range(40)]
        for i, user in enumerate(users):
            sim.schedule(
                i * 1.0,
                lambda u=user: bus.append(
                    "/user[@id='%s']/presence" % u, "busy", user_id=u
                ),
            )
        sim.run(until=10_000)
        # Every append landed in its owner's shard log...
        shards_used = {r.shard for r in listener.received}
        assert len(shards_used) > 1
        assert shards_used <= set(store.shards)
        for record in listener.received:
            assert store.shard_for(record.user_id) == record.shard
        # ...and nothing was lost or duplicated across shards.
        assert sorted(r.user_id for r in listener.received) == users

    def test_per_shard_sequences_are_independent(self):
        sim, _network, bus = make_world()
        bus.use_shard_router(lambda uid: "s-" + uid[-1], ["s-a", "s-b"])
        bus.append(PATH, "v1", user_id="xa")
        bus.append(PATH, "v2", user_id="xb")
        bus.append(PATH, "v3", user_id="xa")
        assert bus.log_for("s-a").last_seq == 2
        assert bus.log_for("s-b").last_seq == 1


class FakeCache:
    def __init__(self):
        self.invalidated = []

    def invalidate(self, path):
        self.invalidated.append(str(path))
        return 1


class FakeConstellation:
    def __init__(self):
        self.rounds = 0

    def replicate(self):
        self.rounds += 1
        return 3


class CountingPep:
    def __init__(self, permit=True):
        self.permit = permit
        self.enforced = 0

    def enforce(self, request, context):
        from repro.access import Decision
        self.enforced += 1
        return Decision(self.permit, [], ["fake"])


class TestListeners:
    def test_cache_invalidation_coalesces_distinct_paths(self):
        sim, _network, bus = make_world()
        cache = FakeCache()
        bus.attach(CacheInvalidationListener("inval", cache))
        listener = bus.listeners[0]
        for i in range(6):
            sim.schedule(
                i * 1.0,
                lambda i=i: bus.append(
                    PATH if i % 2 else "/user[@id='u']/book", "v%d" % i
                ),
            )
        sim.run(until=1_000)
        # Six records, two distinct paths, one wave: two invalidations.
        assert len(cache.invalidated) == 2
        assert listener.sweeps == 1
        assert listener.coalesced == 4

    def test_mirror_refresh_once_per_wave(self):
        sim, _network, bus = make_world()
        constellation = FakeConstellation()
        refresh = MirrorRefreshListener("gossip", constellation)
        bus.attach(refresh)
        for i in range(8):
            sim.schedule(i * 2.0, lambda i=i: bus.append(PATH, "v%d" % i))
        sim.run(until=1_000)
        assert constellation.rounds == 1
        assert refresh.replicated == 3

    def test_subscriber_memoizes_only_within_a_wave(self):
        from repro.access import RequestContext
        sim, _network, bus = make_world()
        pep = CountingPep()
        delivered = []
        listener = SubscriberListener(
            "sub", "client-1", pep,
            request=PATH, watch_path=PATH,
            context=RequestContext("mom", relationship="family"),
            on_delivery=lambda value, at, now: delivered.append(value),
        )
        bus.attach(listener)
        # Three deltas in one wave: one enforce, memo covers the rest.
        for i in range(3):
            sim.schedule(i * 1.0, lambda i=i: bus.append(PATH, "v%d" % i))
        sim.run(until=1_000)
        assert delivered == ["v0", "v1", "v2"]
        assert pep.enforced == 1
        # A later wave must re-check: the memo died with its wave.
        sim.schedule(0, lambda: bus.append(PATH, "v3"))
        sim.run(until=2_000)
        assert pep.enforced == 2

    def test_subscriber_withholds_on_denial(self):
        from repro.access import RequestContext
        sim, _network, bus = make_world()
        pep = CountingPep(permit=False)
        delivered, withheld = [], []
        listener = SubscriberListener(
            "sub", "client-1", pep,
            request=PATH, watch_path=PATH,
            context=RequestContext("stranger"),
            on_delivery=lambda value, at, now: delivered.append(value),
            on_withheld=lambda record: withheld.append(record.value),
        )
        bus.attach(listener)
        sim.schedule(0, lambda: bus.append(PATH, "secret"))
        sim.run(until=1_000)
        assert delivered == []
        assert withheld == ["secret"]
        assert listener.withheld == 1
        # Withheld records are consumed, not retried.
        assert bus.pending_for(listener) == 0
