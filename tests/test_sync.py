"""Unit tests for synchronization: endpoints, fast/slow sync,
reconciliation policies (requirements 6/7, experiment E8 machinery)."""

import pytest

from repro.errors import SyncError
from repro.pxml import PNode, parse
from repro.sync import Reconciler, SyncEndpoint, SyncSession


def item(item_id, name, number=None):
    node = PNode("item", {"id": item_id})
    node.append(PNode("name", text=name))
    if number is not None:
        node.append(PNode("number", {"type": "cell"}, number))
    return node


class TestSyncEndpoint:
    def test_put_and_get(self):
        ep = SyncEndpoint("phone")
        ep.put_item(item("1", "Bob"), now=10)
        assert ep.item("1").child("name").text == "Bob"
        assert ep.item_ids() == ["1"]
        assert ep.updated_at("1") == 10

    def test_item_requires_id(self):
        ep = SyncEndpoint("phone")
        with pytest.raises(SyncError):
            ep.put_item(PNode("item"))

    def test_wrong_tag_rejected(self):
        ep = SyncEndpoint("phone")
        with pytest.raises(SyncError):
            ep.put_item(PNode("entry", {"id": "1"}))

    def test_noop_write_not_logged(self):
        ep = SyncEndpoint("phone")
        ep.put_item(item("1", "Bob"))
        seq = ep.seq
        ep.put_item(item("1", "Bob"))
        assert ep.seq == seq

    def test_delete(self):
        ep = SyncEndpoint("phone")
        ep.put_item(item("1", "Bob"))
        ep.delete_item("1")
        assert ep.item("1") is None
        with pytest.raises(SyncError):
            ep.delete_item("1")

    def test_changes_since_collapses_per_item(self):
        ep = SyncEndpoint("phone")
        ep.put_item(item("1", "Bob"))
        mark = ep.seq
        ep.put_item(item("1", "Bobby"))
        ep.put_item(item("1", "Robert"))
        ep.put_item(item("2", "Carol"))
        changes = ep.changes_since(mark)
        assert len(changes) == 2
        names = {
            c.item_id: c.payload.child("name").text for c in changes
        }
        assert names["1"] == "Robert"

    def test_snapshot_and_load(self):
        ep = SyncEndpoint("phone")
        ep.put_item(item("2", "Carol"))
        ep.put_item(item("1", "Bob"))
        snap = ep.snapshot()
        assert [c.attrs["id"] for c in snap.children] == ["1", "2"]
        other = SyncEndpoint("network")
        other.load_snapshot(snap)
        assert other.item_ids() == ["1", "2"]
        with pytest.raises(SyncError):
            other.load_snapshot(parse("<calendar/>"))

    def test_items_are_copies(self):
        ep = SyncEndpoint("phone")
        original = item("1", "Bob")
        ep.put_item(original)
        original.child("name").text = "tampered"
        assert ep.item("1").child("name").text == "Bob"


def paired():
    phone = SyncEndpoint("phone")
    network = SyncEndpoint("network")
    session = SyncSession(phone, network)
    return phone, network, session


class TestFirstAndFastSync:
    def test_first_sync_is_slow(self):
        phone, network, session = paired()
        phone.put_item(item("1", "Bob"), now=1)
        network.put_item(item("2", "Carol"), now=2)
        report = session.run(now=10)
        assert report.mode == "slow"
        assert phone.item_ids() == ["1", "2"]
        assert network.item_ids() == ["1", "2"]

    def test_second_sync_is_fast(self):
        phone, network, session = paired()
        session.run(now=1)
        report = session.run(now=2)
        assert report.mode == "fast"

    def test_fast_sync_ships_only_deltas(self):
        phone, network, session = paired()
        for index in range(20):
            network.put_item(item(str(index), "c%d" % index), now=1)
        session.run(now=2)          # slow: everything moves
        phone.put_item(item("new", "Dave"), now=3)
        report = session.run(now=4)
        assert report.mode == "fast"
        assert report.sent_to_server == 1
        assert report.sent_to_client == 0
        assert network.item("new") is not None

    def test_fast_sync_propagates_deletions(self):
        phone, network, session = paired()
        phone.put_item(item("1", "Bob"), now=1)
        session.run(now=2)
        phone.delete_item("1", now=3)
        session.run(now=4)
        assert network.item("1") is None

    def test_idle_fast_sync_is_cheap(self):
        phone, network, session = paired()
        for index in range(50):
            phone.put_item(item(str(index), "c%d" % index), now=1)
        slow_report = session.run(now=2)
        idle_report = session.run(now=3)
        assert idle_report.bytes < slow_report.bytes / 3
        assert idle_report.sent_to_client == 0
        assert idle_report.sent_to_server == 0

    def test_anchor_corruption_forces_slow_sync(self):
        phone, network, session = paired()
        session.run(now=1)
        session.corrupt_client_anchor()
        report = session.run(now=2)
        assert report.mode == "slow"
        # And the session recovers to fast afterwards.
        assert session.run(now=3).mode == "fast"


class TestConflicts:
    def make_conflict(self, policy):
        phone, network, session = paired()
        phone.put_item(item("1", "Bob", "111"), now=1)
        session.run(now=2)
        phone.put_item(item("1", "Bobby"), now=10)
        network.put_item(item("1", "Bob", "222"), now=5)
        session = SyncSession(phone, network, Reconciler(policy))
        # keep the original session anchors: rebuild pairing state
        session._client_anchor = "x"
        session._server_anchor = "x"
        session._ever_synced = True
        session._client_mark = phone.seq - 1
        session._server_mark = network.seq - 1
        report = session.run(now=20)
        return phone, network, report

    def test_client_wins(self):
        phone, network, report = self.make_conflict("client-wins")
        assert network.item("1").child("name").text == "Bobby"
        assert report.conflicts[0].winner == "client"

    def test_server_wins(self):
        phone, network, report = self.make_conflict("server-wins")
        assert phone.item("1").child("name").text == "Bob"
        assert phone.item("1").child("number").text == "222"

    def test_last_writer_wins(self):
        phone, network, report = self.make_conflict("last-writer-wins")
        # Phone wrote at t=10, network at t=5: phone wins.
        assert network.item("1").child("name").text == "Bobby"

    def test_merge_combines_fields(self):
        phone, network, report = self.make_conflict("merge")
        merged_client = phone.item("1")
        merged_server = network.item("1")
        # Newer name (Bobby) plus the number only the server had.
        assert merged_client.child("name").text == "Bobby"
        assert merged_client.child("number").text == "222"
        assert merged_client.deep_equal(merged_server)
        assert report.conflicts[0].winner == "merged"

    def test_duplicate_keeps_both(self):
        phone, network, report = self.make_conflict("duplicate")
        assert sorted(network.item_ids()) == ["1", "1-dup"]
        assert sorted(phone.item_ids()) == ["1", "1-dup"]

    def test_delete_vs_edit_keeps_edit_under_merge(self):
        phone, network, session = paired()
        phone.put_item(item("1", "Bob"), now=1)
        session.run(now=2)
        phone.delete_item("1", now=3)
        network.put_item(item("1", "Bob", "999"), now=4)
        report = session.run(now=5)
        assert phone.item("1") is not None  # resurrection: edit wins
        assert network.item("1") is not None

    def test_unknown_policy_rejected(self):
        with pytest.raises(SyncError):
            Reconciler("coin-flip")

    def test_convergence_after_conflict(self):
        for policy in ("client-wins", "server-wins",
                       "last-writer-wins", "merge", "duplicate"):
            phone, network, _report = self.make_conflict(policy)
            assert phone.item_ids() == network.item_ids(), policy
            for item_id in phone.item_ids():
                assert phone.item(item_id).deep_equal(
                    network.item(item_id)
                ), policy


# ---------------------------------------------------------------------------
# shield-mediated sessions (gupcheck shield-egress-ip satellite): the
# network never pushes an item to the device that the device's
# RequestContext is not permitted to see.
# ---------------------------------------------------------------------------

class TestShieldedSync:
    OWNER = "arnaud"

    def shielded(self, *permitted_items):
        from repro.access.context import RequestContext
        from repro.access.infrastructure import (
            PolicyEnforcementPoint, PolicyRepository, PolicyRule,
        )

        phone = SyncEndpoint("phone")
        network = SyncEndpoint("network")
        repo = PolicyRepository()
        for item_id in permitted_items:
            repo.store(PolicyRule(
                self.OWNER,
                "/user[@id='%s']/address-book/item[@id='%s']"
                % (self.OWNER, item_id),
                "permit",
            ))
        pep = PolicyEnforcementPoint(repo)
        context = RequestContext("bob", relationship="co-worker")
        session = SyncSession(
            phone, network,
            owner=self.OWNER, pep=pep, context=context,
        )
        return phone, network, session

    def test_misconfigured_shield_rejected(self):
        from repro.access.infrastructure import (
            PolicyEnforcementPoint, PolicyRepository,
        )

        pep = PolicyEnforcementPoint(PolicyRepository())
        with pytest.raises(SyncError):
            SyncSession(
                SyncEndpoint("phone"), SyncEndpoint("network"), pep=pep
            )

    def test_slow_sync_withholds_denied_items(self):
        phone, network, session = self.shielded("1")
        network.put_item(item("1", "Bob"), now=1)
        network.put_item(item("2", "Carol", "555"), now=2)
        report = session.run(now=10)
        assert report.mode == "slow"
        assert phone.item_ids() == ["1"]  # "2" never left the network
        assert report.withheld == 1
        assert session.withheld == 1
        assert report.sent_to_client == 1

    def test_fast_sync_withholds_denied_items(self):
        phone, network, session = self.shielded("1")
        network.put_item(item("1", "Bob"), now=1)
        session.run(now=5)
        network.put_item(item("3", "Eve", "777"), now=6)
        report = session.run(now=10)
        assert report.mode == "fast"
        assert phone.item_ids() == ["1"]
        assert report.withheld == 1
        assert session.withheld == 1  # first run had nothing to deny

    def test_withheld_items_not_on_the_wire(self):
        # Same data, with and without the shield: the shielded slow
        # sync must serialize strictly fewer bytes because the denied
        # item's payload never enters a message.
        phone, network, session = self.shielded("1")
        network.put_item(item("1", "Bob"), now=1)
        network.put_item(item("2", "Carol", "555"), now=2)
        shielded_report = session.run(now=10)

        phone2 = SyncEndpoint("phone")
        network2 = SyncEndpoint("network")
        network2.put_item(item("1", "Bob"), now=1)
        network2.put_item(item("2", "Carol", "555"), now=2)
        open_report = SyncSession(phone2, network2).run(now=10)

        assert shielded_report.bytes < open_report.bytes

    def test_owner_device_sees_everything(self):
        from repro.access.context import RequestContext
        from repro.access.infrastructure import (
            PolicyEnforcementPoint, PolicyRepository,
        )

        phone = SyncEndpoint("phone")
        network = SyncEndpoint("network")
        network.put_item(item("1", "Bob"), now=1)
        network.put_item(item("2", "Carol"), now=2)
        session = SyncSession(
            phone, network,
            owner=self.OWNER,
            pep=PolicyEnforcementPoint(PolicyRepository()),
            context=RequestContext(self.OWNER, relationship="self"),
        )
        report = session.run(now=10)
        assert phone.item_ids() == ["1", "2"]
        assert report.withheld == 0

    def test_upload_direction_not_filtered(self):
        # The device's own additions always reach the network — the
        # shield guards egress *to* the device, not ingress from it.
        phone, network, session = self.shielded()  # default-deny all
        phone.put_item(item("9", "Mine"), now=1)
        report = session.run(now=10)
        assert network.item_ids() == ["9"]
        assert report.sent_to_server == 1
        assert phone.item_ids() == ["9"]

    def test_unshielded_session_unchanged(self):
        phone, network, session = paired()
        assert session.shielded is False
        network.put_item(item("1", "Bob"), now=1)
        report = session.run(now=5)
        assert report.withheld == 0
        assert phone.item_ids() == ["1"]
