"""Documentation hygiene: every module and every public class in the
library carries a docstring (deliverable (e): doc comments on every
public item)."""

import importlib
import inspect
import pkgutil

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        yield importlib.import_module(info.name)


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            module.__name__
            for module in iter_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue  # re-export
                if not (obj.__doc__ or "").strip():
                    undocumented.append(
                        "%s.%s" % (module.__name__, name)
                    )
        assert undocumented == []

    def test_every_public_function_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not inspect.isfunction(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                if not (obj.__doc__ or "").strip():
                    undocumented.append(
                        "%s.%s" % (module.__name__, name)
                    )
        assert undocumented == []
