"""Model-based random-walk test: a long random sequence of mixed
operations against the full converged world, with global invariants
checked after every step.

Invariants:
* every adapter's export stays GUP-schema valid;
* every registered component stays resolvable and fetchable by its
  owner;
* the privacy shield never leaks (a third party never gets a
  referral);
* coverage bookkeeping stays consistent (entry counts match the
  per-store index).
"""

import random

import pytest

from repro.access import RequestContext
from repro.errors import ReproError
from repro.pxml import GUP_SCHEMA, PNode
from repro.workloads import build_converged_world


COMPONENT_POOL = (
    "address-book", "presence", "calendar", "game-scores", "devices",
)


def random_book(rng):
    book = PNode("address-book")
    for index in range(rng.randint(0, 4)):
        item = book.append(
            PNode(
                "item",
                {
                    "id": "r%d" % index,
                    "type": rng.choice(["personal", "corporate"]),
                },
            )
        )
        item.append(PNode("name", text="Rand %d" % index))
    return book


class Walker:
    def __init__(self, seed):
        self.rng = random.Random(seed)
        self.world = build_converged_world(
            split_address_book=bool(seed % 2)
        )
        self.users = ["alice", "arnaud"]
        self.step_count = 0

    # -- operations ----------------------------------------------------------

    def op_owner_read(self):
        user = self.rng.choice(self.users)
        component = self.rng.choice(COMPONENT_POOL)
        ctx = RequestContext(user, relationship="self")
        path = "/user[@id='%s']/%s" % (user, component)
        try:
            fragment, _trace = self.world.executor.referral(
                "client-app", path, ctx
            )
        except ReproError:
            return
        if fragment is not None:
            assert GUP_SCHEMA.validate(fragment) == []

    def op_stranger_read(self):
        user = self.rng.choice(self.users)
        component = self.rng.choice(COMPONENT_POOL)
        ctx = RequestContext("mallory%d" % self.rng.randint(0, 9))
        path = "/user[@id='%s']/%s" % (user, component)
        from repro.errors import AccessDeniedError, NoCoverageError
        with pytest.raises((AccessDeniedError, NoCoverageError)):
            self.world.server.resolve(path, ctx)

    def op_provision_book(self):
        user = self.rng.choice(self.users)
        ctx = RequestContext(
            user, relationship="self", purpose="provision"
        )
        path = "/user[@id='%s']/address-book" % user
        try:
            self.world.executor.provision(
                "client-app", path, random_book(self.rng), ctx
            )
        except ReproError:
            pass

    def op_presence_flip(self):
        user = self.rng.choice(self.users)
        self.world.presence.set_status(
            user, self.rng.choice(["available", "busy", "away"])
        )

    def op_mobility(self):
        msisdn = self.rng.choice(["9085551111", "9085552222"])
        if self.rng.random() < 0.5:
            try:
                self.world.msc.handle_power_on(msisdn, "nj-1")
            except ReproError:
                pass
        else:
            self.world.hlr.detach(msisdn)

    def op_reachme(self):
        from repro.services import ReachMeService
        service = ReachMeService(
            self.world.server, self.world.executor
        )
        decision = service.decide(
            "alice", hour=self.rng.randint(0, 23),
            weekday=self.rng.randint(0, 6),
        )
        assert decision.targets  # some routing always exists

    def op_sync(self):
        from repro.services import RoamingProfileService
        service = RoamingProfileService(
            self.world.server, self.world.executor
        )
        report, _trace = service.synchronize_address_book(
            "alice", "gup.device.alice",
            now=float(self.step_count),
        )
        assert report.messages >= 3

    def op_cache_read(self):
        user = self.rng.choice(self.users)
        ctx = RequestContext(user, relationship="self")
        path = "/user[@id='%s']/presence" % user
        try:
            self.world.executor.cached(
                "client-app", path, ctx,
                now=float(self.step_count) * 50.0,
            )
        except ReproError:
            pass

    # -- invariants -------------------------------------------------------------

    def check_invariants(self):
        server = self.world.server
        # Coverage bookkeeping is internally consistent.
        total = server.coverage.entry_count()
        by_store = sum(
            len(
                [
                    1
                    for path in server.coverage.paths_for_user(user)
                    for s in server.coverage.stores_for(path)
                    if s == store
                ]
            )
            for store in server.coverage.stores()
            for user in server.coverage.users()
        )
        assert total == by_store
        # Every adapter export stays schema-valid.
        for adapter in server.adapters.values():
            for user in adapter.users():
                view = adapter.export_user(user)
                if view is not None:
                    assert GUP_SCHEMA.validate(view) == [], (
                        adapter.store_id, user,
                    )

    def run(self, steps):
        operations = [
            self.op_owner_read, self.op_stranger_read,
            self.op_provision_book, self.op_presence_flip,
            self.op_mobility, self.op_reachme, self.op_sync,
            self.op_cache_read,
        ]
        for self.step_count in range(steps):
            self.rng.choice(operations)()
            if self.step_count % 10 == 0:
                self.check_invariants()
        self.check_invariants()


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_random_walk(seed):
    Walker(seed).run(60)
