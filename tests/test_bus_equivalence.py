"""E20 equivalence and resumability properties.

Three angles on the same contract:

* **Equivalence** — the bus push path must produce the *same*
  (value, shield-decision) sequence as the per-update push path for
  the same change schedule, including schedules with a mid-stream
  policy revocation. Coalescing changes the wire cost, never the
  semantics.
* **Resumability** (Hypothesis) — for *any* interleaving of appends,
  listener crashes and restores, the replay cursors guarantee every
  record is delivered exactly once, in order: no loss, no duplicates.
* **Provisioner wiring** — enter-once storms ride the bus, so cache
  invalidation coalesces into per-wave sweeps instead of a
  per-update flood.
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access import RequestContext
from repro.bus import (
    CacheInvalidationListener, ChangeBus, ChangeLog, RecordingListener,
)
from repro.core import SubscriptionHub
from repro.core.cache import ComponentCache
from repro.provisioning import Provisioner
from repro.simnet import Network, Simulator
from repro.workloads import build_converged_world


PRESENCE = "/user[@id='arnaud']/presence"
STATUS = "/user/presence/status"

#: Change times sit ≥ 500 ms away from the revocation instants below,
#: so wave delay (50 ms) plus hop latency can never reorder a check
#: across a policy change on either path.
SCHEDULE = (
    (1_000, "busy"),
    (2_000, "away"),
    (3_000, "offline"),
    (4_000, "available"),
)


def family_ctx():
    return RequestContext("mom", relationship="family", purpose="query")


def make_hub():
    world = build_converged_world()
    hub = SubscriptionHub(
        world.sim, world.network, world.server, world.executor
    )
    return world, hub


def run_push(revoke_at=None):
    """The per-update push baseline: one forwarded (and re-checked)
    delivery per change."""
    world, hub = make_hub()
    hub.start_push(
        "client-app", PRESENCE, STATUS, family_ctx(),
        watch_hook=lambda cb: world.presence.watch(
            "arnaud", lambda u, s, n: cb(s)
        ),
        store_node="gup.spcs.com",
    )
    _drive(world, hub, revoke_at)
    values = [d.value for d in hub.deliveries_for("push")]
    return values, hub.push_withheld


def run_bus(revoke_at=None):
    """The same schedule over the change bus."""
    world, hub = make_hub()
    hub.start_push_bus("client-app", PRESENCE, STATUS, family_ctx())
    world.presence.watch(
        "arnaud", lambda u, s, n: hub.note_change(STATUS, s, user_id=u)
    )
    _drive(world, hub, revoke_at)
    values = [d.value for d in hub.deliveries_for("bus")]
    return values, hub.push_withheld


def _drive(world, hub, revoke_at):
    for t, status in SCHEDULE:
        world.sim.schedule(
            t, lambda s=status: world.presence.set_status("arnaud", s)
        )
    if revoke_at is not None:
        world.sim.schedule(
            revoke_at,
            lambda: world.server.revoke_policy(
                "arnaud", "arnaud-boss-family-presence"
            ),
        )
    world.sim.run(until=20_000)


class TestPushEquivalence:
    def test_values_equivalent_without_revocation(self):
        push_values, push_withheld = run_push()
        bus_values, bus_withheld = run_bus()
        assert push_values == [s for _, s in SCHEDULE]
        assert bus_values == push_values
        assert push_withheld == bus_withheld == 0

    @pytest.mark.parametrize("revoke_at", [1_500, 2_500, 3_500])
    def test_decision_sequence_equivalent_under_revocation(
        self, revoke_at
    ):
        # Changes arrive in schedule order on both paths and each path
        # delivers in order, so equal value sequences plus equal
        # withheld counts pin the *entire* (value, decision) sequence.
        push_values, push_withheld = run_push(revoke_at)
        bus_values, bus_withheld = run_bus(revoke_at)
        permitted = sum(1 for t, _ in SCHEDULE if t < revoke_at)
        assert push_values == [s for _, s in SCHEDULE[:permitted]]
        assert bus_values == push_values
        assert push_withheld == len(SCHEDULE) - permitted
        assert bus_withheld == push_withheld

    def test_bus_loses_nothing_across_crash(self):
        # The bus's edge over per-update push: a crash window drops no
        # changes — the cursor holds until the node is back, then one
        # wave replays the whole backlog in order.
        world, hub = make_hub()
        hub.start_push_bus("client-app", PRESENCE, STATUS, family_ctx())
        world.presence.watch(
            "arnaud",
            lambda u, s, n: hub.note_change(STATUS, s, user_id=u),
        )
        for t, status in SCHEDULE:
            world.sim.schedule(
                t,
                lambda s=status: world.presence.set_status("arnaud", s),
            )
        world.sim.schedule(1_500, lambda: world.network.fail("client-app"))
        world.sim.run(until=6_000)
        assert [d.value for d in hub.deliveries_for("bus")] == ["busy"]
        world.network.restore("client-app")
        assert hub.bus.kick()
        world.sim.run(until=12_000)
        assert [d.value for d in hub.deliveries_for("bus")] == [
            s for _, s in SCHEDULE
        ]


def _fresh_bus():
    sim = Simulator()
    network = Network()
    network.add_node("gupster", region="core")
    network.add_node("client-1", region="internet")
    bus = ChangeBus(sim, network, "gupster")
    listener = RecordingListener("rec", node="client-1")
    bus.attach(listener)
    return sim, network, bus, listener


class TestCursorProperties:
    @settings(deadline=None, max_examples=60)
    @given(
        ops=st.lists(
            st.sampled_from(["append", "crash", "restore"]),
            min_size=1, max_size=25,
        )
    )
    def test_no_loss_no_dup_across_any_crash_schedule(self, ops):
        # Property: whatever the interleaving of appends, crashes and
        # restores, once the listener is finally up and kicked it has
        # received every appended record exactly once, in seq order.
        sim, network, bus, listener = _fresh_bus()
        appended = 0
        down = False
        for op in ops:
            if op == "append":
                appended += 1
                bus.append("/p", "v%d" % appended, user_id="u")
            elif op == "crash" and not down:
                network.fail("client-1")
                down = True
            elif op == "restore" and down:
                network.restore("client-1")
                down = False
                bus.kick()
            sim.run(until=sim.now + 500)
        if down:
            network.restore("client-1")
        bus.kick()
        sim.run(until=sim.now + 2_000)
        seqs = [record.seq for record in listener.received]
        assert seqs == list(range(1, appended + 1))
        values = [record.value for record in listener.received]
        assert values == ["v%d" % i for i in range(1, appended + 1)]

    @settings(deadline=None, max_examples=80)
    @given(n=st.integers(1, 40), data=st.data())
    def test_log_replay_is_exact_despite_compaction(self, n, data):
        # Property: since(cursor) returns exactly seqs cursor+1..last,
        # for any cursor and any compaction at or below it.
        log = ChangeLog("s")
        for i in range(1, n + 1):
            log.append(float(i), "/p", "v%d" % i)
        cursor = data.draw(st.integers(0, n))
        log.compact(data.draw(st.integers(0, cursor)))
        assert [r.seq for r in log.since(cursor)] == list(
            range(cursor + 1, n + 1)
        )
        assert log.backlog(cursor) == n - cursor


class TestProvisionerBus:
    def test_enter_once_rides_the_bus(self):
        world = build_converged_world()
        bus = ChangeBus(world.sim, world.network, "gupster")
        provisioner = Provisioner(
            world.server, world.executor, bus=bus
        )
        recorder = RecordingListener("rec", node="client-app")
        bus.attach(recorder)
        provisioner.enter_once(
            "client-app", "arnaud", "presence", [{"status": "busy"}]
        )
        world.sim.run(until=2_000)
        assert bus.appends == 1
        assert len(recorder.received) == 1
        record = recorder.received[0]
        assert record.path == "/user[@id='arnaud']/presence"
        assert record.user_id == "arnaud"

    def test_enter_once_storm_coalesces_invalidation(self):
        # An enter-once burst at t=0 lands in ONE wave: one cache
        # sweep over the distinct changed paths, not one invalidation
        # per update.
        world = build_converged_world()
        bus = ChangeBus(world.sim, world.network, "gupster")
        provisioner = Provisioner(
            world.server, world.executor, bus=bus
        )
        cache = ComponentCache(registry=world.network.metrics)
        sweeper = CacheInvalidationListener("cache-sweep", cache)
        bus.attach(sweeper)
        entries = [
            {
                "@id": "n1", "@type": "personal", "name": "Nadia",
                "number": "908-555-7777", "number.@type": "cell",
            }
        ]
        provisioner.enter_once(
            "client-app", "arnaud", "address-book", entries
        )
        provisioner.enter_once(
            "client-app", "arnaud", "presence", [{"status": "busy"}]
        )
        provisioner.enter_once(
            "client-app", "alice", "presence", [{"status": "away"}]
        )
        world.sim.run(until=2_000)
        assert bus.appends == 3
        assert bus.waves == 1
        assert sweeper.sweeps == 1
        assert sweeper.invalidated_paths == 3
