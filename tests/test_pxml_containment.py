"""Unit tests for containment/overlap over the XPath fragment (E10 logic)."""

import pytest

from repro.pxml import (
    node_contains,
    parse_path,
    step_contains,
    steps_compatible,
    subtree_covers,
    subtree_overlaps,
)


def step(text):
    return parse_path("/" + text).steps[0]


class TestStepContains:
    def test_equal_steps(self):
        assert step_contains(step("a"), step("a"))

    def test_different_names(self):
        assert not step_contains(step("a"), step("b"))

    def test_wildcard_contains_named(self):
        assert step_contains(step("*"), step("a"))
        assert not step_contains(step("a"), step("*"))

    def test_fewer_predicates_contains_more(self):
        assert step_contains(step("a"), step("a[@t='1']"))
        assert not step_contains(step("a[@t='1']"), step("a"))

    def test_conflicting_predicate_values(self):
        assert not step_contains(step("a[@t='1']"), step("a[@t='2']"))

    def test_wildcard_with_predicate(self):
        assert step_contains(step("*[@t='1']"), step("a[@t='1']"))
        assert not step_contains(step("*[@t='1']"), step("a"))


class TestStepsCompatible:
    def test_same_name(self):
        assert steps_compatible(step("a"), step("a[@x='1']"))

    def test_wildcard_compatible_with_anything(self):
        assert steps_compatible(step("*"), step("a"))
        assert steps_compatible(step("a"), step("*[@x='1']"))

    def test_different_names_incompatible(self):
        assert not steps_compatible(step("a"), step("b"))

    def test_conflicting_predicates_incompatible(self):
        assert not steps_compatible(step("a[@x='1']"), step("a[@x='2']"))

    def test_disjoint_predicates_compatible(self):
        assert steps_compatible(step("a[@x='1']"), step("a[@y='2']"))


class TestNodeContains:
    def test_reflexive(self):
        p = "/user[@id='a']/address-book"
        assert node_contains(p, p)

    def test_predicate_widening(self):
        assert node_contains(
            "/user/address-book", "/user[@id='a']/address-book"
        )
        assert not node_contains(
            "/user[@id='a']/address-book", "/user/address-book"
        )

    def test_different_depths_not_node_contained(self):
        assert not node_contains("/user", "/user/address-book")

    def test_attribute_selector_must_match(self):
        assert node_contains("/a/b/@x", "/a/b/@x")
        assert not node_contains("/a/b/@x", "/a/b/@y")
        assert not node_contains("/a/b", "/a/b/@x")


class TestSubtreeCovers:
    def test_component_covers_itself(self):
        assert subtree_covers(
            "/user[@id='a']/presence", "/user[@id='a']/presence"
        )

    def test_component_covers_descendants(self):
        assert subtree_covers(
            "/user[@id='a']/address-book",
            "/user[@id='a']/address-book/item[@type='personal']",
        )

    def test_component_covers_attributes_below(self):
        assert subtree_covers(
            "/user[@id='a']/devices",
            "/user[@id='a']/devices/device/@carrier",
        )

    def test_descendant_does_not_cover_ancestor(self):
        assert not subtree_covers(
            "/user[@id='a']/address-book/item",
            "/user[@id='a']/address-book",
        )

    def test_narrow_registration_does_not_cover_wide_request(self):
        # The Figure 9 split: a store holding only personal items cannot
        # alone answer a request for the whole book.
        assert not subtree_covers(
            "/user[@id='a']/address-book/item[@type='personal']",
            "/user[@id='a']/address-book",
        )

    def test_other_user_not_covered(self):
        assert not subtree_covers(
            "/user[@id='a']/presence", "/user[@id='b']/presence"
        )

    def test_wildcard_coverage(self):
        assert subtree_covers("/user/*", "/user/presence/status")

    def test_attribute_coverage_only_covers_that_attribute(self):
        assert subtree_covers("/a/b/@x", "/a/b/@x")
        assert not subtree_covers("/a/b/@x", "/a/b")
        assert not subtree_covers("/a/b/@x", "/a/b/c")


class TestSubtreeOverlaps:
    def test_symmetric_split_book(self):
        whole = "/user[@id='a']/address-book"
        part = "/user[@id='a']/address-book/item[@type='personal']"
        assert subtree_overlaps(whole, part)
        assert subtree_overlaps(part, whole)

    def test_sibling_components_disjoint(self):
        assert not subtree_overlaps(
            "/user[@id='a']/presence", "/user[@id='a']/calendar"
        )

    def test_different_users_disjoint(self):
        assert not subtree_overlaps(
            "/user[@id='a']/presence", "/user[@id='b']/presence"
        )

    def test_split_types_disjoint(self):
        assert not subtree_overlaps(
            "/user[@id='a']/address-book/item[@type='personal']",
            "/user[@id='a']/address-book/item[@type='corporate']",
        )

    def test_wildcard_overlaps(self):
        assert subtree_overlaps("/user/*", "/user/presence")

    def test_attribute_vs_deeper_subtree(self):
        # /a/b/@x covers one attribute only; it cannot reach /a/b/c.
        assert not subtree_overlaps("/a/b/@x", "/a/b/c")

    def test_attribute_vs_same_element(self):
        assert subtree_overlaps("/a/b/@x", "/a/b")

    def test_attribute_vs_attribute(self):
        assert subtree_overlaps("/a/b/@x", "/a/b/@x")
        assert not subtree_overlaps("/a/b/@x", "/a/b/@y")


class TestContainmentImpliesOverlap:
    @pytest.mark.parametrize(
        "outer,inner",
        [
            ("/user/address-book", "/user[@id='a']/address-book"),
            ("/user/*", "/user/presence"),
            ("/a", "/a/b/c"),
        ],
    )
    def test_coverage_implies_overlap(self, outer, inner):
        assert subtree_covers(outer, inner)
        assert subtree_overlaps(outer, inner)
