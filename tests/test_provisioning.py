"""Unit tests for form generation and enter-once provisioning (E11)."""

import pytest

from repro.errors import ValidationError
from repro.pxml import GUP_SCHEMA, evaluate_values
from repro.access import RequestContext
from repro.provisioning import Provisioner, generate_form
from repro.workloads import build_converged_world


class TestFormGeneration:
    def test_address_book_form_has_expected_fields(self):
        form = generate_form(GUP_SCHEMA, "address-book")
        assert form.entry_tag == "item"
        keys = {f.key for f in form.fields}
        assert "@id" in keys
        assert "@type" in keys
        assert "name" in keys
        assert "number" in keys
        assert "number.@type" in keys

    def test_required_and_options_carried_over(self):
        form = generate_form(GUP_SCHEMA, "address-book")
        id_field = form.field("@id")
        assert id_field.required
        type_field = form.field("@type")
        assert set(type_field.options) == {"personal", "corporate"}

    def test_scalar_component_form(self):
        form = generate_form(GUP_SCHEMA, "presence")
        assert form.entry_tag is None
        status = form.field("status")
        assert status is not None and status.required

    def test_non_component_rejected(self):
        with pytest.raises(ValidationError):
            generate_form(GUP_SCHEMA, "item")
        with pytest.raises(ValidationError):
            generate_form(GUP_SCHEMA, "no-such-thing")

    def test_validate_entry_reports_problems(self):
        form = generate_form(GUP_SCHEMA, "address-book")
        problems = form.validate_entry(
            {"@type": "alien", "number": "12", "bogus": "x"}
        )
        text = " ".join(problems)
        assert "@id is required" in text
        assert "@type must be one of" in text
        assert "not a valid phone" in text
        assert "unknown field" in text

    def test_fill_builds_valid_fragment(self):
        form = generate_form(GUP_SCHEMA, "address-book")
        fragment = form.fill(
            [
                {
                    "@id": "1", "@type": "personal", "name": "Bob",
                    "number": "908-582-1111", "number.@type": "cell",
                },
            ]
        )
        assert fragment.tag == "address-book"
        item = fragment.children[0]
        assert item.attrs == {"id": "1", "type": "personal"}
        assert item.child("number").attrs["type"] == "cell"

    def test_fill_rejects_bad_input_listing_entries(self):
        form = generate_form(GUP_SCHEMA, "address-book")
        with pytest.raises(ValidationError) as excinfo:
            form.fill([{"@id": "1"}, {"@type": "alien"}])
        assert "entry 1" in str(excinfo.value)

    def test_presence_fill(self):
        form = generate_form(GUP_SCHEMA, "presence")
        fragment = form.fill([{"status": "busy"}])
        assert fragment.child("status").text == "busy"


class TestEnterOnce:
    def setup_method(self):
        self.world = build_converged_world()
        self.provisioner = Provisioner(
            self.world.server, self.world.executor
        )
        self.entries = [
            {
                "@id": "n1", "@type": "personal", "name": "Nadia",
                "number": "908-555-7777", "number.@type": "cell",
            }
        ]

    def test_enter_once_updates_all_replicas(self):
        report = self.provisioner.enter_once(
            "client-app", "arnaud", "address-book", self.entries
        )
        assert report.user_actions == 1
        assert sorted(report.stores_updated) == [
            "gup.spcs.com", "gup.yahoo.com",
        ]
        for portal in (self.world.yahoo, self.world.spcs_portal):
            names = [c.display_name for c in portal.contacts("arnaud")]
            assert names == ["Nadia"]

    def test_enter_once_schema_gate(self):
        with pytest.raises(ValidationError):
            self.provisioner.enter_once(
                "client-app", "arnaud", "address-book",
                [{"@id": "n1", "number": "12"}],  # invalid phone
            )

    def test_manual_provisioning_costs_per_store(self):
        report = self.provisioner.provision_manually(
            "client-app", "arnaud", "address-book", self.entries,
            store_ids=["gup.yahoo.com", "gup.spcs.com"],
        )
        assert report.user_actions == 2
        assert self.provisioner.replica_divergence(
            "arnaud", "address-book",
            ["gup.yahoo.com", "gup.spcs.com"],
        ) == 0

    def test_forgotten_store_diverges(self):
        self.provisioner.provision_manually(
            "client-app", "arnaud", "address-book", self.entries,
            store_ids=["gup.yahoo.com", "gup.spcs.com"],
            forget=["gup.spcs.com"],
        )
        assert self.provisioner.replica_divergence(
            "arnaud", "address-book",
            ["gup.yahoo.com", "gup.spcs.com"],
        ) == 1

    def test_enter_once_after_divergence_reconverges(self):
        self.provisioner.provision_manually(
            "client-app", "arnaud", "address-book", self.entries,
            store_ids=["gup.yahoo.com"],
        )
        self.provisioner.enter_once(
            "client-app", "arnaud", "address-book", self.entries
        )
        assert self.provisioner.replica_divergence(
            "arnaud", "address-book",
            ["gup.yahoo.com", "gup.spcs.com"],
        ) == 0

    def test_presence_enter_once(self):
        self.provisioner.enter_once(
            "client-app", "arnaud", "presence",
            [{"status": "away"}],
        )
        assert self.world.presence.status("arnaud") == "away"
