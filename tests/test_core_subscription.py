"""Unit tests for poll- vs push-based subscriptions (E12 machinery)."""

import pytest

from repro.errors import AccessDeniedError
from repro.access import RequestContext
from repro.core import SubscriptionHub
from repro.workloads import build_converged_world


PRESENCE = "/user[@id='arnaud']/presence"
STATUS = "/user/presence/status"


def make_hub():
    world = build_converged_world()
    hub = SubscriptionHub(
        world.sim, world.network, world.server, world.executor
    )
    return world, hub


def family_ctx(purpose="query"):
    return RequestContext("mom", relationship="family", purpose=purpose)


class TestPolling:
    def test_poll_detects_change(self):
        world, hub = make_hub()
        hub.start_polling(
            "client-app", PRESENCE, STATUS, family_ctx(),
            interval_ms=1000, until=10_000,
        )

        def change():
            hub.note_change(STATUS, "busy")
            world.presence.set_status("arnaud", "busy")

        world.sim.schedule(3_500, change)
        world.sim.run(until=10_000)
        deliveries = hub.deliveries_for("poll")
        assert len(deliveries) == 1
        assert deliveries[0].value == "busy"
        # Change at 3500 is seen by the 4000ms poll at the earliest.
        assert deliveries[0].latency_ms >= 500

    def test_every_poll_pays_a_policy_check(self):
        world, hub = make_hub()
        before = world.server.pep.enforced
        hub.start_polling(
            "client-app", PRESENCE, STATUS, family_ctx(),
            interval_ms=1000, until=5_000,
        )
        world.sim.run(until=5_000)
        assert world.server.pep.enforced - before == 5

    def test_denied_context_delivers_nothing(self):
        world, hub = make_hub()
        hub.start_polling(
            "client-app", PRESENCE, STATUS,
            RequestContext("telemarketer"),
            interval_ms=1000, until=5_000,
        )
        world.sim.schedule(
            2_500,
            lambda: world.presence.set_status("arnaud", "busy"),
        )
        world.sim.run(until=5_000)
        assert hub.deliveries == []


class TestPush:
    def test_push_delivers_fast(self):
        world, hub = make_hub()
        hub.start_push(
            "client-app", PRESENCE, STATUS, family_ctx(),
            watch_hook=lambda cb: world.presence.watch(
                "arnaud", lambda u, s, n: cb(s)
            ),
            store_node="gup.spcs.com",
        )
        world.sim.schedule(
            3_500, lambda: world.presence.set_status("arnaud", "busy")
        )
        world.sim.run(until=10_000)
        deliveries = hub.deliveries_for("push")
        assert len(deliveries) == 1
        # Two hops, not half a polling interval.
        assert deliveries[0].latency_ms < 200

    def test_push_single_policy_check(self):
        world, hub = make_hub()
        before = world.server.pep.enforced
        hub.start_push(
            "client-app", PRESENCE, STATUS, family_ctx(),
            watch_hook=lambda cb: world.presence.watch(
                "arnaud", lambda u, s, n: cb(s)
            ),
            store_node="gup.spcs.com",
        )
        for t in (1000, 2000, 3000):
            world.sim.schedule(
                t,
                lambda t=t: world.presence.set_status(
                    "arnaud", "busy" if t % 2000 else "away"
                ),
            )
        world.sim.run(until=5_000)
        assert world.server.pep.enforced - before == 1
        assert len(hub.deliveries_for("push")) >= 2

    def test_push_subscription_denied(self):
        world, hub = make_hub()
        with pytest.raises(AccessDeniedError):
            hub.start_push(
                "client-app", PRESENCE, STATUS,
                RequestContext("telemarketer"),
                watch_hook=lambda cb: None,
                store_node="gup.spcs.com",
            )

    def test_mean_latency_nan_when_empty(self):
        import math
        _world, hub = make_hub()
        assert math.isnan(hub.mean_latency("push"))
