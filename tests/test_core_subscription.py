"""Unit tests for poll- vs push-based subscriptions (E12 machinery)."""

import pytest

from repro.errors import AccessDeniedError
from repro.access import RequestContext
from repro.core import SubscriptionHub
from repro.workloads import build_converged_world


PRESENCE = "/user[@id='arnaud']/presence"
STATUS = "/user/presence/status"


def make_hub():
    world = build_converged_world()
    hub = SubscriptionHub(
        world.sim, world.network, world.server, world.executor
    )
    return world, hub


def family_ctx(purpose="query"):
    return RequestContext("mom", relationship="family", purpose=purpose)


class TestPolling:
    def test_poll_detects_change(self):
        world, hub = make_hub()
        hub.start_polling(
            "client-app", PRESENCE, STATUS, family_ctx(),
            interval_ms=1000, until=10_000,
        )

        def change():
            hub.note_change(STATUS, "busy")
            world.presence.set_status("arnaud", "busy")

        world.sim.schedule(3_500, change)
        world.sim.run(until=10_000)
        deliveries = hub.deliveries_for("poll")
        assert len(deliveries) == 1
        assert deliveries[0].value == "busy"
        # Change at 3500 is seen by the 4000ms poll at the earliest.
        assert deliveries[0].latency_ms >= 500

    def test_every_poll_pays_a_policy_check(self):
        world, hub = make_hub()
        before = world.server.pep.enforced
        hub.start_polling(
            "client-app", PRESENCE, STATUS, family_ctx(),
            interval_ms=1000, until=5_000,
        )
        world.sim.run(until=5_000)
        assert world.server.pep.enforced - before == 5

    def test_denied_context_delivers_nothing(self):
        world, hub = make_hub()
        hub.start_polling(
            "client-app", PRESENCE, STATUS,
            RequestContext("telemarketer"),
            interval_ms=1000, until=5_000,
        )
        world.sim.schedule(
            2_500,
            lambda: world.presence.set_status("arnaud", "busy"),
        )
        world.sim.run(until=5_000)
        assert hub.deliveries == []

    def test_denied_poller_cancels_itself(self):
        # A denial is not transient: re-paying the fetch path every
        # tick for a guaranteed denial buys nothing, so the first
        # denied poll cancels the recurrence (and is counted).
        world, hub = make_hub()
        before = world.server.pep.enforced
        hub.start_polling(
            "client-app", PRESENCE, STATUS,
            RequestContext("telemarketer"),
            interval_ms=1000, until=10_000,
        )
        world.sim.run(until=10_000)
        assert hub.poll_denied == 1
        assert world.server.pep.enforced - before == 1

    def test_unlogged_change_has_unknown_latency(self):
        import math
        # The store mutates without note_change: the poller still
        # delivers the value, but the change instant is unknown — the
        # old code fabricated "changed just now" and recorded a
        # near-zero latency.
        world, hub = make_hub()
        hub.start_polling(
            "client-app", PRESENCE, STATUS, family_ctx(),
            interval_ms=1000, until=10_000,
        )
        world.sim.schedule(
            3_500, lambda: world.presence.set_status("arnaud", "busy")
        )
        world.sim.run(until=10_000)
        deliveries = hub.deliveries_for("poll")
        assert len(deliveries) == 1
        assert deliveries[0].changed_at is None
        assert math.isnan(deliveries[0].latency_ms)
        assert hub.latency_unknown == 1
        # The unknown-latency delivery must not poison the mean.
        assert math.isnan(hub.mean_latency("poll"))


class TestPush:
    def test_push_delivers_fast(self):
        world, hub = make_hub()
        hub.start_push(
            "client-app", PRESENCE, STATUS, family_ctx(),
            watch_hook=lambda cb: world.presence.watch(
                "arnaud", lambda u, s, n: cb(s)
            ),
            store_node="gup.spcs.com",
        )
        world.sim.schedule(
            3_500, lambda: world.presence.set_status("arnaud", "busy")
        )
        world.sim.run(until=10_000)
        deliveries = hub.deliveries_for("push")
        assert len(deliveries) == 1
        # Two hops, not half a polling interval.
        assert deliveries[0].latency_ms < 200

    def test_push_checks_shield_per_delivery(self):
        # One subscribe-time check plus one re-check per forwarded
        # change — still far fewer than polling's one per tick, but
        # never a stale subscribe-time decision riding forever.
        world, hub = make_hub()
        before = world.server.pep.enforced
        hub.start_push(
            "client-app", PRESENCE, STATUS, family_ctx(),
            watch_hook=lambda cb: world.presence.watch(
                "arnaud", lambda u, s, n: cb(s)
            ),
            store_node="gup.spcs.com",
        )
        for t in (1000, 2000, 3000):
            world.sim.schedule(
                t,
                lambda t=t: world.presence.set_status(
                    "arnaud", "busy" if t % 2000 else "away"
                ),
            )
        world.sim.run(until=5_000)
        delivered = len(hub.deliveries_for("push"))
        assert delivered >= 2
        assert world.server.pep.enforced - before == 1 + delivered
        assert hub.push_withheld == 0

    def test_revocation_stops_push(self):
        # The headline E20 regression: before the per-delivery
        # re-check, a policy revoked after subscription kept
        # delivering forever.
        world, hub = make_hub()
        hub.start_push(
            "client-app", PRESENCE, STATUS, family_ctx(),
            watch_hook=lambda cb: world.presence.watch(
                "arnaud", lambda u, s, n: cb(s)
            ),
            store_node="gup.spcs.com",
        )
        world.sim.schedule(
            1_000, lambda: world.presence.set_status("arnaud", "busy")
        )
        world.sim.schedule(
            2_000,
            lambda: world.server.revoke_policy(
                "arnaud", "arnaud-boss-family-presence"
            ),
        )
        world.sim.schedule(
            3_000, lambda: world.presence.set_status("arnaud", "away")
        )
        world.sim.run(until=5_000)
        deliveries = hub.deliveries_for("push")
        assert [d.value for d in deliveries] == ["busy"]
        assert hub.push_withheld == 1

    def test_push_subscription_denied(self):
        world, hub = make_hub()
        with pytest.raises(AccessDeniedError):
            hub.start_push(
                "client-app", PRESENCE, STATUS,
                RequestContext("telemarketer"),
                watch_hook=lambda cb: None,
                store_node="gup.spcs.com",
            )

    def test_mean_latency_nan_when_empty(self):
        import math
        _world, hub = make_hub()
        assert math.isnan(hub.mean_latency("push"))


class TestBusPush:
    def watch(self, world, hub):
        # Bridge the native presence notification onto the bus, the
        # way an E20 store publishes its writes.
        world.presence.watch(
            "arnaud",
            lambda u, s, n: hub.note_change(STATUS, s, user_id=u),
        )

    def test_bus_push_delivers_coalesced(self):
        world, hub = make_hub()
        hub.start_push_bus("client-app", PRESENCE, STATUS, family_ctx())
        self.watch(world, hub)
        for t, status in ((1_000, "busy"), (1_010, "away")):
            world.sim.schedule(
                t,
                lambda s=status: world.presence.set_status("arnaud", s),
            )
        world.sim.run(until=5_000)
        deliveries = hub.deliveries_for("bus")
        # Both changes land in ONE wave: one round trip, two deltas.
        assert [d.value for d in deliveries] == ["busy", "away"]
        assert hub.bus.waves == 1
        assert hub.bus.messages == 2
        for delivery in deliveries:
            assert delivery.changed_at is not None
            assert delivery.latency_ms > 0

    def test_bus_push_shield_checked_per_delivery(self):
        world, hub = make_hub()
        before = world.server.pep.enforced
        hub.start_push_bus("client-app", PRESENCE, STATUS, family_ctx())
        self.watch(world, hub)
        for t, status in (
            (1_000, "busy"), (1_010, "away"), (2_000, "offline"),
        ):
            world.sim.schedule(
                t,
                lambda s=status: world.presence.set_status("arnaud", s),
            )
        world.sim.run(until=10_000)
        assert len(hub.deliveries_for("bus")) == 3
        # 1 subscribe + one re-check per delivered delta; the wave
        # memo only collapses identical (path, requester) pairs, and
        # every delta here is a distinct delivery instant or wave.
        assert world.server.pep.enforced - before >= 1 + 2
        assert world.server.pep.enforced - before <= 1 + 3

    def test_bus_revocation_stops_next_wave(self):
        world, hub = make_hub()
        hub.start_push_bus("client-app", PRESENCE, STATUS, family_ctx())
        self.watch(world, hub)
        world.sim.schedule(
            1_000, lambda: world.presence.set_status("arnaud", "busy")
        )
        world.sim.schedule(
            2_000,
            lambda: world.server.revoke_policy(
                "arnaud", "arnaud-boss-family-presence"
            ),
        )
        world.sim.schedule(
            3_000, lambda: world.presence.set_status("arnaud", "away")
        )
        world.sim.run(until=10_000)
        assert [d.value for d in hub.deliveries_for("bus")] == ["busy"]
        assert hub.push_withheld == 1
        # The cursor advanced past the withheld record: it is not
        # retried on later waves.
        world.sim.schedule(
            0, lambda: world.presence.set_status("arnaud", "available")
        )
        world.sim.run(until=20_000)
        assert hub.push_withheld == 2

    def test_bus_subscription_denied(self):
        _world, hub = make_hub()
        with pytest.raises(AccessDeniedError):
            hub.start_push_bus(
                "client-app", PRESENCE, STATUS,
                RequestContext("telemarketer"),
            )

    def test_bus_subscriber_crash_resumes_from_cursor(self):
        world, hub = make_hub()
        hub.start_push_bus("client-app", PRESENCE, STATUS, family_ctx())
        self.watch(world, hub)
        world.sim.schedule(
            1_000, lambda: world.presence.set_status("arnaud", "busy")
        )
        world.sim.schedule(
            2_000, lambda: world.network.fail("client-app")
        )
        world.sim.schedule(
            3_000, lambda: world.presence.set_status("arnaud", "away")
        )
        world.sim.schedule(
            4_000, lambda: world.presence.set_status("arnaud", "offline")
        )
        world.sim.run(until=6_000)
        assert [d.value for d in hub.deliveries_for("bus")] == ["busy"]
        assert hub.bus.delivery_failures >= 1
        world.network.restore("client-app")
        assert hub.bus.kick()
        world.sim.run(until=10_000)
        # The backlog replays whole: nothing lost, nothing repeated.
        assert [d.value for d in hub.deliveries_for("bus")] == [
            "busy", "away", "offline",
        ]
