"""Regression tests for the accounting bugs the E18 audit flushed out,
plus the Trace behaviours the audit pinned (log merging, snapshot
keys)."""

import pytest

from repro.core import ComponentCache, EndpointHealth
from repro.pxml import PNode
from repro.simnet import Network

PATH = "/user[@id='u1']/presence"
OTHER = "/user[@id='u2']/presence"
THIRD = "/user[@id='u3']/presence"
#: One implicit requester for the counter-mechanics tests, made
#: explicit for cache-key-scope.
SCOPE = "audit.test|self"


def fragment(text="here"):
    node = PNode("presence")
    node.append(PNode("status", text=text))
    return node


def assert_healthy(cache):
    assert cache.check_invariants() == []


# -- satellite 2: cache stale-grace counter drift ---------------------------

def test_refreshing_a_within_grace_corpse_counts_an_expiration():
    cache = ComponentCache(
        capacity=8, default_ttl_ms=100.0, stale_grace_ms=1_000.0
    )
    cache.put(PATH, fragment(), now=0.0, scope=SCOPE)
    # Past TTL, within grace: a miss, but the corpse is retained.
    assert cache.get(PATH, now=500.0, scope=SCOPE) is None
    assert len(cache) == 1
    # The refetch lands: the corpse's terminal disposition is an
    # expiration (pre-fix this was silently uncounted).
    cache.put(PATH, fragment("back"), now=500.0, scope=SCOPE)
    assert cache.expirations == 1
    assert cache.replacements == 0
    assert_healthy(cache)


def test_lru_sweep_landing_on_a_corpse_is_an_expiration_not_eviction():
    cache = ComponentCache(
        capacity=2, default_ttl_ms=100.0, stale_grace_ms=1_000.0
    )
    cache.put(PATH, fragment(), now=0.0, scope=SCOPE)
    cache.put(OTHER, fragment(), now=200.0, scope=SCOPE)  # PATH now expired
    cache.put(THIRD, fragment(), now=200.0, scope=SCOPE)  # sweep drops the corpse
    assert cache.expirations == 1
    assert cache.evictions == 0  # capacity pressure was NOT the story
    assert_healthy(cache)


def test_probed_corpse_is_lru_touched_so_serve_stale_can_find_it():
    cache = ComponentCache(
        capacity=2, default_ttl_ms=100.0, stale_grace_ms=1_000.0
    )
    cache.put(PATH, fragment("precious"), now=0.0, scope=SCOPE)
    cache.put(OTHER, fragment(), now=0.0, scope=SCOPE)
    # The failed get() is the refetch attempt; pre-fix the corpse
    # stayed at the LRU front and the next insert evicted exactly the
    # entry serve-stale needed.
    assert cache.get(PATH, now=150.0, scope=SCOPE) is None
    cache.put(THIRD, fragment(), now=150.0, scope=SCOPE)
    served = cache.get_stale(PATH, now=150.0, scope=SCOPE)
    assert served is not None
    assert cache.stale_serves == 1
    assert_healthy(cache)


def test_get_stale_touches_the_corpse_it_serves():
    cache = ComponentCache(
        capacity=2, default_ttl_ms=100.0, stale_grace_ms=1_000.0
    )
    cache.put(PATH, fragment(), now=0.0, scope=SCOPE)
    cache.put(OTHER, fragment(), now=120.0, scope=SCOPE)
    assert cache.get_stale(PATH, now=150.0, scope=SCOPE) is not None
    cache.put(THIRD, fragment(), now=150.0, scope=SCOPE)  # sweep takes OTHER
    assert cache.get_stale(PATH, now=150.0, scope=SCOPE) is not None
    assert_healthy(cache)


def test_invariants_over_a_mixed_workload():
    cache = ComponentCache(
        capacity=4, default_ttl_ms=100.0, stale_grace_ms=200.0
    )
    paths = [PATH, OTHER, THIRD,
             "/user[@id='u4']/presence", "/user[@id='u5']/presence"]
    now = 0.0
    for step in range(60):
        path = paths[step % len(paths)]
        if cache.get(path, now=now, scope=SCOPE) is None:
            if cache.get_stale(path, now=now, scope=SCOPE) is None:
                cache.put(path, fragment(), now=now, scope=SCOPE)
        if step % 17 == 0:
            cache.invalidate(paths[(step + 1) % len(paths)])
        if step % 23 == 0:
            cache.put(path, fragment("again"), now=now, scope=SCOPE)
        now += 60.0
    cache.clear()
    assert_healthy(cache)
    snapshot = cache.counter_snapshot()
    assert snapshot["size"] == 0
    assert snapshot["gets"] == snapshot["hits"] + snapshot["misses"]


# -- satellite 1: EndpointHealth success hoarding ---------------------------

def test_success_keeps_no_per_endpoint_state():
    health = EndpointHealth()
    for index in range(1_000):
        health.success("endpoint-%d" % index)
    # Pre-fix: a _successes dict with 1000 keys nothing ever read.
    assert not hasattr(health, "_successes")
    assert health.snapshot() == {}
    assert health.stats() == {
        "successes": 1_000, "failures": 0, "suspects": 0,
    }


def test_success_totals_survive_in_the_registry():
    health = EndpointHealth()
    health.failure("s1")
    health.failure("s1")
    health.success("s1")
    health.success("s2")
    assert health.metrics.counter("health.successes").value == 2
    assert health.metrics.counter("health.failures").value == 2
    assert health.metrics.gauge("health.suspects").value == 0.0
    assert health.order(["s1", "s2"]) == ["s1", "s2"]


def test_suspect_ordering_still_sinks_failing_endpoints():
    health = EndpointHealth()
    health.failure("s1")
    assert health.is_suspect("s1")
    assert health.order(["s1", "s2"]) == ["s2", "s1"]
    assert health.metrics.gauge("health.suspects").value == 1.0


# -- satellite 3: degraded_responses double/zero count ----------------------

def degraded_world():
    network = Network(seed=1)
    for name in ("a", "b"):
        network.add_node(name)
    return network


def test_two_degraded_branches_count_one_root_response():
    network = degraded_world()
    trace = network.trace()
    left, right = trace.fork(), trace.fork()
    left.note_degraded()
    right.note_degraded()
    # Branches never touch the fleet counter directly...
    assert network.counters.degraded_responses == 0
    trace.join([left, right])
    # ...and the root transition is counted exactly once (pre-fix: 2).
    assert network.counters.degraded_responses == 1
    assert trace.degraded_parts == 2


def test_root_already_degraded_before_join_counts_once():
    network = degraded_world()
    trace = network.trace()
    trace.note_degraded()
    branch = trace.fork()
    branch.note_degraded()
    trace.join([branch])
    assert network.counters.degraded_responses == 1
    assert trace.degraded_parts == 2


def test_root_note_degraded_counts_once_across_repeats():
    network = degraded_world()
    trace = network.trace()
    trace.note_degraded()
    trace.note_degraded(2)
    assert network.counters.degraded_responses == 1
    assert trace.degraded_parts == 3


def test_clean_join_counts_nothing():
    network = degraded_world()
    trace = network.trace()
    branch = trace.fork()
    trace.join([branch])
    assert network.counters.degraded_responses == 0


def test_note_degraded_zero_parts_is_not_a_transition():
    network = degraded_world()
    trace = network.trace()
    trace.note_degraded(0)
    assert network.counters.degraded_responses == 0
    assert not trace.degraded


# -- fork/join log merging and snapshot stability ---------------------------

def linked_world():
    network = Network(seed=1)
    network.add_node("a", processing_ms=0.0)
    network.add_node("b", processing_ms=0.0)
    network.link("a", "b", 10.0, jitter_ms=0.0)
    return network


def test_join_merges_branch_logs_with_pipe_prefix_in_order():
    network = linked_world()
    trace = network.trace()
    trace.compute(1.0, note="before")
    left, right = trace.fork(), trace.fork()
    left.hop("a", "b", 100, note="left-1")
    left.compute(1.0, note="left-2")
    right.hop("b", "a", 100, note="right-1")
    trace.join([left, right])
    trace.compute(1.0, note="after")
    assert trace.log[0].startswith("compute: 1.000 ms (before)")
    merged = trace.log[1:4]
    assert all(line.startswith("| ") for line in merged)
    assert "left-1" in merged[0]
    assert "left-2" in merged[1]
    assert "right-1" in merged[2]
    assert trace.log[4].startswith("compute: 1.000 ms (after)")


def test_snapshot_key_set_is_stable():
    network = linked_world()
    trace = network.trace()
    trace.hop("a", "b", 100)
    snapshot = trace.snapshot()
    assert set(snapshot) == {
        "elapsed_ms", "bytes", "hops", "retries", "failovers",
        "timeouts", "stale_serves", "degraded_parts",
    }
    assert snapshot["bytes"] == 100.0
    assert snapshot["hops"] == 1.0
    assert all(
        isinstance(value, float) for value in snapshot.values()
    )


def test_join_sums_resilience_counters_into_parent_snapshot():
    network = linked_world()
    trace = network.trace()
    branch = trace.fork()
    branch.note_retry()
    branch.note_failover()
    branch.note_stale_serve()
    trace.join([branch])
    snapshot = trace.snapshot()
    assert snapshot["retries"] == 1.0
    assert snapshot["failovers"] == 1.0
    assert snapshot["stale_serves"] == 1.0
