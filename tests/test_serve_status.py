"""The error → HTTP status mapping audit (ISSUE 9 satellite).

Walks the *entire* :class:`~repro.errors.ReproError` hierarchy and
fails on any subclass without a deliberate mapping — adding an error
class without deciding its wire status is a test failure, not a
silent 500. Also pins that no traceback text ever reaches a response
body.
"""

import inspect
import json

import pytest

from repro import errors
from repro.errors import ReproError
from repro.serve.http import HttpProtocolError
from repro.serve.middleware import error_payload
from repro.serve.status import STATUS_TABLE, status_for


def _hierarchy_classes():
    """Every ReproError subclass defined in repro.errors."""
    return [
        cls for _name, cls in inspect.getmembers(errors, inspect.isclass)
        if issubclass(cls, ReproError) and cls is not ReproError
    ]


def _all_subclasses(cls):
    seen = set()
    stack = [cls]
    while stack:
        current = stack.pop()
        for sub in current.__subclasses__():
            if sub not in seen:
                seen.add(sub)
                stack.append(sub)
    return seen


class TestTableShape:
    def test_subclasses_listed_before_bases(self):
        # isinstance dispatch means a base listed first would shadow
        # every row after it — the table must be most-derived-first.
        for index, (cls, _status, _slug) in enumerate(STATUS_TABLE):
            for later_cls, _s, _g in STATUS_TABLE[index + 1:]:
                assert not issubclass(later_cls, cls) or later_cls is cls, (
                    "%s is unreachable: base %s is listed before it"
                    % (later_cls.__name__, cls.__name__)
                )

    def test_slugs_unique_per_class(self):
        assert len({cls for cls, _s, _g in STATUS_TABLE}) \
            == len(STATUS_TABLE)


class TestEveryErrorIsMappedDeliberately:
    @pytest.mark.parametrize(
        "cls", _hierarchy_classes(), ids=lambda c: c.__name__
    )
    def test_declared_errors_have_an_explicit_row(self, cls):
        # Either the class itself appears in the table, or it inherits
        # a mapping from a *specific* ancestor (not the ReproError
        # catch-all) — a new direct child of ReproError must take a
        # deliberate row.
        explicit = any(row_cls is cls for row_cls, _s, _g in STATUS_TABLE)
        inherited = any(
            issubclass(cls, row_cls) and row_cls is not ReproError
            for row_cls, _s, _g in STATUS_TABLE
        )
        assert explicit or inherited, (
            "%s has no deliberate HTTP mapping — add it to "
            "repro.serve.status.STATUS_TABLE" % cls.__name__
        )

    def test_runtime_subclasses_resolve_to_http_statuses(self):
        # Import the serving layer first so its ReproError subclasses
        # (e.g. HttpProtocolError) are part of the walk.
        for cls in _all_subclasses(ReproError):
            instance = cls.__new__(cls)
            status, slug = status_for(instance)
            assert 400 <= status <= 599, cls.__name__
            assert slug and "-" in slug or slug.isalpha(), cls.__name__


class TestSpecificMappings:
    @pytest.mark.parametrize("cls,expected", [
        (errors.ResyncRequiredError, 410),
        (errors.StaleQueryError, 401),
        (errors.SignatureError, 401),
        (errors.AccessDeniedError, 403),
        (errors.ProvisioningDeniedError, 403),
        (errors.NoCoverageError, 404),
        (errors.UnknownSubscriberError, 404),
        (errors.MergeConflictError, 409),
        (errors.AnchorMismatchError, 409),
        (errors.ParseError, 400),
        (errors.PolicyError, 400),
        (errors.ValidationError, 400),
        (errors.PartialResultError, 503),
        (errors.TimeoutError_, 504),
        (errors.NodeUnreachableError, 503),
        (errors.PacketLossError, 503),
        (errors.AdapterError, 502),
        (errors.StoreError, 502),
        (errors.CoverageError, 500),
        (errors.SyncError, 500),
        (errors.GupsterError, 400),
    ], ids=lambda value: getattr(value, "__name__", value))
    def test_status(self, cls, expected):
        instance = cls.__new__(cls)
        assert status_for(instance)[0] == expected

    def test_client_vs_server_split(self):
        # 4xx means "your request"; 5xx means "the profile network".
        # The shield denial MUST be 4xx (it is an answer, not an
        # outage) and total part failure MUST be 5xx (retryable).
        assert 400 <= status_for(errors.AccessDeniedError("no"))[0] < 500
        boom = errors.PartialResultError("all parts down")
        assert status_for(boom)[0] >= 500


class TestNoTracebackLeaks:
    def test_repro_error_body_is_slug_and_message(self):
        response = error_payload(
            errors.NoCoverageError("no adapter registered for X")
        )
        payload = json.loads(response.body)
        assert payload == {
            "error": "no-coverage",
            "detail": "no adapter registered for X",
        }
        assert response.status == 404

    def test_internal_error_body_is_opaque(self):
        try:
            raise RuntimeError("secret internal state: 0xdeadbeef")
        except RuntimeError as err:
            response = error_payload(err)
        payload = json.loads(response.body)
        assert response.status == 500
        assert payload["error"] == "internal-error"
        assert "0xdeadbeef" not in json.dumps(payload)
        assert "Traceback" not in response.body.decode()

    def test_http_protocol_error_keeps_its_status(self):
        response = error_payload(
            HttpProtocolError("body too large", status=413)
        )
        assert response.status == 413

    def test_every_mapped_error_serializes_without_traceback(self):
        for cls, _status, _slug in STATUS_TABLE:
            instance = cls.__new__(cls)
            Exception.__init__(instance, "diagnostic text")
            body = error_payload(instance).body.decode()
            assert "Traceback" not in body
            assert "File \"" not in body
