"""Property-based tests tying path evaluation, extraction and
containment together over random documents."""

import string

from hypothesis import given, settings, strategies as st

from repro.pxml import (
    PNode,
    Path,
    Predicate,
    Step,
    evaluate,
    extract,
    node_contains,
    subtree_covers,
)

tags = ["user", "address-book", "item", "name", "presence"]
attrs = ["id", "type"]
values = ["a", "b", "c"]


@st.composite
def documents(draw):
    """Small random profile-ish documents rooted at <user>."""

    def build(depth):
        tag = draw(st.sampled_from(tags))
        node = PNode(
            tag,
            draw(
                st.dictionaries(
                    st.sampled_from(attrs),
                    st.sampled_from(values),
                    max_size=2,
                )
            ),
        )
        if depth > 0:
            for _child in range(draw(st.integers(0, 3))):
                node.append(build(depth - 1))
        return node

    root = PNode(
        "user",
        draw(
            st.dictionaries(
                st.sampled_from(attrs), st.sampled_from(values),
                max_size=1,
            )
        ),
    )
    for _ in range(draw(st.integers(0, 3))):
        root.append(build(2))
    return root


@st.composite
def doc_paths(draw):
    n_steps = draw(st.integers(1, 4))
    steps = [Step("user")]
    for _ in range(n_steps - 1):
        name = draw(st.sampled_from(tags + ["*"]))
        predicates = tuple(
            Predicate(attr, value)
            for attr, value in draw(
                st.dictionaries(
                    st.sampled_from(attrs), st.sampled_from(values),
                    max_size=1,
                )
            ).items()
        )
        steps.append(Step(name, predicates))
    return Path(tuple(steps))


class TestEvaluationProperties:
    @given(documents(), doc_paths())
    @settings(max_examples=300)
    def test_selected_nodes_match_every_step(self, doc, path):
        for node in evaluate(doc, path):
            chain = node.path_from_root()
            assert len(chain) == path.depth
            for step, element in zip(path.steps, chain):
                assert step.matches(element.tag, element.attrs)

    @given(documents(), doc_paths(), doc_paths())
    @settings(max_examples=300)
    def test_node_containment_semantics(self, doc, p, q):
        """If q node-contains p, q's result set includes p's."""
        if node_contains(q, p):
            p_nodes = {id(n) for n in evaluate(doc, p)}
            q_nodes = {id(n) for n in evaluate(doc, q)}
            assert p_nodes <= q_nodes

    @given(documents(), doc_paths())
    @settings(max_examples=300)
    def test_extract_preserves_selected_subtrees(self, doc, path):
        fragment = extract(doc, path)
        selected = evaluate(doc, path)
        if not selected:
            assert fragment is None
            return
        # Every selected subtree survives, intact, inside the fragment.
        extracted = evaluate(fragment, path)
        assert len(extracted) >= len(selected)
        extracted_keys = [n.canonical_key() for n in extracted]
        for node in selected:
            assert node.canonical_key() in extracted_keys

    @given(documents(), doc_paths())
    @settings(max_examples=200)
    def test_extract_is_no_larger_than_document(self, doc, path):
        fragment = extract(doc, path)
        if fragment is not None:
            assert fragment.byte_size() <= doc.byte_size()

    @given(documents(), doc_paths())
    @settings(max_examples=200)
    def test_coverage_semantics_on_documents(self, doc, path):
        """subtree_covers(prefix, path) means every node selected by
        path sits inside a subtree selected by the prefix."""
        if path.depth < 2:
            return
        prefix = path.prefix(path.depth - 1)
        if not subtree_covers(prefix, path):
            return
        prefix_roots = evaluate(doc, prefix)
        prefix_ids = {
            id(n) for root in prefix_roots for n in root.walk()
        }
        for node in evaluate(doc, path):
            assert id(node) in prefix_ids
