"""Unit tests for the XML parser, including round-trip guarantees."""

import pytest

from repro.errors import ParseError
from repro.pxml import PNode, parse


class TestBasics:
    def test_empty_element(self):
        node = parse("<a/>")
        assert node.tag == "a"
        assert node.children == []
        assert node.text is None

    def test_attributes_both_quote_styles(self):
        node = parse("<a x='1' y=\"2\"/>")
        assert node.attrs == {"x": "1", "y": "2"}

    def test_text_content(self):
        assert parse("<a>hello</a>").text == "hello"

    def test_nested(self):
        node = parse("<a><b><c/></b></a>")
        assert node.children[0].children[0].tag == "c"

    def test_whitespace_between_children_ignored(self):
        node = parse("<a>\n  <b/>\n  <c/>\n</a>")
        assert [c.tag for c in node.children] == ["b", "c"]
        assert node.text is None

    def test_entities_decoded(self):
        assert parse("<a>x &lt; y &amp; z</a>").text == "x < y & z"
        assert parse("<a v='&quot;q&quot;'/>").attrs["v"] == '"q"'

    def test_numeric_entities(self):
        assert parse("<a>&#65;&#x42;</a>").text == "AB"

    def test_xml_declaration_skipped(self):
        node = parse('<?xml version="1.0"?><a/>')
        assert node.tag == "a"

    def test_comments_skipped(self):
        node = parse("<!-- hi --><a><!-- in --><b/></a><!-- out -->")
        assert node.children[0].tag == "b"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "<a>",
            "<a></b>",
            "<a x=1/>",
            "<a x='1' x='2'/>",
            "<a/><b/>",
            "<a>&unknown;</a>",
            "<a><b></a></b>",
            "<a>text<b/></a>",
            "<a x='unterminated/>",
            "<1tag/>",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    @pytest.mark.parametrize("bad", ["<º", "<élément/>", "<a º='1'/>"])
    def test_non_ascii_names_raise_parse_error(self, bad):
        # Regression: the lexer used str.isalpha(), which admits Unicode
        # alphabetics (e.g. U+00BA) that the PNode name grammar rejects —
        # parse('<º') escaped as a bare ValueError from the PNode
        # constructor instead of a ParseError.
        with pytest.raises(ParseError):
            parse(bad)

    def test_error_carries_position(self):
        try:
            parse("<a><b></a>")
        except ParseError as err:
            assert err.position >= 0
        else:  # pragma: no cover
            pytest.fail("expected ParseError")


class TestRoundTrip:
    def test_simple_round_trip(self):
        original = PNode(
            "user",
            {"id": "alice"},
            children=[
                PNode("presence", children=[PNode("status", text="busy")]),
                PNode("number", {"type": "cell"}, "908-582-1111"),
            ],
        )
        assert parse(original.serialize()).deep_equal(original)

    def test_pretty_round_trip(self):
        original = PNode(
            "a", children=[PNode("b", {"k": "v"}, "text"), PNode("c")]
        )
        assert parse(original.serialize(indent=2)).deep_equal(original)

    def test_special_characters_round_trip(self):
        original = PNode("a", {"attr": "<&\"'>"}, "body <&> text")
        assert parse(original.serialize()).deep_equal(original)
