"""Exporters: Chrome trace JSON, Prometheus text, snapshots,
reconciliation."""

import json

from repro.obs import (
    MetricsRegistry,
    SpanRecorder,
    expected_duration,
    reconcile,
    to_chrome_trace,
    to_json_snapshot,
    to_prometheus,
    write_chrome_trace,
    write_json_snapshot,
)
from repro.obs.export import _prom_name


# -- Chrome trace -----------------------------------------------------------

def test_chrome_trace_complete_events_in_microseconds():
    rec = SpanRecorder()
    span = rec.leaf("hop", 1.5, 4.0, trace_id=3, tid=2,
                    attrs={"src": "a"})
    span.event("retry", 2.0, {"count": 1})
    doc = to_chrome_trace(rec)
    assert doc["displayTimeUnit"] == "ms"
    complete, instant = doc["traceEvents"]
    assert complete == {
        "name": "hop", "ph": "X",
        "ts": 1500.0, "dur": 2500.0,
        "pid": 3, "tid": 2, "args": {"src": "a"},
    }
    assert instant["ph"] == "i"
    assert instant["ts"] == 2000.0
    assert instant["s"] == "t"


def test_chrome_trace_flags_unfinished_spans():
    rec = SpanRecorder()
    rec.start("leaky", 0.0)
    (event,) = to_chrome_trace(rec)["traceEvents"]
    assert event["dur"] == 0.0
    assert event["args"]["unfinished"] is True


def test_write_chrome_trace_round_trips(tmp_path):
    rec = SpanRecorder()
    rec.leaf("hop", 0.0, 1.0)
    path = tmp_path / "trace.json"
    write_chrome_trace(rec, str(path))
    loaded = json.loads(path.read_text())
    assert loaded["traceEvents"][0]["name"] == "hop"


# -- Prometheus -------------------------------------------------------------

def test_prometheus_name_sanitization():
    assert _prom_name("net.retries") == "net_retries"
    assert _prom_name("2fast") == "_2fast"


def test_prometheus_text_format():
    registry = MetricsRegistry()
    registry.counter("net.retries", help="Retries.").inc(4)
    registry.gauge("cache.size").set(2.0)
    hist = registry.histogram("sub.delivery_latency_ms",
                              buckets=(10.0, 100.0))
    hist.observe(5.0)
    hist.observe(500.0)
    text = to_prometheus(registry)
    assert "# HELP net_retries Retries." in text
    assert "# TYPE net_retries counter" in text
    assert "net_retries_total 4" in text
    assert "cache_size 2" in text
    assert 'sub_delivery_latency_ms_bucket{le="10"} 1' in text
    assert 'sub_delivery_latency_ms_bucket{le="+Inf"} 2' in text
    assert "sub_delivery_latency_ms_sum 505" in text
    assert "sub_delivery_latency_ms_count 2" in text
    assert text.endswith("\n")


def test_prometheus_empty_registry_is_empty_string():
    assert to_prometheus(MetricsRegistry()) == ""


# -- JSON snapshot ----------------------------------------------------------

def test_json_snapshot_includes_span_totals(tmp_path):
    registry = MetricsRegistry()
    registry.counter("net.retries").inc(1)
    rec = SpanRecorder()
    rec.leaf("hop", 0.0, 2.0)
    rec.start("open", 0.0)
    snap = to_json_snapshot(registry, rec)
    assert snap["counters"] == {"net.retries": 1}
    assert snap["spans"]["recorded"] == 2
    assert snap["spans"]["open"] == 1
    assert snap["spans"]["by_name"][0]["name"] == "hop"
    path = tmp_path / "metrics.json"
    write_json_snapshot(registry, str(path), rec)
    assert json.loads(path.read_text()) == json.loads(
        json.dumps(snap)
    )


def test_json_snapshot_without_recorder_has_no_spans_key():
    assert "spans" not in to_json_snapshot(MetricsRegistry())


# -- reconciliation ---------------------------------------------------------

def _tree(rec):
    """root(0..10) -> [seq(0..2), b1(2..10, j1), b2(2..5, j1)]."""
    root = rec.leaf("trace", 0.0, 10.0, trace_id=1)
    rec.leaf("compute", 0.0, 2.0, parent_id=root.span_id, trace_id=1)
    b1 = rec.leaf("branch", 2.0, 10.0, parent_id=root.span_id,
                  trace_id=1, attrs={"fork_group": "j1"})
    b2 = rec.leaf("branch", 2.0, 5.0, parent_id=root.span_id,
                  trace_id=1, attrs={"fork_group": "j1"})
    return root, b1, b2


def test_expected_duration_uses_max_per_fork_group():
    rec = SpanRecorder()
    root, _b1, _b2 = _tree(rec)
    # 2 (sequential compute) + max(8, 3) over fork group j1 == 10.
    assert expected_duration(rec, root) == 10.0
    assert reconcile(rec, 1) == []


def test_reconcile_reports_unexplained_time():
    rec = SpanRecorder()
    root, b1, _b2 = _tree(rec)
    # Shrink the long branch: the root now claims 10ms but its
    # children only explain 2 + max(4, 3) == 6ms.
    b1.end_ms = 6.0
    mismatches = reconcile(rec, 1)
    assert [(m[0], m[1], m[2]) for m in mismatches] == [
        (root, 10.0, 6.0)
    ]


def test_reconcile_skips_unfinished_spans():
    rec = SpanRecorder()
    rec.start("open", 0.0, trace_id=1)
    assert reconcile(rec, 1) == []
