"""The E18 determinism contract: observability must be free when off
and invisible when on.

The golden fixture ``tests/data/golden_latencies.json`` pins the
E1/E7/E16 reference streams as sampled *before* the observability
layer landed; this module replays them (recorder detached) and
asserts bit-identical equality, then replays the degraded E16 query
with spans enabled and asserts the sampled latency is unchanged and
the span tree fully explains it."""

import json
import os

import pytest

from repro.obs import reconcile, to_chrome_trace
from repro.workloads.reference import (
    GOLDEN_STREAMS,
    e16_degraded_query,
    reference_streams,
)

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "golden_latencies.json"
)


def golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)["streams"]


def test_fixture_covers_every_stream():
    assert set(golden()) == set(GOLDEN_STREAMS)


@pytest.mark.parametrize("name", GOLDEN_STREAMS)
def test_streams_are_bit_identical_to_the_goldens(name):
    # == on floats, not approx: the contract is "no latency changed",
    # not "latencies stayed close".
    assert reference_streams()[name] == golden()[name]


def test_observed_degraded_query_samples_identical_latency():
    _network, silent = e16_degraded_query(observed=False)
    network, observed = e16_degraded_query(observed=True)
    assert observed.elapsed_ms == silent.elapsed_ms
    assert observed.bytes_total == silent.bytes_total
    assert observed.hops == silent.hops
    assert observed.degraded_parts == silent.degraded_parts
    assert observed.log == silent.log
    assert network.recorder is not None
    assert len(network.recorder) > 0


def test_observed_degraded_query_span_tree_reconciles():
    network, trace = e16_degraded_query(observed=True)
    recorder = network.recorder
    assert recorder.open_spans() == []
    (root,) = recorder.roots(trace.trace_id)
    assert root.duration_ms == trace.elapsed_ms
    assert reconcile(recorder, trace.trace_id) == []
    # The degradation is visible in the tree: a failed-store sweep
    # left hop leaves with non-ok statuses.
    statuses = {
        span.attrs.get("status")
        for span in recorder.spans_for(trace.trace_id)
        if span.name == "hop"
    }
    assert "unreachable" in statuses


def test_observed_degraded_query_chrome_export_is_valid():
    network, trace = e16_degraded_query(observed=True)
    doc = to_chrome_trace(network.recorder)
    events = doc["traceEvents"]
    assert events, "a degraded query must export spans"
    for event in events:
        assert event["ph"] in ("X", "i")
        assert event["pid"] == trace.trace_id
        if event["ph"] == "X":
            assert event["dur"] >= 0.0
            assert not event["args"].get("unfinished")
    # json round-trip (the file CI archives must be serializable).
    assert json.loads(json.dumps(doc)) == doc


def test_fleet_counters_match_between_observed_and_silent_runs():
    silent_net, _trace = e16_degraded_query(observed=False)
    observed_net, _trace = e16_degraded_query(observed=True)
    assert (
        observed_net.counters.as_dict() == silent_net.counters.as_dict()
    )
    assert silent_net.counters.degraded_responses == 1
