"""Failure-aware query execution: retry/failover/backoff, graceful
degradation, serve-stale, and the cache privacy-shield regression."""

import pytest

from repro.access import RequestContext
from repro.core import (
    CentralizedMdm,
    ComponentCache,
    EndpointHealth,
    GupsterServer,
    QueryExecutor,
    RetryPolicy,
)
from repro.errors import (
    AccessDeniedError,
    GupsterError,
    PartialResultError,
)
from repro.pxml import evaluate_values
from repro.simnet import Network, Simulator
from repro.core.subscription import SubscriptionHub
from repro.workloads import SyntheticAdapter, build_converged_world

BOOK = "/user[@id='u1']/address-book"
PERSONAL = BOOK + "/item[@type='personal']"
CORPORATE = BOOK + "/item[@type='corporate']"


def ctx(requester="app", relationship="third-party"):
    return RequestContext(requester, relationship=relationship)


def split_world(ttl_ms=60_000.0, stale_grace_ms=0.0, retry_policy=None):
    """Personal slice replicated (alpha || beta), corporate slice only
    at corp — the same shape as bench_e16."""
    network = Network(seed=16)
    network.add_node("gupster", region="core")
    network.add_node("client", region="internet")
    network.add_node("gup.alpha.com", region="internet")
    network.add_node("gup.beta.com", region="core")
    network.add_node("gup.corp.com", region="enterprise")
    server = GupsterServer(
        "gupster",
        cache=ComponentCache(
            capacity=16,
            default_ttl_ms=ttl_ms,
            stale_grace_ms=stale_grace_ms,
        ),
        enforce_policies=False,
    )
    for store_id, seed in (
        ("gup.alpha.com", 5),
        ("gup.beta.com", 5),
        ("gup.corp.com", 9),
    ):
        adapter = SyntheticAdapter(store_id, seed=seed)
        adapter.add_user("u1", ["address-book"])
        server.join(adapter, user_ids=[])
    server.register_component(PERSONAL, "gup.alpha.com")
    server.register_component(PERSONAL, "gup.beta.com")
    server.register_component(CORPORATE, "gup.corp.com")
    executor = QueryExecutor(
        network, server, retry_policy=retry_policy
    )
    return network, server, executor


class TestRetryPolicy:
    def test_backoff_sequence_with_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_backoff_ms=25.0, multiplier=2.0,
            max_backoff_ms=150.0,
        )
        assert [policy.backoff_ms(n) for n in (1, 2, 3, 4)] == [
            25.0, 50.0, 100.0, 150.0,  # capped
        ]

    def test_none_restores_first_error_wins(self):
        policy = RetryPolicy.none()
        assert policy.max_attempts == 1
        assert policy.backoff_ms(1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_ms=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_ms(0)


class TestEndpointHealth:
    def test_order_is_stable_without_failures(self):
        health = EndpointHealth()
        assert health.order(["b", "a", "c"]) == ["b", "a", "c"]

    def test_failures_sink_to_the_back(self):
        health = EndpointHealth()
        health.failure("a")
        health.failure("a")
        health.failure("b")
        assert health.order(["a", "b", "c"]) == ["c", "b", "a"]
        assert health.is_suspect("a")
        assert health.consecutive_failures("a") == 2

    def test_success_clears_suspicion(self):
        health = EndpointHealth()
        health.failure("a")
        health.success("a")
        assert not health.is_suspect("a")
        assert health.order(["a", "b"]) == ["a", "b"]


class TestFailover:
    def test_replica_failover_keeps_answer_full(self):
        network, _server, executor = split_world()
        network.fail("gup.alpha.com")
        fragment, trace = executor.chaining("client", BOOK, ctx())
        assert not trace.degraded
        kinds = set(
            evaluate_values(fragment, "/user/address-book/item/@type")
        )
        assert kinds == {"personal", "corporate"}
        assert trace.failovers >= 1
        assert trace.timeouts_charged >= 1
        assert executor.health.is_suspect("gup.alpha.com")

    def test_health_reorders_subsequent_requests(self):
        network, _server, executor = split_world()
        network.fail("gup.alpha.com")
        executor.chaining("client", BOOK, ctx())
        # Second request goes straight to the healthy replica: no
        # further detection timeouts.
        _fragment, second = executor.chaining("client", BOOK, ctx())
        assert second.timeouts_charged == 0
        assert second.failovers == 0

    def test_retry_recovers_single_choice_transient(self):
        network, _server, executor = split_world()
        # The only corporate message gets lost once: sweep 2 succeeds.
        network.force_drops("gupster", "gup.corp.com", count=1)
        fragment, trace = executor.chaining("client", BOOK, ctx())
        assert not trace.degraded
        assert trace.retries == 1
        backoff = executor.retry_policy.backoff_ms(1)
        assert any(
            "wait: %.3f" % backoff in line for line in trace.log
        )
        kinds = set(
            evaluate_values(fragment, "/user/address-book/item/@type")
        )
        assert "corporate" in kinds

    def test_no_failures_means_zero_counters(self):
        network, _server, executor = split_world()
        _fragment, trace = executor.chaining("client", BOOK, ctx())
        assert trace.retries == 0
        assert trace.failovers == 0
        assert trace.timeouts_charged == 0
        assert not trace.degraded
        assert network.counters.total() == 0


class TestDegradation:
    def test_partial_result_when_one_part_unreachable(self):
        network, _server, executor = split_world()
        network.fail("gup.corp.com")
        fragment, trace = executor.chaining("client", BOOK, ctx())
        assert trace.degraded
        assert trace.degraded_parts == 1
        kinds = set(
            evaluate_values(fragment, "/user/address-book/item/@type")
        )
        assert kinds == {"personal"}
        ok = [s for s in trace.part_status if s.ok]
        failed = [s for s in trace.part_status if not s.ok]
        assert len(ok) == 1 and len(failed) == 1
        assert "corporate" in str(failed[0].path)
        assert failed[0].error is not None
        assert network.counters.degraded_responses == 1

    def test_all_parts_down_raises_with_statuses(self):
        network, _server, executor = split_world()
        for node in ("gup.alpha.com", "gup.beta.com", "gup.corp.com"):
            network.fail(node)
        with pytest.raises(PartialResultError) as excinfo:
            executor.chaining("client", BOOK, ctx())
        statuses = excinfo.value.part_status
        assert len(statuses) == 2
        assert all(not status.ok for status in statuses)

    def test_degraded_answers_are_not_cached(self):
        network, _server, executor = split_world()
        network.fail("gup.corp.com")
        _fragment, _trace, hit = executor.cached("client", BOOK, ctx())
        assert not hit
        # The degraded merge must not be served as a (full) hit later.
        _fragment, _trace, hit = executor.cached("client", BOOK, ctx())
        assert not hit


class TestServeStale:
    def test_total_outage_serves_stale_within_grace(self):
        network, _server, executor = split_world(
            ttl_ms=1_000.0, stale_grace_ms=10_000.0
        )
        fresh, _trace, hit = executor.cached(
            "client", BOOK, ctx(), now=0.0
        )
        assert not hit
        for node in ("gup.alpha.com", "gup.beta.com", "gup.corp.com"):
            network.fail(node)
        stale, trace, hit = executor.cached(
            "client", BOOK, ctx(), now=5_000.0
        )
        assert hit
        assert trace.stale_serves == 1
        assert trace.degraded
        assert stale.byte_size() == fresh.byte_size()
        assert network.counters.stale_serves == 1

    def test_stale_grace_is_bounded(self):
        network, _server, executor = split_world(
            ttl_ms=1_000.0, stale_grace_ms=10_000.0
        )
        executor.cached("client", BOOK, ctx(), now=0.0)
        for node in ("gup.alpha.com", "gup.beta.com", "gup.corp.com"):
            network.fail(node)
        # staleness 19 s > 10 s grace: the corpse is useless.
        with pytest.raises(PartialResultError):
            executor.cached("client", BOOK, ctx(), now=20_000.0)

    def test_no_grace_means_no_stale_serves(self):
        network, _server, executor = split_world(
            ttl_ms=1_000.0, stale_grace_ms=0.0
        )
        executor.cached("client", BOOK, ctx(), now=0.0)
        for node in ("gup.alpha.com", "gup.beta.com", "gup.corp.com"):
            network.fail(node)
        with pytest.raises(PartialResultError):
            executor.cached("client", BOOK, ctx(), now=5_000.0)


class TestComponentCacheScoping:
    def test_scopes_partition_entries(self):
        from repro.pxml import PNode

        cache = ComponentCache(capacity=4)
        cache.put(BOOK, PNode("address-book"), 0.0, scope="a|self")
        assert cache.get(BOOK, 1.0, scope="b|family") is None
        assert cache.get(BOOK, 1.0, scope="a|self") is not None

    def test_invalidate_crosses_scopes(self):
        from repro.pxml import PNode

        cache = ComponentCache(capacity=4)
        cache.put(BOOK, PNode("address-book"), 0.0, scope="a|self")
        cache.put(BOOK, PNode("address-book"), 0.0, scope="b|family")
        assert cache.invalidate(BOOK) == 2
        assert len(cache) == 0

    def test_get_stale_counts_only_expired_serves(self):
        from repro.pxml import PNode

        cache = ComponentCache(
            capacity=4, default_ttl_ms=100.0, stale_grace_ms=50.0
        )
        cache.put(BOOK, PNode("address-book"), 0.0, scope="client|self")
        assert cache.get_stale(BOOK, 50.0, scope="client|self") is not None
        assert cache.stale_serves == 0  # still fresh
        assert cache.get_stale(BOOK, 140.0, scope="client|self") is not None
        assert cache.stale_serves == 1
        assert cache.get_stale(BOOK, 500.0, scope="client|self") is None


class TestMdmResilience:
    def build(self):
        network = Network(seed=31)
        network.add_node("client", region="internet")
        network.add_node("mdm.us", region="core")
        network.add_node("mdm.eu", region="core")
        server = GupsterServer("central", enforce_policies=False)
        store = SyntheticAdapter("store.central")
        store.add_user("u1", ["presence"])
        server.join(store)
        mdm = CentralizedMdm(network, server, ["mdm.us", "mdm.eu"])
        return network, mdm

    def test_mirror_failover_counts(self):
        network, mdm = self.build()
        network.fail("mdm.us")
        _referral, trace = mdm.resolve(
            "client", "/user[@id='u1']/presence", ctx()
        )
        assert trace.failovers == 1
        assert trace.timeouts_charged == 1
        # Health learned: the next lookup skips the dead mirror.
        _referral, second = mdm.resolve(
            "client", "/user[@id='u1']/presence", ctx()
        )
        assert second.timeouts_charged == 0

    def test_all_mirrors_down_raises_after_retry(self):
        network, mdm = self.build()
        network.fail("mdm.us")
        network.fail("mdm.eu")
        with pytest.raises(GupsterError):
            mdm.resolve("client", "/user[@id='u1']/presence", ctx())
        # Default policy: one backed-off re-sweep happened.
        assert network.counters.retries == 1
        assert network.counters.timeouts == 4  # 2 mirrors x 2 sweeps


class TestCachePrivacyShield:
    """Regression: a cache hit must never bypass the privacy shield.

    Before the fix the component cache was keyed by path alone, so the
    full address book cached for its owner was served verbatim to any
    later requester — including one whose permitted slice is only the
    personal items."""

    BOOK = "/user[@id='arnaud']/address-book"

    def test_cached_slice_respects_requester(self):
        world = build_converged_world()
        owner = RequestContext("arnaud", relationship="self")
        cousin = RequestContext("cousin", relationship="family")
        # The owner warms the cache with the FULL book.
        full, _trace, hit = world.executor.cached(
            "client-app", self.BOOK, owner, now=0.0
        )
        assert not hit
        kinds = set(
            evaluate_values(full, "/user/address-book/item/@type")
        )
        assert "corporate" in kinds
        # Owner's own repeat is a hit and still full.
        full2, _trace, hit = world.executor.cached(
            "client-app", self.BOOK, owner, now=1.0
        )
        assert hit and full2.byte_size() == full.byte_size()
        # The family requester must NOT receive the owner's cached
        # entry: different scope -> miss -> shield-rewritten fetch.
        sliced, _trace, hit = world.executor.cached(
            "client-app", self.BOOK, cousin, now=2.0
        )
        assert not hit
        kinds = set(
            evaluate_values(sliced, "/user/address-book/item/@type")
        )
        assert kinds == {"personal"}
        # And the family requester's own hit stays sliced.
        sliced2, _trace, hit = world.executor.cached(
            "client-app", self.BOOK, cousin, now=3.0
        )
        assert hit
        kinds = set(
            evaluate_values(sliced2, "/user/address-book/item/@type")
        )
        assert kinds == {"personal"}

    def test_policy_revocation_reaches_cached_entries(self):
        world = build_converged_world()
        cousin = RequestContext("cousin", relationship="family")
        _fragment, _trace, hit = world.executor.cached(
            "client-app", self.BOOK, cousin, now=0.0
        )
        assert not hit
        # The owner revokes family access; the requester's own cached
        # entry must not keep leaking (shield re-checked on every hit).
        world.server.revoke_policy("arnaud", "arnaud-family-book")
        with pytest.raises(AccessDeniedError):
            world.executor.cached(
                "client-app", self.BOOK, cousin, now=1.0
            )


class TestSubscriptionPollResilience:
    def test_poll_failures_counted_not_fatal(self):
        network, server, executor = split_world()
        sim = Simulator()
        hub = SubscriptionHub(sim, network, server, executor)
        for node in ("gup.alpha.com", "gup.beta.com", "gup.corp.com"):
            network.fail(node)
        hub.start_polling(
            "client", BOOK, "/user/address-book/item/name",
            ctx(), interval_ms=1_000.0, until=5_000.0,
        )
        sim.run()
        assert hub.poll_failures == 5
        assert hub.deliveries == []
