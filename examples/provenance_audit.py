#!/usr/bin/env python
"""Data provenance (paper Section 7, third core challenge).

"In e-commerce, when a user buys something, she gives her credit card
number ... The user trusts that the merchant won't use the credit card
number beyond the purchases that the user authorizes."

This example attaches the provenance machinery to GUPster and shows:

1. the access ledger — Arnaud audits who touched his profile today,
   including denied attempts;
2. per-element origins of a merged (split) address book;
3. the cross-source redistribution check: handing the merged book to
   a family member would leak the corporate half against Lucent's
   rules — detected before it happens.

Run:  python examples/provenance_audit.py
"""

from repro.access import PolicyRule, RequestContext, relationship_in
from repro.core import ProvenanceTracker, SourceAnnotator
from repro.errors import AccessDeniedError
from repro.workloads import build_converged_world

BOOK = "/user[@id='arnaud']/address-book"
PRESENCE = "/user[@id='arnaud']/presence"


def main() -> None:
    world = build_converged_world(split_address_book=True)
    tracker = ProvenanceTracker()
    annotator = SourceAnnotator()
    world.executor.provenance = tracker
    world.executor.annotator = annotator

    # ---- a day of accesses ---------------------------------------------
    day = [
        ("arnaud", "self", BOOK, 8),
        ("mom", "family", BOOK, 9),
        ("bob", "co-worker", PRESENCE, 11),
        ("telemarketer", "third-party", PRESENCE, 12),
        ("rick", "boss", PRESENCE, 14),
    ]
    for requester, relationship, path, hour in day:
        ctx = RequestContext(requester, relationship=relationship,
                             hour=hour, weekday=1)
        try:
            world.executor.referral(
                "client-app", path, ctx, now=hour * 3_600_000.0
            )
        except AccessDeniedError:
            pass

    print("1. Arnaud's disclosure ledger:")
    for record in tracker.disclosures_for("arnaud"):
        print("   %02d:00  %-13s %-11s %-13s %-7s via %s"
              % (record.at / 3_600_000.0 % 24, record.requester,
                 record.relationship, record.path.steps[1].name,
                 "granted" if record.granted else "DENIED",
                 ", ".join(record.stores) or "-"))
    print("   access counts: %s" % tracker.requesters_of("arnaud"))
    print("   denied attempts: %d"
          % len(tracker.denied_attempts("arnaud")))

    # ---- element origins -------------------------------------------------
    ctx = RequestContext("arnaud", relationship="self")
    fragment, _trace = world.executor.referral("client-app", BOOK, ctx)
    book = fragment.child("address-book")
    print("\n2. Where each merged item came from:")
    for item in book.children:
        print("   item %-3s (%-9s) <- %s"
              % (item.attrs["id"], item.attrs.get("type", "?"),
                 annotator.origin_of(item)))

    # ---- redistribution check -----------------------------------------------
    print("\n3. Redistribution check — may the merged book go to mom?")
    source_policies = {
        "gup.lucent.com": [
            PolicyRule("arnaud", BOOK + "/item[@type='corporate']",
                       "permit", relationship_in("co-worker", "boss")),
        ],
        "gup.yahoo.com": [
            PolicyRule("arnaud", BOOK + "/item[@type='personal']",
                       "permit", relationship_in("family", "buddy")),
        ],
    }
    mom = RequestContext("mom", relationship="family")
    conflicts = annotator.redistribution_conflicts(
        book, source_policies, mom
    )
    for location, source in conflicts:
        print("   BLOCKED: %s (source %s forbids family)"
              % (location, source))
    if not conflicts:
        print("   no conflicts")


if __name__ == "__main__":
    main()
