#!/usr/bin/env python
"""Enter once, use everywhere (paper requirement 11).

Generates a provisioning form straight from the GUP schema, validates
user input against the schema's constraints, and writes the component
through GUPster — one user action updating every store that holds the
component. The pre-GUPster baseline (logging into each portal
separately, forgetting one) is shown for contrast, with the resulting
replica divergence measured.

Run:  python examples/enter_once.py
"""

from repro.errors import ValidationError
from repro.provisioning import Provisioner
from repro.workloads import build_converged_world


def main() -> None:
    world = build_converged_world()
    provisioner = Provisioner(world.server, world.executor)

    # ---- the auto-generated form -----------------------------------------
    form = provisioner.form_for("address-book")
    print("Auto-generated form for <address-book> (entry = <%s>):"
          % form.entry_tag)
    for field in form.fields:
        marks = []
        if field.required:
            marks.append("required")
        if field.options:
            marks.append("one of %s" % (list(field.options),))
        print("  %-16s %-9s %s"
              % (field.key, field.vtype.name,
                 ", ".join(marks)))

    # ---- constraint checking before anything leaves the client ------------
    print("\nBad input is caught at the form:")
    try:
        form.fill([{"@id": "x", "@type": "imaginary", "number": "12"}])
    except ValidationError as err:
        print("  rejected: %s" % err)

    # ---- one action, every replica -----------------------------------------
    entries = [
        {"@id": "n1", "@type": "personal", "name": "Nadia",
         "number": "908-555-7777", "number.@type": "cell"},
        {"@id": "n2", "@type": "corporate", "name": "Ming Xiong",
         "number": "908-582-6000", "number.@type": "work"},
    ]
    report = provisioner.enter_once(
        "client-app", "arnaud", "address-book", entries
    )
    print("\nEnter once: %d user action -> stores updated: %s"
          % (report.user_actions, sorted(report.stores_updated)))
    for label, portal in (("yahoo", world.yahoo),
                          ("spcs", world.spcs_portal)):
        print("  %-6s now holds %s"
              % (label,
                 [c.display_name for c in portal.contacts("arnaud")]))
    divergence = provisioner.replica_divergence(
        "arnaud", "address-book", ["gup.yahoo.com", "gup.spcs.com"]
    )
    print("  replica divergence: %d" % divergence)

    # ---- the old way, with a forgotten store ---------------------------------
    report = provisioner.provision_manually(
        "client-app", "arnaud", "address-book",
        [{"@id": "n3", "@type": "personal", "name": "Latecomer",
          "number": "908-555-8888"}],
        store_ids=["gup.yahoo.com", "gup.spcs.com"],
        forget=["gup.spcs.com"],
    )
    divergence = provisioner.replica_divergence(
        "arnaud", "address-book", ["gup.yahoo.com", "gup.spcs.com"]
    )
    print("\nManual provisioning (forgot SprintPCS): "
          "%d separate user actions, divergence now %d"
          % (report.user_actions, divergence))


if __name__ == "__main__":
    main()
