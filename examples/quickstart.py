#!/usr/bin/env python
"""Quickstart: GUPster in five minutes.

Builds a tiny converged world, registers data stores, and walks the
Napster-style flow of the paper's Section 4.3:

1. data stores register the components they share;
2. a client asks GUPster for a component;
3. GUPster checks the privacy shield, rewrites, signs, and returns a
   *referral* (never data);
4. the client fetches directly from the stores and merges.

Run:  python examples/quickstart.py
"""

from repro.access import PolicyRule, RequestContext, relationship_in
from repro.core import GupsterServer, QueryExecutor
from repro.simnet import Network
from repro.stores import ContactRecord, WebPortal
from repro.adapters import PortalAdapter


def main() -> None:
    # -- 1. a network with a GUPster server, a client, and two stores --
    network = Network(seed=42)
    network.add_node("gupster", region="core")
    network.add_node("my-laptop", region="internet")
    network.add_node("gup.yahoo.com", region="internet")
    network.add_node("gup.spcs.com", region="core")

    # Two portals hold (replicated) profile data for user 'arnaud'.
    yahoo = WebPortal("portal.yahoo")
    spcs = WebPortal("portal.spcs")
    for portal in (yahoo, spcs):
        portal.create_account("arnaud")
        portal.put_contact(
            "arnaud",
            ContactRecord(
                "1", "Rick Hull", kind="corporate",
                phones={"work": "908-582-4393"},
            ),
        )
    yahoo.set_score("arnaud", "chess", 1820)

    # -- 2. GUP-enable the stores and register with GUPster ------------
    server = GupsterServer("gupster")
    server.join(PortalAdapter("gup.yahoo.com", yahoo))
    server.join(PortalAdapter("gup.spcs.com", spcs))
    print("Coverage for arnaud:")
    for path, stores in server.coverage.component_graph("arnaud"):
        print("  %-45s -> %s" % (path, ", ".join(stores)))

    # -- 3. the owner provisions a privacy-shield rule ------------------
    server.provision_policy(
        "arnaud",
        PolicyRule(
            "arnaud", "/user[@id='arnaud']/address-book", "permit",
            relationship_in("buddy"),
        ),
    )

    # -- 4. a buddy's application resolves and fetches ------------------
    executor = QueryExecutor(network, server)
    context = RequestContext("paul", relationship="buddy")
    referral = server.resolve(
        "/user[@id='arnaud']/address-book", context
    )
    print("\nReferral returned to the client (choice of stores):")
    print("  " + referral.render())

    fragment, trace = executor.referral(
        "my-laptop", "/user[@id='arnaud']/address-book", context
    )
    print("\nFetched fragment:")
    print(fragment.serialize(indent=2))
    print("\nEnd-to-end: %.1f simulated ms, %d bytes, %d hops"
          % (trace.elapsed_ms, trace.bytes_total, trace.hops))

    # -- 5. access control in action -------------------------------------
    try:
        server.resolve(
            "/user[@id='arnaud']/address-book",
            RequestContext("telemarketer"),
        )
    except Exception as err:  # AccessDeniedError
        print("\nStranger denied, as provisioned: %s"
              % type(err).__name__)


if __name__ == "__main__":
    main()
