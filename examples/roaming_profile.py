#!/usr/bin/env python
"""Roaming profile (paper Example 1, Section 2.1).

Alice's data is scattered: phone book on her SprintPCS phone, a
"European" book on her Vodafone SIM, personal data at Yahoo!,
corporate data behind the Lucent firewall. This example shows the
three things the paper says she cannot do today, done through GUPster:

1. access her corporate calendar while traveling in Europe;
2. share her address book among SprintPCS, Vodafone and Yahoo!
   (device <-> network SyncML sync with merge reconciliation);
3. keep her data when she switches carriers (number portability for
   profiles).

Run:  python examples/roaming_profile.py
"""

from repro.pxml import evaluate_values
from repro.services import (
    CarrierPortabilityService,
    RoamingProfileService,
)
from repro.workloads import SyntheticAdapter, build_converged_world


def main() -> None:
    world = build_converged_world()
    service = RoamingProfileService(world.server, world.executor)

    # ---- 1. corporate calendar from abroad -----------------------------
    print("1. Corporate calendar, fetched from a roaming device:")
    fragment, trace = service.fetch_while_roaming(
        "alice", "calendar", roaming_node="gup.device.alice"
    )
    for subject in evaluate_values(
        fragment, "/user/calendar/appointment/subject"
    ):
        print("   - %s" % subject)
    print("   (over the wireless link: %.0f ms simulated, %d bytes)"
          % (trace.elapsed_ms, trace.bytes_total))

    # ---- 2. device <-> network address book sync -------------------------
    print("\n2. Synchronize the SprintPCS phone book with the network:")
    phone = world.phones["alice-cell"]
    print("   before: phone has  %s"
          % [e.name for e in phone.all_entries()])
    print("           yahoo has  %s"
          % [c.display_name for c in world.yahoo.contacts("alice")])
    report, sync_trace = service.synchronize_address_book(
        "alice", "gup.device.alice", policy="merge"
    )
    print("   sync: %s sync, %d msgs, %d bytes, %d conflicts"
          % (report.mode, report.messages, report.bytes,
             len(report.conflicts)))
    print("   after:  phone has  %s"
          % [e.name for e in phone.all_entries()])
    print("           yahoo has  %s"
          % [c.display_name for c in world.yahoo.contacts("alice")])

    # ---- 3. carrier switch without losing the profile --------------------
    print("\n3. Arnaud leaves SprintPCS for AT&T:")
    porter = CarrierPortabilityService(world.server)
    att = SyntheticAdapter("gup.att.com", region="core")
    world.network.add_node("gup.att.com", region="core")
    result = porter.port_user("arnaud", "gup.spcs.com", att)
    print("   moved:       %s" % [p.split("/")[-1] for p in result.moved])
    print("   unsupported: %s"
          % [p.split("/")[-1] for p in result.unsupported])
    from repro.access import RequestContext
    referral = world.server.resolve(
        "/user[@id='arnaud']/address-book",
        RequestContext("arnaud", relationship="self"),
    )
    print("   address book now served by: %s"
          % ", ".join(referral.parts[0].store_ids))


if __name__ == "__main__":
    main()
