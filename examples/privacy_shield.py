#!/usr/bin/env python
"""The privacy shield (paper Section 4.6) and signed queries (5.3).

Provisions the paper's example policies for a corporate user —

    "any co-worker can access my presence information during
    working-hours; my boss and my family can access my presence
    information at any time; my family can access my personal address
    book and calendar."

— then exercises them from different requesters, times, and shows how
GUPster *rewrites* a too-broad request down to the permitted slice,
signs it, and how a data store rejects forged or stale queries.

Run:  python examples/privacy_shield.py
"""

from repro.access import RequestContext
from repro.errors import AccessDeniedError, SignatureError, StaleQueryError
from repro.workloads import build_converged_world


def attempt(server, label, path, context):
    try:
        referral = server.resolve(path, context)
        print("  %-38s PERMIT -> %s" % (label, referral.render()))
        return referral
    except AccessDeniedError:
        print("  %-38s DENY" % label)
        return None


def main() -> None:
    world = build_converged_world()
    server = world.server
    presence = "/user[@id='arnaud']/presence"
    book = "/user[@id='arnaud']/address-book"

    print("Presence requests against Arnaud's shield:")
    attempt(server, "co-worker, Tuesday 11:00", presence,
            RequestContext("bob", relationship="co-worker",
                           hour=11, weekday=1))
    attempt(server, "co-worker, Tuesday 22:00", presence,
            RequestContext("bob", relationship="co-worker",
                           hour=22, weekday=1))
    attempt(server, "boss, Sunday 23:00", presence,
            RequestContext("rick", relationship="boss",
                           hour=23, weekday=6))
    attempt(server, "unknown third party", presence,
            RequestContext("telemarketer"))

    print("\nQuery rewriting — mom asks for the WHOLE address book:")
    referral = attempt(
        server, "family, whole book", book,
        RequestContext("mom", relationship="family"),
    )
    print("  (narrowed to the personal slice, the corporate half is "
          "invisible)")

    print("\nSigned queries at the data store:")
    part = referral.parts[0]
    verifier = server.signer.verifier()
    verifier.verify(part.signed_query, now=100.0)
    print("  genuine signed query .......... accepted")
    try:
        verifier.verify(part.signed_query, now=10_000_000.0)
    except StaleQueryError:
        print("  same query replayed later ..... rejected (stale)")
    forged = server.signer.sign(book, "mom", now=0.0)
    forged.requester = "mallory"
    try:
        verifier.verify(forged, now=1.0)
    except SignatureError:
        print("  tampered requester ............ rejected (signature)")


if __name__ == "__main__":
    main()
