#!/usr/bin/env python
"""Selective reach-me (paper Example 2, Section 2.2).

Alice can be reached on her office phone, softphone, cell phone or
home phone depending on where she is, what she's doing, and what her
networks know about her. The reach-me service aggregates presence
(IM), location (HLR), PSTN and VoIP call status, and her calendar —
all through one GUPster fan-out — and routes the call by her rules:

* working hours + available: office phone, then softphone;
* commuting (8-9am, 6-7pm): cell phone;
* Fridays (working from home): home phone.

Run:  python examples/selective_reach_me.py
"""

from repro.services import ReachMeService
from repro.workloads import build_converged_world


def show(decision, label):
    print("%-34s -> %-14s (rule: %s, %d sources, %.0f ms simulated)"
          % (label, decision.first_target, decision.rule_name,
             decision.sources_used, decision.trace.elapsed_ms))


def main() -> None:
    world = build_converged_world()
    service = ReachMeService(world.server, world.executor)

    print("Where does a call to Alice go?\n")

    # Tuesday 11am: at her desk, available on IM, office line idle.
    show(service.decide("alice", hour=11, weekday=1),
         "Tue 11:00, available at desk")

    # Same time, but her office line is busy: skip to the softphone.
    world.switch.set_busy("9085820001", True)
    show(service.decide("alice", hour=11, weekday=1),
         "Tue 11:00, office line busy")
    world.switch.set_busy("9085820001", False)

    # Monday 9am: the corporate calendar says staff meeting.
    show(service.decide("alice", hour=9, weekday=0),
         "Mon 09:00, staff meeting")

    # Wednesday 8am: commuting, cell phone is on the air.
    world.msc.handle_power_on("9085551111", "nj-1")
    show(service.decide("alice", hour=8, weekday=2),
         "Wed 08:00, commuting (on air)")

    # Friday: working from home.
    show(service.decide("alice", hour=14, weekday=4),
         "Fri 14:00, working from home")

    # Tuesday 9pm: cell off, but at a WiFi hot-spot — reachable on
    # the laptop via IM.
    world.hlr.detach("9085551111")
    world.isp.connect("alice", "135.104.9.1")
    show(service.decide("alice", hour=21, weekday=1),
         "Tue 21:00, online at hot-spot")
    world.isp.disconnect("alice")

    # Saturday midnight: nothing reachable, voicemail.
    world.hlr.detach("9085551111")
    world.presence.set_status("alice", "offline")
    show(service.decide("alice", hour=0, weekday=5),
         "Sat 00:00, unreachable")

    # The paper's requirement: decisions "in just a few seconds".
    decision = service.decide("alice", hour=11, weekday=1)
    print("\nDecision latency %.0f ms simulated — well under the "
          "paper's 'few seconds' bound." % decision.trace.elapsed_ms)


if __name__ == "__main__":
    main()
