"""F6 — Figure 6: the GUP information model — "a user profile as a
collection of profile components ... linked together by the identity
they refer to". Regenerated as the per-user component graph GUPster
maintains, with the schema's component inventory."""


def test_f6_information_model(benchmark, report):
    from repro.pxml import GUP_SCHEMA
    from repro.workloads import build_converged_world

    def run():
        world = build_converged_world()
        rows = []
        for user in ("alice", "arnaud"):
            graph = world.server.coverage.component_graph(user)
            for path, stores in graph:
                component = path.split("/", 2)[2]
                rows.append((user, component, len(stores),
                             ", ".join(stores)))
        inventory = [
            (tag,) for tag in GUP_SCHEMA.component_tags()
        ]
        return rows, inventory

    rows, inventory = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "f6_components",
        "Figure 6 — per-user profile components (linked by identity), "
        "with their stores",
        ["user (identity)", "component", "stores", "where"],
        rows,
    )
    report(
        "f6_schema_inventory",
        "Figure 6 — component inventory of the GUP schema (units of "
        "storage and access control)",
        ["component"],
        inventory,
    )
    users = {row[0] for row in rows}
    assert users == {"alice", "arnaud"}
    # Components are the unit of storage: every row maps to >=1 store.
    assert all(row[2] >= 1 for row in rows)
