"""E2 — GUPster overhead decomposition (Section 5.3: "expect very
little overhead because of GUPster").

Two measurements:

* simulated: the GUPster-side share (rewrite + policy + sign + verify)
  of the end-to-end fetch time at WAN latencies;
* real CPU: pytest-benchmark timing of the resolve operation itself
  (schema filter + PDP + rewrite + HMAC signing) on this machine.
"""

from repro.access import RequestContext
from repro.core.query import QueryExecutor
from repro.workloads import build_converged_world


def test_e2_simulated_overhead_share(benchmark, report):
    def run():
        world = build_converged_world()
        executor = world.executor
        ctx = RequestContext("arnaud", relationship="self")
        rows = []
        gup_compute = (
            QueryExecutor.RESOLVE_COMPUTE_MS
            + QueryExecutor.VERIFY_COMPUTE_MS
        )
        for component in ("presence", "address-book", "calendar",
                          "devices"):
            path = "/user[@id='arnaud']/%s" % component
            try:
                _fragment, trace = executor.referral(
                    "client-app", path, ctx
                )
            except Exception:
                continue
            share = 100.0 * gup_compute / trace.elapsed_ms
            rows.append(
                (component, gup_compute, trace.elapsed_ms, share)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e2_overhead_share",
        "E2 — GUPster compute share of end-to-end fetch (simulated)",
        ["component", "gupster ms", "end-to-end ms", "share %"],
        rows,
        notes="Paper: 'very little overhead because of GUPster' — "
              "the share should stay in single digits at WAN latency.",
    )
    assert rows
    assert all(share < 15.0 for *_rest, share in rows)


def test_e2_resolve_cpu_cost(benchmark, report):
    """Real CPU microbenchmark of one resolve (policy + rewrite +
    sign)."""
    world = build_converged_world()
    ctx = RequestContext("mom", relationship="family")
    path = "/user[@id='arnaud']/address-book"

    def resolve_once():
        return world.server.resolve(path, ctx)

    referral = benchmark(resolve_once)
    assert referral.parts
    mean_us = benchmark.stats.stats.mean * 1e6
    report(
        "e2_resolve_cpu",
        "E2 — real CPU cost of one policy-checked, signed resolve",
        ["operation", "mean us/op", "ops/sec"],
        [("resolve (policy+rewrite+sign)", mean_us,
          1e6 / mean_us if mean_us else float("nan"))],
        notes="Thousands of resolves/sec/core supports the paper's "
              "lightweight-server claim.",
    )
    # Should be well under a millisecond.
    assert mean_us < 2000
