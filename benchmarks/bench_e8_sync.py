"""E8 — synchronization cost and reconciliation (requirements 6/7;
Section 5.3: "SyncML is only a transport protocol. Issues like
synchronization semantics need to be addressed").

(a) Fast vs slow sync traffic as a function of change count on a
100-entry address book — fast sync bytes should scale with *changes*,
slow sync with *total entries*.
(b) Outcome matrix of the five reconciliation policies on the same
conflicting edit.
"""

from repro.pxml import PNode
from repro.sync import Reconciler, SyncEndpoint, SyncSession


BOOK_SIZE = 100


def item(item_id, name, number=None):
    node = PNode("item", {"id": item_id})
    node.append(PNode("name", text=name))
    if number:
        node.append(PNode("number", {"type": "cell"}, number))
    return node


def paired_with_book():
    phone = SyncEndpoint("phone")
    network = SyncEndpoint("network")
    for index in range(BOOK_SIZE):
        network.put_item(item("c%03d" % index, "contact %d" % index),
                         now=0.0)
    session = SyncSession(phone, network)
    session.run(now=1.0)  # initial slow sync seeds both sides
    return phone, network, session


def test_e8_fast_vs_slow_traffic(benchmark, report):
    def run():
        rows = []
        for changes in (0, 1, 5, 20, 50):
            phone, network, session = paired_with_book()
            for index in range(changes):
                phone.put_item(
                    item("c%03d" % index, "renamed %d" % index),
                    now=10.0 + index,
                )
            fast = session.run(now=100.0)
            # Same starting point, but force a slow sync.
            phone2, network2, session2 = paired_with_book()
            for index in range(changes):
                phone2.put_item(
                    item("c%03d" % index, "renamed %d" % index),
                    now=10.0 + index,
                )
            session2.corrupt_client_anchor()
            slow = session2.run(now=100.0)
            rows.append(
                (changes, fast.mode, fast.messages, fast.bytes,
                 slow.mode, slow.messages, slow.bytes,
                 slow.bytes / fast.bytes)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e8_sync_traffic",
        "E8 — fast vs slow sync traffic on a %d-entry book" % BOOK_SIZE,
        ["changes", "mode", "msgs", "bytes", "mode", "msgs", "bytes",
         "slow/fast"],
        rows,
        notes=(
            "Fast-sync bytes scale with the number of changes; "
            "slow-sync bytes with the book size — the anchors are "
            "worth keeping."
        ),
    )
    # Idle fast sync is tiny; slow sync always ships the whole book.
    idle = rows[0]
    assert idle[1] == "fast" and idle[4] == "slow"
    assert idle[7] > 10.0
    # Fast sync grows with changes but stays under slow until changes
    # approach the book size.
    assert rows[1][3] < rows[4][3]
    assert all(row[3] <= row[6] for row in rows)


def test_e8_reconciliation_matrix(benchmark, report):
    def run():
        rows = []
        for policy in ("client-wins", "server-wins",
                       "last-writer-wins", "merge", "duplicate"):
            phone = SyncEndpoint("phone")
            network = SyncEndpoint("network")
            session = SyncSession(phone, network, Reconciler(policy))
            phone.put_item(item("1", "Bob", "111"), now=0.0)
            session.run(now=1.0)
            # Conflict: phone renames (later), network adds a number
            # (earlier).
            phone.put_item(item("1", "Bobby"), now=10.0)
            network.put_item(item("1", "Bob", "222"), now=5.0)
            reports = session.run(now=20.0)
            final = phone.item("1")
            name = final.child("name").text
            number_el = final.child("number")
            number = number_el.text if number_el is not None else "-"
            extra = (
                "+" + ",".join(
                    i for i in phone.item_ids() if i != "1"
                )
                if len(phone.item_ids()) > 1 else ""
            )
            converged = phone.item_ids() == network.item_ids() and all(
                phone.item(i).deep_equal(network.item(i))
                for i in phone.item_ids()
            )
            rows.append(
                (policy, name, number, extra,
                 len(reports.conflicts), converged)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e8_reconciliation",
        "E8 — reconciliation policies on one conflicting edit "
        "(phone renames later; network adds number earlier)",
        ["policy", "final name", "final number", "extra items",
         "conflicts", "replicas converge"],
        rows,
        notes="'merge' keeps the newer name AND the number only the "
              "other replica had — the only policy losing nothing "
              "without duplicating.",
    )
    by_policy = {row[0]: row for row in rows}
    assert by_policy["client-wins"][1] == "Bobby"
    assert by_policy["server-wins"][1] == "Bob"
    assert by_policy["last-writer-wins"][1] == "Bobby"
    assert by_policy["merge"][1] == "Bobby"
    assert by_policy["merge"][2] == "222"
    assert by_policy["duplicate"][3] != ""
    assert all(row[5] for row in rows)  # convergence everywhere
