"""F1 — Figure 1: the converged network around a Wireless Service
Provider: which services live inside/outside the WSP and which profile
slices each accesses. Regenerated from the live world."""


def test_f1_topology(benchmark, report):
    from repro.workloads import build_converged_world

    def run():
        world = build_converged_world()
        rows = []
        # Services and where they sit relative to the WSP (Figure 1).
        services = [
            ("PAM (presence & availability)", "inside WSP",
             "presence, location"),
            ("Pre-Pay billing", "inside WSP", "services (prepaid flag)"),
            ("Selective reach-me", "inside WSP",
             "presence, location, call-status, calendar, devices"),
            ("Yahoo! portal", "outside (internet)",
             "address-book, calendar, game-scores, bookmarks"),
            ("Lucent intranet", "outside (enterprise)",
             "address-book (corporate), calendar (work)"),
            ("VoIP proxy", "outside (internet)", "call-status (voip)"),
            ("E-merchant", "outside (internet)",
             "wallet, self (shipping address)"),
        ]
        for name, placement, slices in services:
            rows.append((name, placement, slices))
        node_rows = [
            (node.name, node.region)
            for node in sorted(
                world.network.nodes(), key=lambda n: n.name
            )
        ]
        return rows, node_rows

    rows, node_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "f1_topology",
        "Figure 1 — services around the WSP and the profile slices "
        "they touch",
        ["service", "placement", "profile data accessed"],
        rows,
    )
    report(
        "f1_nodes",
        "Figure 1 — simulated network nodes by latency region",
        ["node", "region"],
        node_rows,
    )
    assert len(node_rows) >= 10
