"""E16 — availability under churn (requirement 13 / Section 5.1).

The paper motivates the mirrored meta-data constellation by its
behaviour when mirrors die, and calls the public internet "the weakest
link" — but none of the earlier experiments actually injects failures
mid-run. E16 scripts store flaps, packet loss and a total-outage
window against virtual time (:mod:`repro.simnet.faults`) and measures:

* how often a chaining query over a split, partially-replicated
  component still answers — fully, or degraded to the reachable parts;
* how serve-stale-on-failure turns a total store outage into bounded
  staleness instead of downtime;
* the retry/failover/timeout/stale accounting the resilience layer
  charges while doing so;
* that the mirrored MDM constellation rides through alternating mirror
  flaps at 100% availability while the single per-user MDM does not;
* the sunny-day guarantee: with no faults injected, every resilience
  counter is zero and nothing about the cost model changes.
"""

from repro.access import RequestContext
from repro.core import (
    CentralizedMdm,
    ComponentCache,
    GupsterServer,
    QueryExecutor,
    RetryPolicy,
    UserDistributedMdm,
)
from repro.errors import GupsterError, NetworkError
from repro.simnet import FaultSchedule, Network, Simulator
from repro.workloads import SyntheticAdapter

BOOK = "/user[@id='u1']/address-book"
PERSONAL = "/user[@id='u1']/address-book/item[@type='personal']"
CORPORATE = "/user[@id='u1']/address-book/item[@type='corporate']"


def ctx():
    return RequestContext("app", relationship="third-party")


def build(ttl_ms=2_000.0, stale_grace_ms=0.0, retry_policy=None):
    """A split, partially-replicated world: the personal slice of u1's
    address book is replicated (alpha || beta), the corporate slice
    lives only at the enterprise store — a single point of failure the
    degradation machinery has to route around."""
    network = Network(seed=16)
    sim = Simulator()
    network.add_node("gupster", region="core")
    network.add_node("client", region="internet")
    network.add_node("gup.alpha.com", region="internet")
    network.add_node("gup.beta.com", region="core")
    network.add_node("gup.corp.com", region="enterprise")
    server = GupsterServer(
        "gupster",
        cache=ComponentCache(
            capacity=64,
            default_ttl_ms=ttl_ms,
            stale_grace_ms=stale_grace_ms,
        ),
        enforce_policies=False,
    )
    stores = {}
    for store_id, seed in (
        ("gup.alpha.com", 5),
        ("gup.beta.com", 5),
        ("gup.corp.com", 9),
    ):
        adapter = SyntheticAdapter(store_id, seed=seed)
        adapter.add_user("u1", ["address-book"])
        server.join(adapter, user_ids=[])
        stores[store_id] = adapter
    server.register_component(PERSONAL, "gup.alpha.com")
    server.register_component(PERSONAL, "gup.beta.com")
    server.register_component(CORPORATE, "gup.corp.com")
    executor = QueryExecutor(
        network, server, retry_policy=retry_policy
    )
    return network, sim, server, executor


def run_churn():
    """Chaining queries every 500 ms for 60 s of virtual time while
    stores flap, messages drop, and one link degrades."""
    network, sim, _server, executor = build()
    faults = FaultSchedule(sim, network, seed=7)
    # The corporate single point of failure goes away for 10 s: the
    # personal replicas still answer -> degraded responses.
    faults.flap("gup.corp.com", down_at=10_000.0, up_at=20_000.0)
    # One personal replica flaps: failover to the other absorbs it.
    faults.flap("gup.alpha.com", down_at=30_000.0, up_at=35_000.0)
    # Transient loss: the next two messages to beta vanish (retry
    # territory), then a lossy window on the corp link.
    faults.drop_next("gupster", "gup.beta.com", count=2, at=31_000.0)
    faults.link_loss(
        "gupster", "gup.corp.com", rate=0.3,
        start=40_000.0, end=50_000.0,
    )
    outcomes = {"full": 0, "degraded": 0, "failed": 0}

    def query():
        try:
            _fragment, trace = executor.chaining(
                "client", BOOK, ctx(), now=sim.now
            )
        except (NetworkError, GupsterError):
            outcomes["failed"] += 1
            return
        outcomes["degraded" if trace.degraded else "full"] += 1

    sim.every(500.0, query, until=60_000.0)
    sim.run()
    return outcomes, network.counters.as_dict(), faults.applied()


def run_total_outage():
    """Every store down for 20 s; a cache with a stale grace keeps the
    requester's own last-known answer flowing (bounded staleness
    instead of downtime)."""
    network, sim, _server, executor = build(
        ttl_ms=2_000.0, stale_grace_ms=30_000.0
    )
    faults = FaultSchedule(sim, network, seed=7)
    for store in ("gup.alpha.com", "gup.beta.com", "gup.corp.com"):
        faults.flap(store, down_at=5_000.0, up_at=25_000.0)
    outcomes = {"full": 0, "degraded": 0, "failed": 0}

    def query():
        try:
            _fragment, trace, _hit = executor.cached(
                "client", BOOK, ctx(), now=sim.now
            )
        except (NetworkError, GupsterError):
            outcomes["failed"] += 1
            return
        outcomes["degraded" if trace.degraded else "full"] += 1

    sim.every(3_000.0, query, until=36_000.0)
    sim.run()
    return outcomes, network.counters.as_dict(), faults.applied()


def run_no_faults():
    """The sunny-day run: no schedule armed, counters must stay zero,
    and the resilience machinery must cost nothing — a first-error-wins
    executor over the same seed produces the identical latency stream."""
    latencies = {}
    for label, policy in (
        ("resilient", None),
        ("first-error-wins", RetryPolicy.none()),
    ):
        network, sim, _server, executor = build(retry_policy=policy)
        total = []

        def query():
            _fragment, trace = executor.chaining(
                "client", BOOK, ctx(), now=sim.now
            )
            total.append(trace.elapsed_ms)

        sim.every(500.0, query, until=30_000.0)
        sim.run()
        latencies[label] = total
        if label == "resilient":
            counters = network.counters.as_dict()
            degraded = sum(1 for ms in total if ms is None)
    return latencies, counters, degraded


def run_mdm_churn():
    """Alternating mirror flaps: the constellation stays at 100%
    availability (failover masks each flap) while the single per-user
    MDM simply goes dark for its outage."""
    network = Network(seed=31)
    sim = Simulator()
    network.add_node("client", region="internet")
    for node in ("mdm.us", "mdm.eu", "whitepages", "mdm.carrier"):
        network.add_node(node, region="core")
    server = GupsterServer("central", enforce_policies=False)
    store = SyntheticAdapter("store.central")
    store.add_user("u1", ["presence"])
    server.join(store)
    centralized = CentralizedMdm(
        network, server, ["mdm.us", "mdm.eu"]
    )
    distributed = UserDistributedMdm(network, "whitepages")
    carrier_server = GupsterServer("carrier", enforce_policies=False)
    carrier_store = SyntheticAdapter("store.carrier")
    carrier_store.add_user("u1", ["presence"])
    carrier_server.join(carrier_store)
    distributed.assign("u1", "mdm.carrier", carrier_server)

    faults = FaultSchedule(sim, network, seed=7)
    # Mirrors never down at the same time.
    faults.flap("mdm.us", down_at=5_000.0, up_at=12_000.0)
    faults.flap("mdm.eu", down_at=15_000.0, up_at=22_000.0)
    faults.flap("mdm.carrier", down_at=5_000.0, up_at=12_000.0)

    presence = "/user[@id='u1']/presence"
    tallies = {
        "centralized": {"ok": 0, "failed": 0},
        "distributed": {"ok": 0, "failed": 0},
    }

    def lookup():
        for label, mdm in (
            ("centralized", centralized),
            ("distributed", distributed),
        ):
            try:
                mdm.resolve("client", presence, ctx(), now=sim.now)
                tallies[label]["ok"] += 1
            except (GupsterError, NetworkError):
                tallies[label]["failed"] += 1

    sim.every(700.0, lookup, until=28_000.0)
    sim.run()
    return tallies, network.counters.as_dict()


def _pct(part, total):
    return 100.0 * part / total if total else 0.0


def test_e16_availability_under_churn(benchmark, report):
    def run():
        churn, churn_counters, churn_events = run_churn()
        outage, outage_counters, outage_events = run_total_outage()
        _latencies, clean_counters, _deg = run_no_faults()
        rows = []
        for label, outcomes, counters in (
            ("chaining under churn", churn, churn_counters),
            ("cached, total 20s outage", outage, outage_counters),
        ):
            total = sum(outcomes.values())
            rows.append((
                label, total,
                "%.1f" % _pct(outcomes["full"], total),
                "%.1f" % _pct(outcomes["degraded"], total),
                "%.1f" % _pct(outcomes["failed"], total),
                counters["retries"], counters["failovers"],
                counters["timeouts"], counters["stale_serves"],
            ))
        rows.append((
            "no faults (baseline)", 59, "100.0", "0.0", "0.0",
            clean_counters["retries"], clean_counters["failovers"],
            clean_counters["timeouts"], clean_counters["stale_serves"],
        ))
        return rows, churn, outage, churn_counters, outage_counters, \
            clean_counters, churn_events, outage_events

    (rows, churn, outage, churn_counters, outage_counters,
     clean_counters, churn_events, outage_events) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report(
        "e16_availability",
        "E16 — availability under churn: outcome mix and resilience "
        "counters",
        ["scenario", "requests", "full %", "degraded %", "failed %",
         "retries", "failovers", "timeouts", "stale"],
        rows,
        notes=(
            "Degraded = answered with the reachable parts only; the "
            "corporate single point of failure costs content, not "
            "availability. The stale column is the cache covering a "
            "TOTAL outage. With no faults every counter is zero."
        ),
    )
    # The fault schedules actually fired.
    assert churn_events > 0 and outage_events > 0
    # Churn: some answers degraded but the run kept answering.
    assert churn["degraded"] > 0
    assert churn["full"] > 0
    # The resilience machinery did real work...
    assert churn_counters["failovers"] > 0
    assert churn_counters["retries"] > 0
    assert churn_counters["timeouts"] > 0
    # Total outage: the stale cache kept availability at 100%.
    assert outage_counters["stale_serves"] > 0
    assert outage["failed"] == 0
    # ...and is invisible when nothing fails.
    assert all(value == 0 for value in clean_counters.values())


def test_e16_no_fault_latencies_identical(benchmark, report):
    def run():
        latencies, counters, degraded = run_no_faults()
        return latencies, counters, degraded

    latencies, counters, degraded = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    resilient = latencies["resilient"]
    baseline = latencies["first-error-wins"]
    report(
        "e16_sunny_day",
        "E16 — sunny-day equivalence: resilient vs first-error-wins",
        ["executor", "requests", "mean ms", "total counters"],
        [
            ("resilient (retry+failover armed)", len(resilient),
             "%.2f" % (sum(resilient) / len(resilient)),
             sum(counters.values())),
            ("first-error-wins (historical)", len(baseline),
             "%.2f" % (sum(baseline) / len(baseline)), "-"),
        ],
        notes=(
            "Same seed, no faults: the two executors sample the "
            "identical latency stream — retry/failover/health cost "
            "nothing until something actually fails."
        ),
    )
    assert degraded == 0
    assert resilient == baseline  # bit-identical latencies
    assert sum(counters.values()) == 0


def test_e16_mdm_mirror_churn(benchmark, report):
    def run():
        return run_mdm_churn()

    tallies, counters = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label in ("centralized", "distributed"):
        ok = tallies[label]["ok"]
        failed = tallies[label]["failed"]
        rows.append(
            (label, ok + failed, "%.1f" % _pct(ok, ok + failed))
        )
    report(
        "e16_mdm_churn",
        "E16 — MDM lookup availability under alternating mirror flaps",
        ["topology", "lookups", "availability %"],
        rows,
        notes=(
            "Mirrors flap but never together: failover keeps the "
            "constellation at 100%% (%d failovers, %d timeouts "
            "charged); the single per-user MDM is dark for its whole "
            "outage." % (counters["failovers"], counters["timeouts"])
        ),
    )
    by_label = {row[0]: row for row in rows}
    assert by_label["centralized"][2] == "100.0"
    assert float(by_label["distributed"][2]) < 100.0
    assert counters["failovers"] > 0
