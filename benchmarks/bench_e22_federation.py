"""E22 — bidirectional federation: GUP <-> foreign directory.

The reconciler (DESIGN.md §4.10) runs as a sync loop between the GUP
store and a foreign directory with its own write API and USN-style
change journal. This bench drives it to its acceptance gates:

* **write storm** — a two-sided storm of (by default) **10^4 writes**
  over a population of users and mapped attributes, run once per
  conflict policy. Gate: every contested pair converges
  **bit-identical** on both sides, the authoritative side wins for
  directional mappings, lww lands on the globally last authored
  write, and the fixpoint is write-free (zero oscillation: ten extra
  sync rounds move nothing).
* **echo accounting** — on the crash-free storm, every export is
  re-imported exactly once as a *suppression* (origin tag) and every
  import's bus shadow is absorbed (origin-tag table). Gate: **zero
  echo re-imports** — ``echo_suppressed_in == synced_out`` and
  ``echo_suppressed_gup == synced_in`` hold exactly.
* **crash/resume** — the same storm with the reconciler crashing and
  resuming mid-stream. Cursors and the last-agreed base survive (the
  connector's persistent sync database), volatile state does not.
  Gate: the post-resync fixpoint is the same last-writer fixpoint —
  nothing lost, nothing applied twice.
* **poison/replay** — a faulted object strikes out into the bounded
  reject queue, survives a crash, stays held after the fault clears,
  and one explicit replay applies exactly the newest value exactly
  once (own-origin journal count == 1).

These are the same invariants the Hypothesis battery in
``tests/test_federation_properties.py`` explores on small random
interleavings; the bench checks them at storm scale and publishes the
numbers. All virtual-time numbers are seeded and deterministic.

Run the full storm (10^4 writes per policy)::

    python benchmarks/bench_e22_federation.py

or the CI smoke gate (10^3 writes, same assertions)::

    python benchmarks/bench_e22_federation.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if __name__ == "__main__":  # CLI use without an installed package
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.access import (  # noqa: E402
    PolicyEnforcementPoint, PolicyRepository, PolicyRule,
)
from repro.bus import ChangeBus  # noqa: E402
from repro.core.provenance import ProvenanceTracker  # noqa: E402
from repro.federation import (  # noqa: E402
    FederationListener, ForeignDirectory, GupAttributeStore,
    MappingEntry, MappingTable, POLICIES, Reconciler, RejectQueue,
    policy_named,
)
from repro.simnet import Network, Simulator  # noqa: E402

#: (gup suffix, foreign attr, direction) — one mapping per direction.
TABLE = (
    ("self/email", "mail", "both"),
    ("self/name", "displayName", "out"),
    ("work/phone", "telephoneNumber", "in"),
)
ATTR_OF = {suffix: attr for suffix, attr, _d in TABLE}
DIRECTION_OF = {suffix: d for suffix, _a, d in TABLE}
INTERVAL_MS = 250.0


def make_world(
    policy: str, queue: Optional[RejectQueue] = None, users: int = 0
) -> Tuple[Simulator, ChangeBus, GupAttributeStore, ForeignDirectory,
           Reconciler]:
    sim = Simulator()
    network = Network()
    network.add_node("gupster")
    network.add_node("fed-conn")
    network.add_node("corp-ad")
    bus = ChangeBus(sim, network, "gupster")
    gup = GupAttributeStore(sim, bus=bus)
    foreign = ForeignDirectory("corp-ad", sim)
    table = MappingTable(
        [MappingEntry(s, a, d) for s, a, d in TABLE]
    )
    repo = PolicyRepository()
    for index in range(users):
        user = "u%04d" % index
        repo.store(
            PolicyRule(user, "/user[@id='%s']" % user, "permit")
        )
    rec = Reconciler(
        "fed-conn", gup, foreign, table, network,
        PolicyEnforcementPoint(repo),
        policy=policy_named(policy),
        provenance=ProvenanceTracker(),
        interval_ms=INTERVAL_MS,
        reject_queue=queue,
    )
    bus.attach(FederationListener("fed", rec))
    rec.start()
    return sim, bus, gup, foreign, rec


def run_storm(
    policy: str, writes: int, users: int, seed: int,
    crashes: int = 0,
) -> Tuple[Dict[str, object], List[str]]:
    """One two-sided write storm under *policy*; optionally crash and
    resume the reconciler *crashes* times mid-stream. Returns the
    probe row and any gate failures."""
    rng = random.Random(seed)
    sim, bus, gup, foreign, rec = make_world(policy, users=users)
    user_ids = ["u%04d" % index for index in range(users)]
    suffixes = [suffix for suffix, _a, _d in TABLE]
    crash_points = set(
        rng.sample(range(writes // 4, writes * 3 // 4),
                   crashes * 2 if crashes else 0)
    )
    last_gup: Dict[Tuple[str, str], str] = {}
    last_foreign: Dict[Tuple[str, str], str] = {}
    last_any: Dict[Tuple[str, str], str] = {}
    started = time.perf_counter()  # gupcheck: ignore[determinism] -- host-side harness timing
    for index in range(writes):
        # Strictly positive advance: authored instants are distinct,
        # so "globally last write" is well-defined for the lww gate.
        sim.run(until=sim.now + rng.randint(1, 9))
        if index in crash_points:
            if rec._down:
                rec.resume(bus=bus)
            else:
                rec.crash()
        user = rng.choice(user_ids)
        suffix = rng.choice(suffixes)
        value = "v%06x" % rng.getrandbits(24)
        if rng.random() < 0.5:
            gup.write(user, suffix, value)
            last_gup[(user, suffix)] = value
        else:
            foreign.write(user, ATTR_OF[suffix], value)
            last_foreign[(user, suffix)] = value
        last_any[(user, suffix)] = value
    if rec._down:
        rec.resume(bus=bus)
    sim.run(until=sim.now + 8000)

    failures: List[str] = []
    diverged = 0
    for (user, suffix), _value in sorted(last_any.items()):
        direction = DIRECTION_OF[suffix]
        g = gup.read(user, suffix)
        f = foreign.read(user, ATTR_OF[suffix])
        g = None if g is None else g[0]
        f = None if f is None else f[0]
        key = (user, suffix)
        if direction == "both":
            if g != f:
                diverged += 1
            elif policy == "lww" and g != last_any[key]:
                failures.append(
                    "storm[%s] pair %r: lww kept %r, last write "
                    "was %r" % (policy, key, g, last_any[key])
                )
        elif direction == "out":
            expected = last_gup.get(key)
            if expected is not None and (g, f) != (expected, expected):
                diverged += 1
        else:  # "in"
            expected = last_foreign.get(key)
            if expected is not None and (g, f) != (expected, expected):
                diverged += 1
    if diverged:
        failures.append(
            "storm[%s]%s: %d pair(s) not bit-identical at the "
            "fixpoint" % (
                policy, " +crashes" if crashes else "", diverged,
            )
        )
    # Zero oscillation: ten extra rounds move nothing on either side.
    before = (gup.writes, foreign.writes)
    sim.run(until=sim.now + 10 * INTERVAL_MS)
    oscillated = (gup.writes, foreign.writes) != before
    if oscillated:
        failures.append(
            "storm[%s]: fixpoint oscillated %r -> %r"
            % (policy, before, (gup.writes, foreign.writes))
        )
    if len(rec.queue):
        failures.append(
            "storm[%s]: %d object(s) parked with no faults injected"
            % (policy, len(rec.queue))
        )
    echo_in_ok = rec.echo_suppressed_in == rec.synced_out
    echo_gup_ok = rec.echo_suppressed_gup == rec.synced_in
    if not crashes:
        # Crash-free storms must balance the echo books exactly:
        # zero echo re-imports means every own-origin journal entry
        # came back only as a suppression.
        if not echo_in_ok:
            failures.append(
                "storm[%s]: %d exports but %d suppressed re-imports"
                % (policy, rec.synced_out, rec.echo_suppressed_in)
            )
        if not echo_gup_ok:
            failures.append(
                "storm[%s]: %d imports but %d absorbed bus shadows"
                % (policy, rec.synced_in, rec.echo_suppressed_gup)
            )
    row: Dict[str, object] = {
        "policy": policy,
        "writes": writes,
        "users": users,
        "crashes": crashes,
        "pairs": len(last_any),
        "rounds": rec.rounds,
        "synced_in": rec.synced_in,
        "synced_out": rec.synced_out,
        "conflicts": rec.conflicts,
        "echo_suppressed_in": rec.echo_suppressed_in,
        "echo_suppressed_gup": rec.echo_suppressed_gup,
        "echo_books_balance": bool(echo_in_ok and echo_gup_ok),
        "resyncs": rec.resyncs,
        "diverged_pairs": diverged,
        "oscillated": bool(oscillated),
        "virtual_ms": sim.now,
        "wall_seconds": round(time.perf_counter() - started, 3),  # gupcheck: ignore[determinism] -- host-side harness timing
    }
    return row, failures


def run_poison_replay(seed: int) -> Tuple[Dict[str, object], List[str]]:
    """Fault one object into the poison state, crash, resume, replay;
    the newest value must apply exactly once."""
    queue = RejectQueue(
        max_attempts=3, base_backoff_ms=100.0, max_backoff_ms=400.0
    )
    sim, bus, gup, foreign, rec = make_world(
        "lww", queue=queue, users=4
    )
    rng = random.Random(seed)
    foreign.reject_writes_for("u0000")
    values = ["p%04x" % rng.getrandbits(16) for _ in range(4)]
    for value in values:
        sim.run(until=sim.now + 60)
        gup.write("u0000", "self/email", value)
    sim.run(until=sim.now + 4000)
    failures: List[str] = []
    parked = queue.get("u0000")
    if parked is None or not parked.poisoned:
        failures.append("poison: object did not strike out")
    rec.crash()
    sim.run(until=sim.now + 500)
    rec.resume(bus=bus)
    foreign.clear_rejects()
    sim.run(until=sim.now + 2000)
    held = foreign.read("u0000", "mail") is None
    if not held:
        failures.append(
            "poison: poisoned object retried without an explicit "
            "replay"
        )
    rec.replay("u0000")
    sim.run(until=sim.now + 2000)
    final = foreign.read("u0000", "mail")
    if final is None or final[0] != values[-1]:
        failures.append(
            "replay: expected newest value %r, foreign holds %r"
            % (values[-1], final)
        )
    applied = sum(
        1 for change in foreign._journal
        if change.origin == rec.tag
        and (change.user_id, change.attr) == ("u0000", "mail")
    )
    if applied != 1:
        failures.append(
            "replay: value applied %d times (want exactly once)"
            % applied
        )
    row = {
        "pending_writes": len(values),
        "held_while_poisoned": bool(held),
        "applied_once": applied == 1,
        "rejects": rec.rejects,
        "retries": rec.retries,
        "poisoned": rec.poisoned,
        "replays": rec.replays,
    }
    return row, failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: 10^3-write storms, same assertions",
    )
    parser.add_argument("--writes", type=int, default=None)
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--seed", type=int, default=22)
    parser.add_argument(
        "--output", default=os.path.join(REPO_ROOT, "BENCH_e22.json")
    )
    options = parser.parse_args(argv)

    if options.smoke:
        writes = options.writes or 1_000
        users = options.users or 20
    else:
        writes = options.writes or 10_000
        users = options.users or 50

    started = time.perf_counter()  # gupcheck: ignore[determinism] -- host-side harness timing
    print(
        "E22: %d-write two-sided storms over %d users x %d mappings, "
        "policies %s" % (writes, users, len(TABLE), sorted(POLICIES))
    )

    failures: List[str] = []
    storm_rows = []
    for policy in sorted(POLICIES):
        row, bad = run_storm(
            policy, writes, users, options.seed
        )
        print(
            "  storm %-12s %5d rounds, %6d out, %6d in, %5d "
            "conflicts, %s" % (
                policy, row["rounds"], row["synced_out"],
                row["synced_in"], row["conflicts"],
                "converged" if not bad else "FAILED",
            )
        )
        storm_rows.append(row)
        failures.extend(bad)

    crash_row, bad = run_storm(
        "lww", writes, users, options.seed + 1, crashes=3
    )
    print(
        "  crash/resume: %d resyncs, %s"
        % (
            crash_row["resyncs"],
            "converged" if not bad else "FAILED",
        )
    )
    failures.extend(bad)

    poison_row, bad = run_poison_replay(options.seed)
    failures.extend(bad)
    print(
        "  poison/replay: held=%s applied_once=%s"
        % (
            poison_row["held_while_poisoned"],
            poison_row["applied_once"],
        )
    )

    report = {
        "experiment": "E22",
        "title": "Bidirectional federation: reconciler storms",
        "mode": "smoke" if options.smoke else "full",
        "seed": options.seed,
        "write_storms": storm_rows,
        "crash_resume": crash_row,
        "poison_replay": poison_row,
        "wall_seconds_total": round(
            time.perf_counter() - started, 3  # gupcheck: ignore[determinism] -- host-side harness timing
        ),
        "determinism_note": (
            "all virtual-time numbers are seeded and deterministic; "
            "wall_seconds are host-side harness timings"
        ),
    }
    with open(options.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % options.output)

    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1
    print(
        "ok: %d-write storms bit-identical under %d policies, echo "
        "books balanced, crash/resume and poison/replay clean"
        % (writes, len(POLICIES))
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
