"""E10 — is the XPath fragment cheap enough for coverage? (Sections
4.5 and 7: "is XPath sufficient for expressing the partitioning...").

CPU microbenchmarks of containment/overlap decisions vs path depth,
predicate count and wildcards, plus the full coverage-resolution cost
as registrations per user grow. The point of restricting to the
fragment is that these stay microseconds — which is what makes a
referral server cheap.
"""

import time

from repro.core import CoverageMap
from repro.pxml import parse_path, subtree_covers, subtree_overlaps


def make_path(depth, predicates, wildcard=False):
    steps = []
    for index in range(depth):
        name = "*" if wildcard and index == 1 else "n%d" % index
        step = name
        for p in range(predicates):
            step += "[@a%d='v%d']" % (p, p)
        steps.append(step)
    return parse_path("/" + "/".join(steps))


def test_e10_containment_microbench(benchmark, report):
    cases = [
        ("depth 2, no preds", make_path(2, 0), make_path(2, 0)),
        ("depth 4, no preds", make_path(4, 0), make_path(4, 0)),
        ("depth 8, no preds", make_path(8, 0), make_path(8, 0)),
        ("depth 4, 2 preds", make_path(4, 2), make_path(4, 2)),
        ("depth 4, wildcard", make_path(4, 0, wildcard=True),
         make_path(4, 0)),
    ]

    def run_all():
        for _label, outer, inner in cases:
            subtree_covers(outer, inner)
            subtree_overlaps(outer, inner)

    benchmark(run_all)
    per_case_us = benchmark.stats.stats.mean * 1e6 / len(cases) / 2

    # Per-shape timing for the table.
    rows = []
    for label, outer, inner in cases:
        iterations = 20000
        start = time.perf_counter()  # gupcheck: ignore[determinism] -- host-side harness timing
        for _ in range(iterations):
            subtree_covers(outer, inner)
        elapsed = time.perf_counter() - start  # gupcheck: ignore[determinism] -- host-side harness timing
        rows.append((label, 1e6 * elapsed / iterations))
    report(
        "e10_containment",
        "E10 — subtree_covers cost by path shape (us/decision)",
        ["path shape", "us per decision"],
        rows,
        notes="Overall mean across shapes: %.2f us. The fragment "
              "keeps containment linear in path length — no "
              "exponential homomorphism search." % per_case_us,
    )
    assert all(cost < 50.0 for _label, cost in rows)
    # Depth scales roughly linearly (8 steps < 8x the 2-step cost).
    by_label = dict(rows)
    assert by_label["depth 8, no preds"] < (
        8.0 * by_label["depth 2, no preds"]
    )


def test_e10_coverage_resolution_scaling(benchmark, report):
    def run():
        rows = []
        for per_user in (2, 8, 32, 128):
            cov = CoverageMap()
            for index in range(per_user):
                component = [
                    "address-book", "presence", "calendar", "devices"
                ][index % 4]
                path = "/user[@id='u']/%s" % component
                if index >= 4:
                    path += "/item[@k%d='v']" % index
                cov.register(path, "store%d" % index)
            request = "/user[@id='u']/address-book"
            iterations = 5000
            start = time.perf_counter()  # gupcheck: ignore[determinism] -- host-side harness timing
            for _ in range(iterations):
                cov.resolve(request)
            elapsed = time.perf_counter() - start  # gupcheck: ignore[determinism] -- host-side harness timing
            rows.append((per_user, 1e6 * elapsed / iterations))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e10_resolution_scaling",
        "E10 — coverage.resolve cost vs registrations per user",
        ["registrations/user", "us per resolve"],
        rows,
        notes="Linear in the user's own registrations (every entry is "
              "checked for overlap), independent of other users.",
    )
    assert rows[0][1] < 100.0
    # Cost is linear-ish in per-user entries, not worse.
    assert rows[-1][1] < rows[0][1] * 128
