"""F2-F4 — Figures 2-4: drive each native network end-to-end and
record the component interaction traces the figures sketch:

* F2 PSTN: call routing through the class-5 switch with features;
* F3 wireless: power-on registration, VLR hand-off, HLR interrogation
  for call delivery;
* F4 VoIP: SIP registration and proxy routing.
"""


def test_f2_pstn_call_processing(benchmark, report):
    from repro.stores import Class5Switch

    def run():
        switch = Class5Switch("5ess")
        switch.install_line("9085820001", "alice")
        switch.install_line("9085820002", "bob")
        switch.provision("9085820002", "call_forwarding", "9085820001")
        switch.provision(
            "9085820001", "barred_numbers", ["6665551234"],
            by_operator=True,
        )
        rows = [
            ("bob -> alice (idle line)",
             switch.route_call("9085820002", "9085820001")),
            ("x -> bob (forwarded)",
             switch.route_call("2125550000", "9085820002")),
            ("barred caller -> alice",
             switch.route_call("6665551234", "9085820001")),
        ]
        switch.set_busy("9085820001", True)
        rows.append(
            ("y -> alice (busy, no fwd)",
             switch.route_call("7185550000", "9085820001"))
        )
        rows.append(("routed total", str(switch.calls_routed)))
        rows.append(("rejected total", str(switch.calls_rejected)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "f2_pstn",
        "Figure 2 — PSTN switch call processing trace",
        ["call", "outcome"],
        rows,
    )
    assert ("bob -> alice (idle line)", "connected") in rows


def test_f3_wireless_mobility_and_delivery(benchmark, report):
    from repro.stores import HLR, MSC, VLR

    def run():
        hlr = HLR("hlr", carrier="spcs")
        vlr_east = VLR("vlr.east", ["nj-1"])
        vlr_west = VLR("vlr.west", ["ca-1"])
        hlr.attach_vlr(vlr_east)
        hlr.attach_vlr(vlr_west)
        msc_east = MSC("msc.east", hlr, vlr_east)
        msc_west = MSC("msc.west", hlr, vlr_west)
        hlr.provision_subscriber("9085551234", "imsi-1", "alice")
        rows = []
        rows.append(("call while detached",
                     msc_east.deliver_call("x", "9085551234")))
        msc_east.handle_power_on("9085551234", "nj-1")
        rows.append(("power-on in nj-1",
                     "registered at %s"
                     % hlr.subscriber("9085551234").current_vlr))
        rows.append(("call delivery (east)",
                     msc_east.deliver_call("x", "9085551234")))
        msc_west.handle_power_on("9085551234", "ca-1")
        rows.append(("roam to ca-1",
                     "old VLR cancelled: %s"
                     % (vlr_east.visitor("9085551234") is None)))
        rows.append(("call delivery (west)",
                     msc_west.deliver_call("x", "9085551234")))
        hlr.set_call_forwarding("9085551234", "9085550000")
        hlr.detach("9085551234")
        rows.append(("call after detach (fwd set)",
                     msc_west.deliver_call("x", "9085551234")))
        rows.append(("HLR lookups", str(hlr.lookups)))
        rows.append(("HLR updates", str(hlr.updates)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "f3_wireless",
        "Figure 3 — wireless HLR/VLR/MSC interaction trace",
        ["event", "outcome"],
        rows,
    )
    assert ("call delivery (east)", "vlr:vlr.east") in rows


def test_f4_voip_registration_and_routing(benchmark, report):
    from repro.stores import SipProxy, SipRegistrar

    def run():
        registrar = SipRegistrar("registrar")
        proxy = SipProxy("proxy", registrar)
        aor = "sip:alice@lucent.com"
        rows = []
        rows.append(("INVITE before REGISTER",
                     proxy.route(aor, now=0)[0]))
        registrar.register(aor, "135.104.3.7", "alice",
                           now=0, expires_ms=3_600_000)
        rows.append(("REGISTER",
                     "binding -> 135.104.3.7"))
        outcome, contact = proxy.route(aor, now=10)
        rows.append(("INVITE after REGISTER",
                     "%s via %s" % (outcome, contact)))
        outcome, contact = proxy.route(aor, now=4_000_000)
        rows.append(("INVITE after expiry", outcome))
        proxy.set_routing_hint(aor, "voicemail")
        outcome, contact = proxy.route(aor, now=4_000_000)
        rows.append(("INVITE with profile hint",
                     "%s via %s" % (outcome, contact)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "f4_voip",
        "Figure 4 — SIP registrar/proxy trace",
        ["event", "outcome"],
        rows,
    )
    assert ("INVITE after REGISTER", "proxied via 135.104.3.7") in rows
