"""Shared benchmark plumbing.

Every experiment prints its table through the ``report`` fixture, which
(1) writes ``benchmarks/results/<name>.txt`` and (2) replays the table
in the pytest terminal summary — so ``pytest benchmarks/
--benchmark-only`` leaves both a human-readable transcript and the
pytest-benchmark timing table.
"""

from __future__ import annotations

import os
from typing import List, Sequence, Tuple

import pytest

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_REPORTS: List[Tuple[str, str]] = []


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    notes: str = "",
) -> str:
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    normalized = []
    for row in rows:
        cells = [_fmt(cell) for cell in row]
        if len(cells) != columns:
            raise ValueError("row width mismatch in %r" % title)
        normalized.append(cells)
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    rule = "-" * len(line)
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in normalized
    ]
    parts = ["", "== %s ==" % title, line, rule] + body
    if notes:
        parts += ["", notes]
    return "\n".join(parts)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 1000:
            return "%.0f" % cell
        if abs(cell) >= 10:
            return "%.1f" % cell
        return "%.2f" % cell
    return str(cell)


@pytest.fixture()
def report(request):
    """emit(name, title, headers, rows, notes='') — record one table."""

    def emit(name, title, headers, rows, notes=""):
        text = format_table(title, headers, rows, notes)
        _REPORTS.append((name, text))
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        path = os.path.join(_RESULTS_DIR, name + ".txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        return text

    return emit


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep(
        "=", "GUPster experiment tables (also in benchmarks/results/)"
    )
    for _name, text in _REPORTS:
        for line in text.splitlines():
            terminalreporter.write_line(line)
