"""E18 — observability overhead + latency breakdown (DESIGN.md §4.4).

Two claims to measure, one per test:

* **Zero overhead when disabled.** The span/metrics layer sits under
  the Trace cost model behind ``recorder is None`` fast paths, so with
  observability off every E1/E7/E16 reference stream must be
  **bit-identical** to the golden fixture captured before the layer
  existed (``tests/data/golden_latencies.json``), and with it *on*
  the sampled latencies still must not move — spans observe virtual
  time, they never advance it.

* **The spans explain the latency.** For the degraded E16 chaining
  query (corporate store down: retry sweeps, backoff waits, partial
  merge) the span tree must reconcile — every parent span's duration
  equals the sequential-sum/fork-max of its children — and the
  per-segment breakdown (hop vs compute vs wait vs timeout) must add
  up to the trace's elapsed time.

Artifacts: ``results/e18_trace.json`` (Chrome trace-event JSON of the
degraded query — load it in ``chrome://tracing`` / Perfetto) and
``results/e18_metrics.json`` (registry snapshot). Run standalone with
``python benchmarks/bench_e18_observability.py --smoke`` for the CI
smoke gate (no pytest-benchmark required).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if __name__ == "__main__":  # CLI use without an installed package
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.obs import (  # noqa: E402
    reconcile,
    to_chrome_trace,
    to_json_snapshot,
    write_chrome_trace,
    write_json_snapshot,
)
from repro.workloads.reference import (  # noqa: E402
    BOOK,
    GOLDEN_STREAMS,
    build_split_world,
    e16_degraded_query,
    reference_streams,
)
from repro.access import RequestContext  # noqa: E402

GOLDEN_PATH = os.path.join(
    REPO_ROOT, "tests", "data", "golden_latencies.json"
)
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Leaf span names charged by the Trace layer.
SEGMENTS = ("hop", "compute", "wait")


def load_golden() -> Dict[str, List]:
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)["streams"]


def run_zero_overhead() -> Dict[str, Dict[str, object]]:
    """Replay every reference stream observability-off and compare to
    the golden fixture; then run the degraded query both ways and
    compare the sampled latency. Returns per-check verdicts."""
    verdicts: Dict[str, Dict[str, object]] = {}
    golden = load_golden()
    live = reference_streams()
    for name in GOLDEN_STREAMS:
        verdicts["stream:" + name] = {
            "samples": len(live[name]),
            "identical": live[name] == golden[name],
        }
    _net, silent = e16_degraded_query(observed=False)
    _net, observed = e16_degraded_query(observed=True)
    verdicts["observed-vs-silent"] = {
        "samples": 1,
        "identical": (
            observed.elapsed_ms == silent.elapsed_ms
            and observed.log == silent.log
        ),
    }
    return verdicts


def _segment_breakdown(recorder, trace) -> Dict[str, float]:
    """Total virtual ms per charge-leaf name within one trace."""
    totals = {segment: 0.0 for segment in SEGMENTS}
    for span in recorder.spans_for(trace.trace_id):
        if span.name in totals:
            totals[span.name] += span.duration_ms
    return totals


def run_breakdown() -> List[Tuple[str, float, Dict[str, float], int]]:
    """E1's four query patterns, observability on: per-pattern
    ``(label, elapsed_ms, per-segment totals, mismatches)``."""
    network, _server, executor = build_split_world()
    recorder = network.enable_observability()
    context = RequestContext("app", relationship="third-party")
    rows: List[Tuple[str, float, Dict[str, float], int]] = []

    def measure(label: str, run) -> None:
        trace = run()
        rows.append((
            label,
            trace.elapsed_ms,
            _segment_breakdown(recorder, trace),
            len(reconcile(recorder, trace.trace_id)),
        ))

    measure("referral", lambda: executor.referral(
        "client", BOOK, context)[1])
    measure("chaining", lambda: executor.chaining(
        "client", BOOK, context)[1])
    measure("recruiting", lambda: executor.recruiting(
        "client", BOOK, context)[1])
    measure("cached (miss)", lambda: executor.cached(
        "client", BOOK, context, now=0.0)[1])
    measure("cached (hit)", lambda: executor.cached(
        "client", BOOK, context, now=10.0)[1])
    return rows


def run_degraded_artifacts(
    out_dir: Optional[str] = None,
) -> Dict[str, object]:
    """The degraded E16 query with spans on: reconcile the tree,
    break its latency down per segment, and (optionally) write the
    Chrome trace + metrics snapshot artifacts."""
    network, trace = e16_degraded_query(observed=True)
    recorder = network.recorder
    assert recorder is not None
    segments = _segment_breakdown(recorder, trace)
    summary: Dict[str, object] = {
        "elapsed_ms": trace.elapsed_ms,
        "segments": segments,
        "segment_sum_ms": sum(segments.values()),
        "degraded_parts": trace.degraded_parts,
        "open_spans": len(recorder.open_spans()),
        "mismatches": len(reconcile(recorder, trace.trace_id)),
        "spans": len(recorder),
        "chrome_events": len(to_chrome_trace(recorder)["traceEvents"]),
    }
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        write_chrome_trace(
            recorder, os.path.join(out_dir, "e18_trace.json")
        )
        write_json_snapshot(
            network.metrics,
            os.path.join(out_dir, "e18_metrics.json"),
            recorder=recorder,
        )
        snapshot = to_json_snapshot(network.metrics, recorder)
        counters = snapshot["counters"]
        summary["net_counters"] = {
            name: value for name, value in counters.items()
            if name.startswith("net.") and value
        }
    return summary


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------

def test_e18_zero_overhead(benchmark, report):
    verdicts = benchmark.pedantic(
        run_zero_overhead, rounds=1, iterations=1
    )
    rows = [
        (name, check["samples"],
         "bit-identical" if check["identical"] else "DRIFTED")
        for name, check in sorted(verdicts.items())
    ]
    report(
        "e18_zero_overhead",
        "E18 — observability is free when off, invisible when on",
        ["check", "samples", "verdict"],
        rows,
        notes=(
            "Streams replay the E1/E7/E16 reference worlds with the "
            "recorder detached and must equal the pre-observability "
            "golden fixture float-for-float; observed-vs-silent runs "
            "the degraded E16 query with spans on and asserts the "
            "sampled latency (and the log) did not move."
        ),
    )
    assert all(check["identical"] for check in verdicts.values())


def test_e18_span_breakdown(benchmark, report):
    def run():
        return run_breakdown(), run_degraded_artifacts(RESULTS_DIR)

    rows, degraded = benchmark.pedantic(run, rounds=1, iterations=1)
    table = [
        (label, "%.2f" % elapsed,
         "%.2f" % segments["hop"], "%.2f" % segments["compute"],
         "%.2f" % segments["wait"], mismatches)
        for label, elapsed, segments, mismatches in rows
    ]
    table.append((
        "chaining DEGRADED",
        "%.2f" % degraded["elapsed_ms"],
        "%.2f" % degraded["segments"]["hop"],
        "%.2f" % degraded["segments"]["compute"],
        "%.2f" % degraded["segments"]["wait"],
        degraded["mismatches"],
    ))
    report(
        "e18_span_breakdown",
        "E18 — where each query pattern's latency goes (virtual ms)",
        ["pattern", "elapsed", "hop", "compute", "wait", "mismatch"],
        table,
        notes=(
            "Per-segment columns sum the span *leaves* — total work, "
            "not wall-clock — so parallel patterns (referral fans "
            "out; chaining fetches parts concurrently) show hop work "
            "above elapsed; the critical-path accounting is the "
            "'mismatch' column (spans whose duration the tree fails "
            "to explain under sequential-sum/fork-max) — all zero. "
            "The degraded row's hop segment carries the dead store's "
            "detection timeouts and its wait segment %.1f ms of "
            "retry backoff. Chrome trace artifact: "
            "results/e18_trace.json." % degraded["segments"]["wait"]
        ),
    )
    for _label, elapsed, segments, mismatches in rows:
        assert mismatches == 0
        # Work >= critical path; equal only when nothing forked.
        assert sum(segments.values()) >= elapsed - 1e-6
    assert degraded["mismatches"] == 0
    assert degraded["open_spans"] == 0
    assert degraded["degraded_parts"] > 0
    assert degraded["segments"]["wait"] > 0  # backoff is visible


# ---------------------------------------------------------------------------
# CLI (CI smoke gate: no pytest-benchmark dependency)
# ---------------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    """Run the E18 checks standalone; exit non-zero on any failure."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast verdict-only run (what CI gates on)",
    )
    parser.add_argument(
        "--out", default=RESULTS_DIR,
        help="directory for e18_trace.json / e18_metrics.json",
    )
    args = parser.parse_args(argv)
    failures = 0
    verdicts = run_zero_overhead()
    for name, check in sorted(verdicts.items()):
        ok = bool(check["identical"])
        failures += 0 if ok else 1
        print("%-28s %4d sample(s)  %s" % (
            name, check["samples"], "OK" if ok else "DRIFTED",
        ))
    degraded = run_degraded_artifacts(args.out)
    tree_ok = (
        degraded["mismatches"] == 0 and degraded["open_spans"] == 0
    )
    failures += 0 if tree_ok else 1
    print(
        "degraded query: %.2f ms over %d span(s), "
        "%d open, %d mismatch(es) -> %s" % (
            degraded["elapsed_ms"], degraded["spans"],
            degraded["open_spans"], degraded["mismatches"],
            "OK" if tree_ok else "FAILED",
        )
    )
    if not args.smoke:
        for label, elapsed, segments, mismatches in run_breakdown():
            print("%-16s %8.2f ms  (hop %.2f, compute %.2f, "
                  "wait %.2f, %d mismatch)" % (
                      label, elapsed, segments["hop"],
                      segments["compute"], segments["wait"],
                      mismatches))
    print("artifacts: %s" % os.path.abspath(args.out))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
