"""E14 (extension) — the mirrored constellation with real asynchronous
replication (Section 4.2: "a constellation of connected servers ... a
family of mirrored servers"; requirement 12 reliability).

Measures the consistency/traffic trade-off: with registrations
arriving continuously at one mirror and a periodic gossip round, how
many reads at OTHER mirrors fail (stale referrals) as a function of
the replication period, and what the replication traffic costs.
"""

from repro.access import RequestContext
from repro.core import MirrorConstellation
from repro.errors import NoCoverageError
from repro.simnet import Network, Simulator
from repro.workloads import SyntheticAdapter


N_USERS = 40
REGISTER_EVERY_MS = 500.0
READ_EVERY_MS = 200.0
RUN_MS = 20_000.0


def run_period(replication_period_ms):
    network = Network(seed=17)
    sim = Simulator()
    network.add_node("client", region="internet")
    mirrors = ["mdm.us", "mdm.eu", "mdm.asia"]
    for mirror in mirrors:
        network.add_node(mirror, region="core")
    network.add_node("gup.store.com", region="internet")
    constellation = MirrorConstellation(network, mirrors)
    store = SyntheticAdapter("gup.store.com")
    context = RequestContext("app", relationship="third-party")

    state = {"next_user": 0, "reads": 0, "stale": 0, "read_mirror": 0}

    def register_one():
        index = state["next_user"]
        if index >= N_USERS:
            return
        state["next_user"] += 1
        user = "user%03d" % index
        store.add_user(user, ["presence"])
        constellation.register_component(
            "/user[@id='%s']/presence" % user, "gup.store.com",
            via="mdm.us",
        )

    def read_one():
        # Round-robin reads across the OTHER mirrors.
        known = state["next_user"]
        if known == 0:
            return
        user = "user%03d" % ((state["reads"] * 7) % known)
        mirror = mirrors[1 + state["read_mirror"] % 2]
        state["read_mirror"] += 1
        state["reads"] += 1
        try:
            constellation.resolve(
                "client", "/user[@id='%s']/presence" % user,
                context, prefer=mirror,
            )
        except NoCoverageError:
            state["stale"] += 1

    sim.every(REGISTER_EVERY_MS, register_one, until=RUN_MS)
    sim.every(READ_EVERY_MS, read_one, until=RUN_MS)
    sim.every(replication_period_ms, constellation.replicate,
              until=RUN_MS)
    sim.run(until=RUN_MS)
    constellation.replicate()
    return (
        replication_period_ms,
        state["reads"],
        state["stale"],
        100.0 * state["stale"] / max(state["reads"], 1),
        constellation.replication_messages,
        constellation.replication_bytes,
        constellation.consistent(),
    )


def test_e14_replication_period_sweep(benchmark, report):
    def run():
        return [
            run_period(period)
            for period in (250.0, 1_000.0, 4_000.0, 16_000.0)
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e14_constellation",
        "E14 — mirror consistency vs replication period "
        "(%d registrations, reads at non-home mirrors)" % N_USERS,
        ["period ms", "reads", "stale reads", "stale %",
         "repl msgs", "repl bytes", "converged at end"],
        rows,
        notes=(
            "Faster gossip -> fewer stale referrals but more "
            "replication messages; all settings converge once quiet "
            "(eventual consistency)."
        ),
    )
    # Staleness grows with the replication period...
    assert rows[0][3] < rows[-1][3]
    # ...message count shrinks with it...
    assert rows[0][4] > rows[-1][4]
    # ...and every setting converges in the end.
    assert all(row[6] for row in rows)
    # Bytes shipped are similar (same total news), messages differ.
    assert rows[0][5] < 4 * rows[-1][5]
