"""E13 (extension) — data provenance (paper Section 7, third core
challenge): the access ledger, the per-element origin map, and the
cross-source redistribution check, exercised over a day of accesses.
"""

from repro.access import (
    PolicyRule,
    RequestContext,
    relationship_in,
)
from repro.core import ProvenanceTracker, SourceAnnotator
from repro.errors import AccessDeniedError
from repro.workloads import build_converged_world


BOOK = "/user[@id='arnaud']/address-book"
PRESENCE = "/user[@id='arnaud']/presence"


def test_e13_access_ledger(benchmark, report):
    def run():
        world = build_converged_world(split_address_book=True)
        tracker = ProvenanceTracker()
        world.executor.provenance = tracker
        accesses = [
            ("arnaud", "self", BOOK, 8 * 3600e3),
            ("mom", "family", BOOK, 9 * 3600e3),
            ("mom", "family", PRESENCE, 9.5 * 3600e3),
            ("bob", "co-worker", PRESENCE, 11 * 3600e3),
            ("telemarketer", "third-party", PRESENCE, 12 * 3600e3),
            ("telemarketer", "third-party", BOOK, 12.1 * 3600e3),
            ("rick", "boss", PRESENCE, 14 * 3600e3),
        ]
        for requester, relationship, path, at in accesses:
            hour = int(at / 3600e3) % 24
            ctx = RequestContext(
                requester, relationship=relationship,
                hour=hour, weekday=1,
            )
            try:
                world.executor.referral("client-app", path, ctx, now=at)
            except AccessDeniedError:
                pass
        rows = []
        for record in tracker.disclosures_for("arnaud"):
            rows.append(
                (
                    "%02d:00" % (record.at / 3600e3 % 24),
                    record.requester,
                    record.relationship,
                    record.path.steps[1].name,
                    "granted" if record.granted else "DENIED",
                    ", ".join(record.stores) or "-",
                )
            )
        counts = tracker.requesters_of("arnaud")
        denied = len(tracker.denied_attempts("arnaud"))
        return rows, counts, denied

    rows, counts, denied = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e13_ledger",
        "E13 — Arnaud's disclosure ledger for one day",
        ["when", "requester", "relationship", "component", "outcome",
         "stores touched"],
        rows,
        notes="Granted accesses per requester: %s; denied attempts: %d"
              % (counts, denied),
    )
    assert denied == 2                       # both telemarketer tries
    assert counts["mom"] == 2
    assert len(rows) == 7                    # every attempt is in the ledger


def test_e13_origin_and_redistribution(benchmark, report):
    def run():
        world = build_converged_world(split_address_book=True)
        annotator = SourceAnnotator()
        world.executor.annotator = annotator
        ctx = RequestContext("arnaud", relationship="self")
        fragment, _trace = world.executor.referral(
            "client-app", BOOK, ctx
        )
        book = fragment.child("address-book")
        origin_rows = [
            (item.attrs["id"], item.attrs.get("type", "?"),
             annotator.origin_of(item) or "?")
            for item in book.children
        ]
        # Redistribution: the corporate source only permits
        # co-workers/boss; shipping the merged book to family must
        # flag the Lucent-sourced elements.
        policies = {
            "gup.lucent.com": [
                PolicyRule(
                    "arnaud", BOOK + "/item[@type='corporate']",
                    "permit", relationship_in("co-worker", "boss"),
                ),
            ],
            "gup.yahoo.com": [
                PolicyRule(
                    "arnaud", BOOK + "/item[@type='personal']",
                    "permit",
                    relationship_in("family", "buddy", "co-worker"),
                ),
            ],
        }
        conflict_rows = []
        for requester, relationship in (
            ("mom", "family"), ("bob", "co-worker"),
        ):
            ctx2 = RequestContext(
                requester, relationship=relationship,
                hour=11, weekday=1,
            )
            conflicts = annotator.redistribution_conflicts(
                book, policies, ctx2
            )
            conflict_rows.append(
                (requester, relationship, len(conflicts),
                 ", ".join(sorted({s for _l, s in conflicts})) or "-")
            )
        return origin_rows, conflict_rows

    origin_rows, conflict_rows = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report(
        "e13_origins",
        "E13 — per-item origins of the merged address book",
        ["item", "type", "source store"],
        origin_rows,
    )
    report(
        "e13_redistribution",
        "E13 — cross-source redistribution check (Section 7: 'avoid "
        "distribution of data from one source that violates access "
        "controls given for another')",
        ["would-be recipient", "relationship", "conflicting elements",
         "offended source"],
        conflict_rows,
    )
    by_requester = {row[0]: row for row in conflict_rows}
    assert by_requester["mom"][2] > 0
    assert "gup.lucent.com" in by_requester["mom"][3]
    assert by_requester["bob"][2] == 0
