"""E7 — caching at GUPster (Sections 5.2/5.3; requirement 7's
staleness triggers).

A Zipf-skewed stream of component requests runs through the cached
query path while background updates mutate profiles. Two freshness
regimes are compared:

* TTL only — stale serves happen inside the TTL window;
* invalidation triggers — updates invalidate overlapping entries, so
  no stale serves, at the price of one trigger per update.

Sweeps cache capacity and TTL; reports hit rate, mean latency, and
staleness incidents.
"""

from repro.access import RequestContext
from repro.core import ComponentCache, GupsterServer, QueryExecutor
from repro.pxml import PNode, evaluate_values
from repro.simnet import Network
from repro.workloads import SyntheticAdapter, ZipfSampler


N_USERS = 60
N_REQUESTS = 600
UPDATE_EVERY = 10  # one background presence update per 10 requests


def build(capacity, ttl_ms):
    network = Network(seed=77)
    network.add_node("gupster", region="core")
    network.add_node("client", region="internet")
    network.add_node("gup.store.com", region="internet")
    store = SyntheticAdapter("gup.store.com", seed=5)
    users = ["user%03d" % index for index in range(N_USERS)]
    for user in users:
        store.add_user(user, ["presence"])
    server = GupsterServer(
        "gupster",
        cache=ComponentCache(capacity=capacity, default_ttl_ms=ttl_ms),
        enforce_policies=False,
    )
    server.join(store)
    executor = QueryExecutor(network, server)
    return network, server, executor, store, users


def set_presence(store, user, status):
    fragment = PNode("presence")
    fragment.append(PNode("status", text=status))
    store.apply_component(user, "presence", fragment)


def run_policy(capacity, ttl_ms, use_triggers):
    _network, server, executor, store, users = build(capacity, ttl_ms)
    sampler = ZipfSampler(users, alpha=1.0, seed=13)
    ctx = RequestContext("app", relationship="third-party")
    truth = {}
    stale_serves = 0
    total_latency = 0.0
    now = 0.0
    flips = 0
    for index, user in enumerate(sampler.sequence(N_REQUESTS)):
        now += 100.0  # one request per 100 ms
        if index % UPDATE_EVERY == 0:
            # Background update on a hot user.
            victim = users[index % 7]
            status = "busy" if flips % 2 == 0 else "available"
            flips += 1
            set_presence(store, victim, status)
            truth[victim] = status
            if use_triggers:
                server.cache.invalidate(
                    "/user[@id='%s']/presence" % victim
                )
        path = "/user[@id='%s']/presence" % user
        fragment, trace, _hit = executor.cached(
            "client", path, ctx, now=now
        )
        total_latency += trace.elapsed_ms
        observed = evaluate_values(fragment, "/user/presence/status")[0]
        if user in truth and observed != truth[user]:
            stale_serves += 1
    return {
        "hit_rate": 100.0 * server.cache.hit_rate,
        "mean_ms": total_latency / N_REQUESTS,
        "stale": stale_serves,
        "invalidations": server.cache.invalidations,
    }


def test_e7_cache_sweep(benchmark, report):
    def run():
        rows = []
        for capacity in (4, 16, 64):
            for ttl_ms in (500.0, 5_000.0, 60_000.0):
                stats = run_policy(capacity, ttl_ms, use_triggers=False)
                rows.append(
                    ("TTL", capacity, ttl_ms, stats["hit_rate"],
                     stats["mean_ms"], stats["stale"])
                )
        stats = run_policy(64, 60_000.0, use_triggers=True)
        rows.append(
            ("trigger", 64, 60_000.0, stats["hit_rate"],
             stats["mean_ms"], stats["stale"])
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e7_caching",
        "E7 — cache hit rate / latency / staleness vs capacity and "
        "TTL (Zipf workload)",
        ["freshness", "capacity", "TTL ms", "hit %", "mean ms",
         "stale serves"],
        rows,
        notes=(
            "Hit rate grows with capacity and TTL (Zipf skew); long "
            "TTLs trade staleness for hits. Invalidation triggers "
            "keep the long-TTL hit rate with ZERO stale serves."
        ),
    )
    ttl_rows = [r for r in rows if r[0] == "TTL"]
    trigger_row = rows[-1]
    # Bigger cache, same TTL -> hit rate does not drop.
    small = next(r for r in ttl_rows if r[1] == 4 and r[2] == 5000.0)
    big = next(r for r in ttl_rows if r[1] == 64 and r[2] == 5000.0)
    assert big[3] >= small[3]
    # Longer TTL -> more hits but more staleness (at 64 entries).
    short = next(r for r in ttl_rows if r[1] == 64 and r[2] == 500.0)
    long_ = next(r for r in ttl_rows if r[1] == 64 and r[2] == 60000.0)
    assert long_[3] > short[3]
    assert long_[5] >= short[5]
    # Triggers: hit rate comparable to long TTL, zero staleness.
    assert trigger_row[5] == 0
    assert trigger_row[3] > 0.5 * long_[3]
    # Hits are cheaper than misses overall: mean latency drops as hit
    # rate rises.
    assert long_[4] < short[4]
