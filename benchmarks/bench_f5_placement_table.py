"""F5 — Figure 5 (the paper's only table): "where profile data is
stored", regenerated from the live registry of simulated stores.

Paper's rows:
    PSTN     | Class 5 switches, billing systems
    Wireless | HLR, VLR, MSC, billing systems
    VoIP     | end-user device, SIP registrar/proxy, AAA
    Web      | end-user device, ISP, portal, e-merchant, enterprise,
             | edge-router, ...
"""


def test_f5_placement_table(benchmark, report):
    from repro.workloads import build_converged_world

    def run():
        world = build_converged_world()
        rows = []
        for network, kinds in world.directory.placement_table():
            rows.append((network, ", ".join(kinds)))
        detail = []
        for store in sorted(
            world.directory.all(), key=lambda s: (s.network, s.name)
        ):
            detail.append(
                (store.network, store.name,
                 ", ".join(store.profile_data_kinds()))
            )
        return rows, detail

    rows, detail = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "f5_placement",
        "Figure 5 — where profile data is stored (regenerated)",
        ["network", "locations of profile data"],
        rows,
        notes=(
            "Paper: PSTN=Class 5 switches; Wireless=HLR,VLR,MSC; "
            "VoIP=device, SIP registrar/proxy; Web=device, ISP, "
            "portal, enterprise."
        ),
    )
    report(
        "f5_placement_detail",
        "Figure 5 (detail) — per-store profile data kinds",
        ["network", "store", "profile data held"],
        detail,
    )
    table = dict(rows)
    assert "Class5Switch" in table["PSTN"]
    assert "BillingSystem" in table["PSTN"]          # billing systems
    assert "HLR" in table["Wireless"] and "VLR" in table["Wireless"]
    assert "BillingSystem" in table["Wireless"]
    assert "SipRegistrar" in table["VoIP"]
    assert "AAAServer" in table["VoIP"]              # AAA
    assert "WebPortal" in table["Web"]
    assert "IspSessionStore" in table["Web"]         # ISP
    assert "MobilePhone" in table["Wireless"]        # end-user device
