"""E20 — write-path at scale: coalescing change bus vs per-update push.

The read path scaled in E19 by batching sub-fetches per endpoint; E20
applies the same wave cost model to the **write path**. Every profile
mutation lands in an append-only per-shard change log; a notifier
coalesces everything logged since each listener's cursor into one
batched delivery per (listener, wave) — one simulated round trip —
while the privacy shield still runs **per delta, never per batch**.
Cursors make the fan-out resumable: a crashed subscriber replays its
whole backlog on recovery, losing nothing and repeating nothing.

Probes (all virtual-time numbers seeded and deterministic):

* **celebrity fan-out** — the Zipf hot head as its own experiment: one
  hot profile, a sweep of subscriber counts up to 10^5, a burst of
  changes. Per-update push pays ``2 × changes × subscribers``
  messages; the bus pays ``2 × waves × subscribers`` — sub-linear in
  the change rate. The push baseline is *measured* head-to-head up to
  a cap and follows the exact closed form beyond it.
* **provisioning burst** — enter-once storms ride the bus: cache
  invalidation collapses to one sweep per wave over distinct paths.
* **sustained updates** — Zipf-distributed writes over a sharded
  population of (by default) **one million subscribers**, bus bound to
  the shard ring; gates: every update delivered, logs compacted to
  zero after the drain.
* **crash/resume** — a subscriber fails mid-stream and recovers;
  gate: the received sequence is exactly 1..N, in order.
* **revocation** — the E20 headline bugfix at bench scale: a policy
  revoked mid-stream stops the bus push stream at the next wave.

Run the full experiment (~1M-user setup, a few minutes)::

    python benchmarks/bench_e20_writes.py

or the CI smoke gate (small sweeps, same assertions)::

    python benchmarks/bench_e20_writes.py --smoke
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if __name__ == "__main__":  # CLI use without an installed package
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.access import (  # noqa: E402
    PolicyEnforcementPoint, PolicyRepository, PolicyRule, RequestContext,
)
from repro.bus import (  # noqa: E402
    CacheInvalidationListener, ChangeBus, RecordingListener,
    SubscriberListener,
)
from repro.core import SubscriptionHub  # noqa: E402
from repro.core.cache import ComponentCache  # noqa: E402
from repro.provisioning import Provisioner  # noqa: E402
from repro.simnet import Network, Simulator  # noqa: E402
from repro.stores import ShardedStore  # noqa: E402
from repro.workloads import (  # noqa: E402
    SyntheticAdapter, ZipfSampler, build_converged_world,
)

CELEBRITY = "celebrity"
HOT_PATH = "/user[@id='celebrity']/presence"
ZIPF_EXPONENT = 1.1


# ---------------------------------------------------------------------------
# Celebrity fan-out: one hot profile, many subscribers
# ---------------------------------------------------------------------------

def _change_burst(count: int, start_ms: float = 1_000.0,
                  gap_ms: float = 5.0) -> List[float]:
    """*count* change instants in tight bursts: ten land inside one
    50 ms wave window, so waves coalesce ~10 changes each."""
    return [start_ms + index * gap_ms for index in range(count)]


def run_celebrity_bus(
    subscribers: int, changes: int, seed: int
) -> Dict[str, object]:
    """The bus side: every subscriber is a shield-checked
    SubscriberListener on the hot profile's presence path."""
    sim = Simulator()
    network = Network(seed=seed)
    network.add_node("gupster", region="core")
    repository = PolicyRepository()
    repository.store(
        PolicyRule(CELEBRITY, HOT_PATH, "permit",
                   rule_id="celebrity-public-presence")
    )
    pep = PolicyEnforcementPoint(repository)
    bus = ChangeBus(sim, network, "gupster")
    listeners: List[SubscriberListener] = []
    sink = lambda value, changed_at, now: None  # noqa: E731
    for index in range(subscribers):
        node = "fan-%06d" % index
        network.add_node(node, region="internet")
        listener = SubscriberListener(
            "fan-%06d" % index, node, pep, HOT_PATH, HOT_PATH,
            RequestContext("fan-%06d" % index), sink,
        )
        bus.attach(listener)
        listeners.append(listener)
    wall_start = time.perf_counter()  # gupcheck: ignore[determinism] -- host-side harness timing
    for at in _change_burst(changes):
        sim.schedule_at(
            at,
            lambda at=at: bus.append(
                HOT_PATH, "status@%.0f" % at, user_id=CELEBRITY
            ),
        )
    sim.run()
    wall = time.perf_counter() - wall_start  # gupcheck: ignore[determinism] -- host-side harness timing
    delivered = sum(listener.delivered for listener in listeners)
    return {
        "subscribers": subscribers,
        "changes": changes,
        "waves": bus.waves,
        "messages": bus.messages,
        "records_delivered": bus.records_delivered,
        "deliveries_batched": bus.deliveries,
        "deliveries": delivered,
        "shield_checks": pep.enforced,
        "lost": subscribers * changes - delivered,
        "wall_seconds": round(wall, 3),
    }


def run_celebrity_push(
    subscribers: int, changes: int, seed: int
) -> Dict[str, object]:
    """The per-update push baseline on the same harness: each change
    is forwarded to each subscriber individually — two hops and one
    shield check per (change, subscriber)."""
    network = Network(seed=seed)
    network.add_node("gupster", region="core")
    repository = PolicyRepository()
    repository.store(
        PolicyRule(CELEBRITY, HOT_PATH, "permit",
                   rule_id="celebrity-public-presence")
    )
    pep = PolicyEnforcementPoint(repository)
    nodes = []
    for index in range(subscribers):
        node = "fan-%06d" % index
        network.add_node(node, region="internet")
        nodes.append(node)
    contexts = [
        RequestContext("fan-%06d" % index)
        for index in range(subscribers)
    ]
    messages = 0
    delivered = 0
    wall_start = time.perf_counter()  # gupcheck: ignore[determinism] -- host-side harness timing
    for _at in _change_burst(changes):
        for node, context in zip(nodes, contexts):
            network.sample_hop("gupster", node, 128)
            messages += 2  # notification + ack, per update
            if pep.enforce(HOT_PATH, context).permit:
                delivered += 1
    wall = time.perf_counter() - wall_start  # gupcheck: ignore[determinism] -- host-side harness timing
    return {
        "subscribers": subscribers,
        "changes": changes,
        "messages": messages,
        "deliveries": delivered,
        "shield_checks": pep.enforced,
        "wall_seconds": round(wall, 3),
    }


def run_celebrity_sweep(
    subscriber_counts: Sequence[int],
    changes: int,
    push_cap: int,
    seed: int,
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for subscribers in subscriber_counts:
        bus = run_celebrity_bus(subscribers, changes, seed)
        row: Dict[str, object] = {"bus": bus}
        if subscribers <= push_cap:
            push = run_celebrity_push(subscribers, changes, seed)
            row["push"] = push
            row["push_measured"] = True
        else:
            # Beyond the cap the baseline follows its exact closed
            # form (verified head-to-head at every measured size).
            row["push"] = {
                "subscribers": subscribers,
                "changes": changes,
                "messages": 2 * changes * subscribers,
                "deliveries": changes * subscribers,
                "shield_checks": changes * subscribers,
            }
            row["push_measured"] = False
        row["message_ratio"] = round(
            bus["messages"] / row["push"]["messages"], 4
        )
        rows.append(row)
        gc.collect()
    return rows


# ---------------------------------------------------------------------------
# Provisioning burst: enter-once storms ride the bus
# ---------------------------------------------------------------------------

def run_provisioning_burst(
    provisions: int, seed: int
) -> Dict[str, object]:
    world = build_converged_world()
    bus = ChangeBus(world.sim, world.network, "gupster")
    provisioner = Provisioner(world.server, world.executor, bus=bus)
    cache = ComponentCache(registry=world.network.metrics)
    sweeper = CacheInvalidationListener("cache-sweep", cache)
    bus.attach(sweeper)
    rng = random.Random(seed)
    statuses = ("available", "busy", "away", "offline")
    users = ("arnaud", "alice")
    at = 0.0
    for index in range(provisions):
        at += rng.expovariate(1.0 / 10.0)  # mean 10 ms apart
        user = users[index % len(users)]
        status = statuses[rng.randrange(len(statuses))]
        world.sim.schedule_at(
            at,
            lambda u=user, s=status: provisioner.enter_once(
                "client-app", u, "presence", [{"status": s}],
                now=world.sim.now,
            ),
        )
    wall_start = time.perf_counter()  # gupcheck: ignore[determinism] -- host-side harness timing
    world.sim.run()
    wall = time.perf_counter() - wall_start  # gupcheck: ignore[determinism] -- host-side harness timing
    return {
        "provisions": provisions,
        "appends": bus.appends,
        "waves": bus.waves,
        "sweeps": sweeper.sweeps,
        "invalidated_paths": sweeper.invalidated_paths,
        "coalesced": sweeper.coalesced,
        "per_update_invalidations": bus.appends,
        "coalescing_factor": round(
            bus.appends / sweeper.sweeps, 2
        ) if sweeper.sweeps else 0.0,
        "wall_seconds": round(wall, 3),
    }


# ---------------------------------------------------------------------------
# Sustained updates over a sharded million-subscriber population
# ---------------------------------------------------------------------------

def run_sustained_updates(
    users: int, updates: int, shards: int, seed: int
) -> Dict[str, object]:
    sim = Simulator()
    network = Network(seed=seed)
    network.add_node("gupster", region="core")
    network.add_node("analytics", region="core")
    fleet = ShardedStore(
        "gup.shard",
        shards,
        network=network,
        region="core",
        adapter_factory=lambda sid, region: SyntheticAdapter(
            sid, region=region, memoize_exports=True
        ),
    )
    user_ids = ["u%07d" % index for index in range(users)]
    setup_start = time.perf_counter()  # gupcheck: ignore[determinism] -- host-side harness timing
    for user_id in user_ids:
        fleet.add_user(user_id, ["presence"])
    setup_wall = time.perf_counter() - setup_start  # gupcheck: ignore[determinism] -- host-side harness timing
    bus = ChangeBus(sim, network, "gupster")
    fleet.bind_bus(bus)
    recorder = RecordingListener("analytics", node="analytics")
    bus.attach(recorder)
    cache = ComponentCache(registry=network.metrics)
    sweeper = CacheInvalidationListener("cache-sweep", cache)
    bus.attach(sweeper)
    # Zipf-popular targets: the hot head hammers a few profiles, the
    # tail brushes the rest — placement spreads both over the ring.
    sampler = ZipfSampler(user_ids, alpha=ZIPF_EXPONENT, seed=seed)
    targets = sampler.sequence(updates)
    rng = random.Random(seed + 1)
    at = 0.0
    arrivals: List[Tuple[float, str]] = []
    for user_id in targets:
        at += rng.expovariate(1.0 / 2.0)  # mean 2 ms between updates
        arrivals.append((at, user_id))
    wall_start = time.perf_counter()  # gupcheck: ignore[determinism] -- host-side harness timing
    for arrived_at, user_id in arrivals:
        sim.schedule_at(
            arrived_at,
            lambda u=user_id, t=arrived_at: bus.append(
                "/user[@id='%s']/presence" % u,
                "status@%.1f" % t,
                user_id=u,
            ),
        )
    sim.run()
    wall = time.perf_counter() - wall_start  # gupcheck: ignore[determinism] -- host-side harness timing
    retained = sum(
        len(bus.log_for(shard_id)) for shard_id in fleet.shards
    )
    virtual_ms = arrivals[-1][0] if arrivals else 0.0
    result = {
        "users": users,
        "shards": shards,
        "updates": updates,
        "appends": bus.appends,
        "waves": bus.waves,
        "messages": bus.messages,
        "delivered_to_analytics": len(recorder.received),
        "lost": updates - len(recorder.received),
        "sweeps": sweeper.sweeps,
        "invalidated_paths": sweeper.invalidated_paths,
        "retained_after_drain": retained,
        "records_compacted": bus.records_compacted,
        "virtual_updates_per_sec": round(
            1000.0 * updates / virtual_ms, 1
        ) if virtual_ms else 0.0,
        "wall_setup_seconds": round(setup_wall, 3),
        "wall_seconds": round(wall, 3),
        "wall_updates_per_sec": round(updates / wall, 1) if wall else 0.0,
    }
    del sim, network, fleet, bus, recorder, sweeper, user_ids, targets
    gc.collect()
    return result


# ---------------------------------------------------------------------------
# Crash/resume: cursors lose nothing across a failure window
# ---------------------------------------------------------------------------

def run_crash_resume(appends: int, seed: int) -> Dict[str, object]:
    sim = Simulator()
    network = Network(seed=seed)
    network.add_node("gupster", region="core")
    network.add_node("subscriber", region="internet")
    bus = ChangeBus(sim, network, "gupster")
    recorder = RecordingListener("subscriber", node="subscriber")
    bus.attach(recorder)
    for index in range(appends):
        sim.schedule_at(
            float(index + 1),
            lambda i=index: bus.append(
                "/p", "v%d" % (i + 1), user_id="u"
            ),
        )
    # Fail 40% in, restore (and kick) at 80%: everything appended in
    # the window piles up behind the cursor, then replays in one wave.
    sim.schedule_at(0.4 * appends, lambda: network.fail("subscriber"))

    def recover() -> None:
        network.restore("subscriber")
        bus.kick()

    sim.schedule_at(0.8 * appends, recover)
    sim.run()
    bus.kick()
    sim.run()
    seqs = [record.seq for record in recorder.received]
    return {
        "appends": appends,
        "received": len(seqs),
        "delivery_failures": bus.delivery_failures,
        "in_order_exactly_once": seqs == list(range(1, appends + 1)),
        "records_delivered": bus.records_delivered,
    }


# ---------------------------------------------------------------------------
# Revocation: the headline bugfix, measured
# ---------------------------------------------------------------------------

def run_revocation_probe() -> Dict[str, object]:
    world = build_converged_world()
    hub = SubscriptionHub(
        world.sim, world.network, world.server, world.executor
    )
    hub.start_push_bus(
        "client-app",
        "/user[@id='arnaud']/presence",
        "/user/presence/status",
        RequestContext("mom", relationship="family"),
    )
    world.presence.watch(
        "arnaud",
        lambda u, s, n: hub.note_change(
            "/user/presence/status", s, user_id=u
        ),
    )
    statuses = ("busy", "away", "offline", "busy", "available", "away")
    for index, status in enumerate(statuses):
        world.sim.schedule(
            1_000 * (index + 1),
            lambda s=status: world.presence.set_status("arnaud", s),
        )
    world.sim.schedule(
        3_500,
        lambda: world.server.revoke_policy(
            "arnaud", "arnaud-boss-family-presence"
        ),
    )
    world.sim.run(until=30_000)
    delivered = [d.value for d in hub.deliveries_for("bus")]
    return {
        "changes": len(statuses),
        "delivered_before_revocation": len(delivered),
        "withheld_after_revocation": hub.push_withheld,
        "stream_stopped": delivered == list(statuses[:3]),
    }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: small sweeps, same assertions",
    )
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--updates", type=int, default=None)
    parser.add_argument("--seed", type=int, default=20)
    parser.add_argument(
        "--output", default=os.path.join(REPO_ROOT, "BENCH_e20.json")
    )
    options = parser.parse_args(argv)

    if options.smoke:
        subscriber_counts: Tuple[int, ...] = (200, 2_000)
        push_cap = 2_000
        changes = 24
        provisions = 60
        users = options.users or 10_000
        updates = options.updates or 2_000
        crash_appends = 1_000
    else:
        subscriber_counts = (1_000, 10_000, 100_000)
        push_cap = 10_000
        changes = 24
        provisions = 240
        users = options.users or 1_000_000
        updates = options.updates or 20_000
        crash_appends = 5_000

    started = time.perf_counter()  # gupcheck: ignore[determinism] -- host-side harness timing
    print(
        "E20: celebrity sweep %s (%d changes), %d provisions, "
        "%d users x %d updates"
        % (list(subscriber_counts), changes, provisions, users, updates)
    )

    celebrity = run_celebrity_sweep(
        subscriber_counts, changes, push_cap, options.seed
    )
    for row in celebrity:
        bus, push = row["bus"], row["push"]
        print(
            "  fans=%-7d bus: %2d waves %9d msgs | push%s: %9d msgs "
            "| ratio %.3f"
            % (
                bus["subscribers"], bus["waves"], bus["messages"],
                "" if row["push_measured"] else " (closed form)",
                push["messages"], row["message_ratio"],
            )
        )

    burst = run_provisioning_burst(provisions, options.seed)
    print(
        "  provisioning: %d enter-once -> %d waves, %d cache sweeps "
        "(%.0fx coalescing)"
        % (
            burst["provisions"], burst["waves"], burst["sweeps"],
            burst["coalescing_factor"],
        )
    )

    sustained = run_sustained_updates(users, updates, 16, options.seed)
    print(
        "  sustained: %d updates over %d users/16 shards -> "
        "%d waves, %d lost, %d retained, %.0f wall updates/s"
        % (
            sustained["updates"], sustained["users"],
            sustained["waves"], sustained["lost"],
            sustained["retained_after_drain"],
            sustained["wall_updates_per_sec"],
        )
    )

    crash = run_crash_resume(crash_appends, options.seed)
    print(
        "  crash/resume: %d appends, %d failures, exactly-once=%s"
        % (
            crash["appends"], crash["delivery_failures"],
            crash["in_order_exactly_once"],
        )
    )

    revocation = run_revocation_probe()
    print(
        "  revocation: %d delivered then %d withheld, stopped=%s"
        % (
            revocation["delivered_before_revocation"],
            revocation["withheld_after_revocation"],
            revocation["stream_stopped"],
        )
    )

    report = {
        "experiment": "E20",
        "title": "write-path at scale: change-notification bus with "
                 "cursor-resumable fan-out",
        "mode": "smoke" if options.smoke else "full",
        "seed": options.seed,
        "zipf_exponent": ZIPF_EXPONENT,
        "celebrity_fanout": celebrity,
        "provisioning_burst": burst,
        "sustained_updates": sustained,
        "crash_resume": crash,
        "revocation": revocation,
        "determinism_note": (
            "virtual-time numbers (waves, messages, deliveries, "
            "shield checks) are seeded and reproducible; wall_seconds "
            "and wall_updates_per_sec vary by host"
        ),
        "wall_seconds_total": round(
            time.perf_counter() - started, 1  # gupcheck: ignore[determinism] -- host-side harness timing
        ),
    }
    with open(options.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % options.output)

    # Acceptance gates (ISSUE E20).
    failures: List[str] = []
    for row in celebrity:
        bus = row["bus"]
        if bus["lost"]:
            failures.append(
                "celebrity fans=%d lost %d deliveries"
                % (bus["subscribers"], bus["lost"])
            )
        if row["message_ratio"] >= 0.5:
            failures.append(
                "celebrity fans=%d bus/push message ratio %.3f >= 0.5 "
                "(fan-out cost must be sub-linear in the change rate)"
                % (bus["subscribers"], row["message_ratio"])
            )
        # Per-delivery shield floor: the wave memo may collapse
        # identical (path, requester) pairs *within* one wave, but
        # every (listener, wave) delivery must run at least one fresh
        # check — a decision never outlives its wave.
        if bus["shield_checks"] < bus["deliveries_batched"]:
            failures.append(
                "celebrity fans=%d ran %d shield checks for %d "
                "batched deliveries (a shield decision outlived "
                "its wave)"
                % (
                    bus["subscribers"], bus["shield_checks"],
                    bus["deliveries_batched"],
                )
            )
    if burst["sweeps"] >= burst["provisions"]:
        failures.append(
            "provisioning burst did not coalesce: %d sweeps for %d "
            "provisions" % (burst["sweeps"], burst["provisions"])
        )
    if sustained["lost"]:
        failures.append(
            "sustained run lost %d update(s)" % sustained["lost"]
        )
    if sustained["retained_after_drain"]:
        failures.append(
            "sustained run retained %d record(s) after drain "
            "(compaction failed)" % sustained["retained_after_drain"]
        )
    if not crash["in_order_exactly_once"]:
        failures.append(
            "crash/resume delivered %d/%d records or broke ordering"
            % (crash["received"], crash["appends"])
        )
    if not revocation["stream_stopped"]:
        failures.append("revocation did not stop the bus push stream")

    if failures:
        for failure in failures:
            print("FAIL:", failure)
        return 1
    print(
        "ok: zero lost deliveries; bus/push message ratio %.3f at "
        "%d subscribers (gate: < 0.5)"
        % (
            celebrity[-1]["message_ratio"],
            celebrity[-1]["bus"]["subscribers"],
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
