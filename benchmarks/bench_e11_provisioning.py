"""E11 — "enter once, use everywhere" vs per-store manual provisioning
(requirement 11).

Sweeps the number of stores replicating a component and compares the
user-visible actions, messages, bytes, and the divergence left behind
when the user forgets one store (the paper's "wasteful re-entry ...
leads to inconsistencies").
"""

from repro.core import GupsterServer, QueryExecutor
from repro.provisioning import Provisioner
from repro.simnet import Network
from repro.workloads import SyntheticAdapter


ENTRY = {
    "@id": "n1", "@type": "personal", "name": "Nadia",
    "number": "908-555-7777", "number.@type": "cell",
}


def build(n_stores):
    network = Network(seed=55)
    network.add_node("gupster", region="core")
    network.add_node("client", region="internet")
    server = GupsterServer("gupster", enforce_policies=False)
    store_ids = []
    for index in range(n_stores):
        store_id = "gup.store%d.com" % index
        network.add_node(store_id, region="internet")
        store = SyntheticAdapter(store_id, seed=index)
        store.add_user("u1", ["address-book"])
        server.join(store)
        store_ids.append(store_id)
    executor = QueryExecutor(network, server)
    return Provisioner(server, executor), store_ids


def test_e11_enter_once_vs_manual(benchmark, report):
    def run():
        rows = []
        for n_stores in (2, 3, 5, 8):
            provisioner, store_ids = build(n_stores)
            once = provisioner.enter_once(
                "client", "u1", "address-book", [ENTRY]
            )
            divergence_once = provisioner.replica_divergence(
                "u1", "address-book", store_ids
            )
            provisioner, store_ids = build(n_stores)
            manual = provisioner.provision_manually(
                "client", "u1", "address-book", [ENTRY],
                store_ids=store_ids,
            )
            divergence_manual = provisioner.replica_divergence(
                "u1", "address-book", store_ids
            )
            provisioner, store_ids = build(n_stores)
            forgetful = provisioner.provision_manually(
                "client", "u1", "address-book", [ENTRY],
                store_ids=store_ids, forget=[store_ids[-1]],
            )
            divergence_forgot = provisioner.replica_divergence(
                "u1", "address-book", store_ids
            )
            rows.append(
                (
                    n_stores,
                    once.user_actions, once.trace.hops,
                    divergence_once,
                    manual.user_actions, manual.trace.hops,
                    divergence_manual,
                    forgetful.user_actions, divergence_forgot,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e11_provisioning",
        "E11 — enter-once vs manual provisioning across replicas",
        ["stores", "once acts", "once hops", "once div",
         "manual acts", "manual hops", "manual div",
         "forgot acts", "forgot div"],
        rows,
        notes=(
            "Enter-once: always ONE user action, zero divergence. "
            "Manual: O(stores) user actions; forgetting one store "
            "leaves (stores-1) divergent pairs."
        ),
    )
    for row in rows:
        n_stores = row[0]
        assert row[1] == 1              # one user action
        assert row[3] == 0              # no divergence
        assert row[4] == n_stores       # manual actions scale
        assert row[6] == 0
        assert row[8] == n_stores - 1   # forgotten store diverges


def test_e11_constraint_checking_gate(benchmark, report):
    """Bad input never reaches any store — the 'guarantees' half of
    requirement 11."""
    from repro.errors import ValidationError

    def run():
        provisioner, store_ids = build(3)
        attempts = [
            ("missing required id", {"name": "NoId"}),
            ("bad enum", {"@id": "1", "@type": "imaginary"}),
            ("bad phone", {"@id": "1", "number": "12"}),
            ("unknown field", {"@id": "1", "shoe-size": "42"}),
            ("valid", dict(ENTRY)),
        ]
        rows = []
        for label, entry in attempts:
            try:
                provisioner.enter_once(
                    "client", "u1", "address-book", [entry]
                )
                rows.append((label, "accepted"))
            except ValidationError:
                rows.append((label, "rejected at the form"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e11_constraints",
        "E11 — schema constraint checking at the provisioning form",
        ["input", "outcome"],
        rows,
    )
    assert rows[-1] == ("valid", "accepted")
    assert all(
        outcome == "rejected at the form" for _label, outcome in rows[:-1]
    )
